//! Graceful-degradation demo: one managed stream rides the quality ladder
//! down and back up while a fault-injecting engine panics underneath it.
//!
//! The stream's rung-0 backend (`"slow"`) is a [`ChaosBeamformer`]-wrapped
//! planned DAS with a fixed injected 5 ms per call and an occasional seeded
//! panic; rung 1 (`"das"`) is the plain planned DAS. Three acts:
//!
//! 1. **Calm** — unpressured traffic serves at rung 0, bitwise identical to
//!    direct inference (degradation is invisible until it engages).
//! 2. **Storm** — a back-to-back burst under 2 ms deadlines blows the slow
//!    rung's budget; the router sheds the tail, the ladder downshifts, and
//!    the injected panics resolve as contained `EnginePanicked` errors —
//!    every handle resolves either way.
//! 3. **Recovery** — pressure gone, windows close clean and the stream
//!    climbs back to full quality.
//!
//! Run with `cargo run --release --example degrade_demo`.

use std::sync::Arc;
use std::time::Duration;
use tiny_vbf_repro::beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use tiny_vbf_repro::prelude::*;
use tiny_vbf_repro::serve::{
    ChaosBeamformer, ChaosSchedule, DegradeConfig, ServeError, ServeResult,
};
use tiny_vbf_repro::ultrasound::ChannelData;

/// Deterministic pseudo-random frame (a cheap LCG stands in for the
/// simulator — the serving behaviour only needs fixed values).
fn synthetic_frame(array: &LinearArray, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected panics unwind with a `chaos:` payload and are contained at
    // the dispatch boundary — keep their backtraces out of the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));

    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8);
    let spec = StreamSpec { array: array.clone(), grid: grid.clone(), sound_speed: 1540.0, backend: "slow".into() };

    let factory = move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        match spec.backend.as_str() {
            // Rung 0: DAS plus 5 ms of injected latency and ~1/24 panics.
            "slow" => Ok(Arc::new(ChaosBeamformer::new(
                PlannedDas::new(DelayAndSum::default()),
                ChaosSchedule::seeded(9)
                    .delay_one_in(1, Duration::from_millis(5))
                    .panic_one_in(24),
            ))),
            // Rung 1: the genuinely cheaper fallback.
            "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
            other => Err(ServeError::Engine(format!("unknown backend {other}"))),
        }
    };
    let degrade = DegradeConfig {
        window: 4,
        cooldown_windows: 1,
        downshift_expiry_rate: 0.5,
        upshift_expiry_rate: 0.1,
        ..DegradeConfig::with_ladder(vec!["slow".into(), "das".into()])
    };
    let router = Router::with_degrade(
        BatchConfig { max_batch: 2, linger: Duration::ZERO, workers: 1, queue_capacity: 64, ..BatchConfig::default() },
        factory,
        degrade,
    )?;

    // Act 1 — calm: rung-0 responses are bitwise identical to direct DAS.
    let das = DelayAndSum::default();
    for i in 0..8u64 {
        let frame = synthetic_frame(&array, 100 + i);
        let image = router.submit(&spec, frame.clone()).map_err(|_| "submit")?.wait()?;
        let direct = das.beamform(&frame, &array, &grid, 1540.0)?;
        assert_eq!(image, direct, "undegraded serving must be bitwise identical");
    }
    let calm = router.stats();
    println!(
        "calm:     rung {} ({}), {} windows, bitwise identical to direct inference",
        calm.degrade[0].rung, calm.degrade[0].backend, calm.degrade[0].windows
    );

    // Act 2 — storm: saturating burst under 2 ms deadlines.
    let handles: Vec<_> = (0..24u64)
        .map(|i| {
            router
                .submit_with_deadline(&spec, synthetic_frame(&array, 200 + i), Duration::from_millis(2))
                .expect("submit")
        })
        .collect();
    let (mut served, mut expired, mut panicked) = (0u32, 0u32, 0u32);
    for handle in handles {
        match handle.wait() {
            Ok(_) => served += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(ServeError::EnginePanicked { .. }) => panicked += 1,
            Err(other) => return Err(other.into()),
        }
    }
    let storm = router.stats();
    println!(
        "storm:    {served} served / {expired} shed / {panicked} panicked (all {} handles resolved), rung {} ({}), {}↓",
        served + expired + panicked,
        storm.degrade[0].rung,
        storm.degrade[0].backend,
        storm.downshifts_total()
    );
    assert_eq!(served + expired + panicked, 24, "no request may be lost");
    assert!(storm.downshifts_total() >= 1, "the storm must downshift the stream");

    // Act 3 — recovery: sequential unpressured traffic climbs back. The
    // chaos engine still panics now and then; containment turns that into a
    // per-request `EnginePanicked` the client simply retries.
    for i in 0..12u64 {
        let frame = synthetic_frame(&array, 300 + i);
        let mut attempts = 0;
        loop {
            match router.submit(&spec, frame.clone()).map_err(|_| "submit")?.wait() {
                Ok(_) => break,
                Err(ServeError::EnginePanicked { .. }) if attempts < 5 => attempts += 1,
                Err(other) => return Err(other.into()),
            }
        }
    }
    let stats = router.shutdown();
    let ladder = &stats.degrade[0];
    println!(
        "recovery: rung {} ({}), {}↑ over {} windows, {} sheds, {} contained panics",
        ladder.rung,
        ladder.backend,
        stats.upshifts_total(),
        ladder.windows,
        stats.sheds_total(),
        stats.resilience.panics
    );
    assert_eq!(ladder.rung, 0, "the stream must return to full quality");
    assert!(stats.upshifts_total() >= 1);
    println!("ok: load-shedding ladder engaged and recovered; panics stayed contained");
    Ok(())
}
