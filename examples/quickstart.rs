//! Quickstart: simulate a tiny cyst-and-point phantom, acquire a single-angle plane
//! wave, beamform it with DAS and MVDR, and print B-mode images plus quality metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use tiny_vbf_repro::prelude::*;
use usmetrics::region::CircularRoi;
use usmetrics::{contrast_metrics, resolution_metrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-element version of the L11-5v probe keeps the example fast.
    let array = LinearArray::small_test_array();
    let medium = Medium::soft_tissue();

    // Phantom: speckle background, one anechoic cyst at 20 mm and one bright point
    // target at 28 mm.
    let phantom = Phantom::builder(0.012, 0.032)
        .seed(42)
        .speckle_density(400.0)
        .add_cyst(0.0, 0.020, 0.003)
        .add_point_target(0.0, 0.028, 25.0)
        .build();
    println!("phantom: {} scatterers, {} cyst(s), {} point target(s)", phantom.len(), phantom.cysts().len(), phantom.point_targets().len());

    // Acquire one 0-degree plane-wave frame.
    let simulator = PlaneWaveSimulator::new(array.clone(), medium, 0.032);
    let channel_data = simulator.simulate(&phantom, PlaneWave::zero_angle())?;
    println!("channel data: {} samples x {} channels", channel_data.num_samples(), channel_data.num_channels());

    // Reconstruct on a 96 x 32 grid from 8 mm to 32 mm.
    let grid = ImagingGrid::for_array(&array, 0.008, 0.024, 96, 32);
    let sound_speed = medium.sound_speed();

    for beamformer in [&DelayAndSum::default() as &dyn Beamformer, &Mvdr::fast()] {
        let bmode = beamformer.beamform_bmode(&channel_data, &array, &grid, sound_speed, 60.0)?;
        println!("--- {} ---", beamformer.name());
        println!("{}", bmode.to_ascii(32));

        let iq = beamformer.beamform(&channel_data, &array, &grid, sound_speed)?;
        let envelope = iq.envelope();
        let contrast = contrast_metrics(&envelope, &grid, CircularRoi::new(0.0, 0.020, 0.003))?;
        let resolution = resolution_metrics(&envelope, &grid, 0.0, 0.028)?;
        println!(
            "{}: CR {:.2} dB, CNR {:.2}, GCNR {:.2}; point target axial {:.2} mm, lateral {:.2} mm\n",
            beamformer.name(),
            contrast.cr_db,
            contrast.cnr,
            contrast.gcnr,
            resolution.axial_mm,
            resolution.lateral_mm
        );
    }
    Ok(())
}
