//! Streaming serving demo: push 64 plane-wave frames through the micro-batching
//! [`serve`] front-end with a Tiny-VBF beamformer and verify the served images
//! are **bitwise identical** to serial per-frame inference.
//!
//! Run with `cargo run --release --example serve_demo`; set `TINY_VBF_THREADS`
//! to any value — the results must not change (the assertion below holds for
//! every thread count, batch size and linger).

use std::time::{Duration, Instant};
use tiny_vbf_repro::prelude::*;
use tiny_vbf_repro::serve::service::beamform_server;
use tiny_vbf_repro::ultrasound::ChannelData;

const FRAMES: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One probe/grid shared by the whole stream, one trained-shape model.
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.012, 24, 16);
    let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
    let beamformer = TinyVbfBeamformer::new(TinyVbf::new(&config)?);
    let sound_speed = Medium::soft_tissue().sound_speed();

    // Simulate a stream of 64 frames: a point target drifting laterally, as a
    // moving-probe stand-in. Each frame is an independent acquisition.
    println!("simulating {FRAMES} frames…");
    let simulator = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.026);
    let frames: Vec<ChannelData> = (0..FRAMES)
        .map(|i| {
            let x = -0.003 + 0.006 * (i as f32 / (FRAMES - 1) as f32);
            let phantom = Phantom::builder(0.012, 0.026).seed(100 + i as u64).add_point_target(x, 0.018, 1.0).build();
            simulator.simulate(&phantom, PlaneWave::zero_angle())
        })
        .collect::<Result<_, _>>()?;

    // Reference: serial per-frame inference.
    println!("serial per-frame reference…");
    let serial_start = Instant::now();
    let reference: Vec<_> = frames
        .iter()
        .map(|frame| beamformer.beamform(frame, &array, &grid, sound_speed))
        .collect::<Result<_, _>>()?;
    let serial_seconds = serial_start.elapsed().as_secs_f64();

    // Served: the same frames through the micro-batching server.
    let batch_config = BatchConfig {
        max_batch: 8,
        linger: Duration::from_millis(1),
        queue_capacity: 32,
        workers: 1,
        ..BatchConfig::default()
    };
    println!(
        "serving (max_batch {}, linger {:?}, queue {}, {} worker)…",
        batch_config.max_batch, batch_config.linger, batch_config.queue_capacity, batch_config.workers
    );
    let server = beamform_server(batch_config, beamformer, array, grid, sound_speed);
    let served_start = Instant::now();
    let handles: Vec<_> = frames.iter().map(|frame| server.submit(frame.clone())).collect::<Result<_, _>>()?;
    let served: Vec<_> = handles.into_iter().map(|h| h.wait()).collect::<Result<_, _>>()?;
    let served_seconds = served_start.elapsed().as_secs_f64();
    let stats = server.shutdown();

    // The serving layer is pure scheduling: images must match bit for bit.
    assert_eq!(reference.len(), served.len());
    for (i, (a, b)) in reference.iter().zip(served.iter()).enumerate() {
        assert_eq!(a, b, "frame {i} served != serial");
    }
    println!("✓ {FRAMES} served frames bitwise identical to serial inference");
    println!(
        "serial {serial_seconds:.2}s ({:.1} fps) | served {served_seconds:.2}s ({:.1} fps) | \
         {} engine calls, mean batch {:.1}, largest {}",
        FRAMES as f64 / serial_seconds,
        FRAMES as f64 / served_seconds,
        stats.batches,
        stats.mean_batch(),
        stats.max_batch_observed,
    );
    Ok(())
}
