//! Multi-stream routing demo: two *concurrent* stream shapes — a planned-DAS
//! stream on one probe/grid and a Tiny-VBF stream on another — pushed through
//! one [`serve::router::Router`] from two producer threads, then verified
//! **bitwise identical** to serial per-frame inference, with **zero plan
//! rebuilds after warm-up** (the multi-slot plan cache counters prove it).
//!
//! Run with `cargo run --release --example route_demo`; set
//! `TINY_VBF_THREADS` to any value — the assertions hold for every thread
//! count, batch size, linger and stream interleaving.

use std::sync::Arc;
use std::time::Duration;
use tiny_vbf_repro::beamforming::iq::IqImage;
use tiny_vbf_repro::beamforming::pipeline::PlannedDas;
use tiny_vbf_repro::beamforming::plan::FrameFormat;
use tiny_vbf_repro::prelude::*;
use tiny_vbf_repro::serve::{ServeError, ServeResult};
use tiny_vbf_repro::ultrasound::ChannelData;

const FRAMES_PER_STREAM: usize = 24;

fn simulate_stream(array: &LinearArray, depth: f32, seed: u64) -> Vec<ChannelData> {
    let simulator = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), depth);
    (0..FRAMES_PER_STREAM)
        .map(|i| {
            let x = -0.003 + 0.006 * (i as f32 / (FRAMES_PER_STREAM - 1) as f32);
            let phantom =
                Phantom::builder(0.012, depth).seed(seed + i as u64).add_point_target(x, 0.7 * depth, 1.0).build();
            simulator.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sound_speed = Medium::soft_tissue().sound_speed();

    // Stream 1: planned DAS on the 32-element test probe, 24×16 grid.
    let array_das = LinearArray::small_test_array();
    let spec_das = StreamSpec {
        array: array_das.clone(),
        grid: ImagingGrid::for_array(&array_das, 0.012, 0.012, 24, 16),
        sound_speed,
        backend: "das".into(),
    };
    // Stream 2: Tiny-VBF on a narrower 16-element probe, 20×12 grid.
    let array_vbf = LinearArray::builder().num_elements(16).build()?;
    let spec_vbf = StreamSpec {
        array: array_vbf.clone(),
        grid: ImagingGrid::for_array(&array_vbf, 0.010, 0.010, 20, 12),
        sound_speed,
        backend: "tiny-vbf".into(),
    };
    let model_config = TinyVbfConfig::small().for_frame(array_vbf.num_elements(), spec_vbf.grid.num_cols());
    let vbf = TinyVbfBeamformer::new(TinyVbf::new(&model_config)?);

    println!("simulating 2 × {FRAMES_PER_STREAM} frames ({} | {})…", spec_das.label(), spec_vbf.label());
    let frames_das = simulate_stream(&array_das, 0.026, 500);
    let frames_vbf = simulate_stream(&array_vbf, 0.022, 900);

    // Serial per-frame reference (same beamformer configurations).
    let das_serial = DelayAndSum::default();
    let vbf_serial = vbf.clone();
    let reference_das: Vec<IqImage> = frames_das
        .iter()
        .map(|f| das_serial.beamform(f, &spec_das.array, &spec_das.grid, sound_speed))
        .collect::<Result<_, _>>()?;
    let reference_vbf: Vec<IqImage> = frames_vbf
        .iter()
        .map(|f| vbf_serial.beamform(f, &spec_vbf.array, &spec_vbf.grid, sound_speed))
        .collect::<Result<_, _>>()?;

    // One router, one queue, one thread budget; engines spin up via the
    // factory (the Tiny-VBF clone shares its weights with the serial
    // reference, so identity is checkable end to end).
    let factory = {
        let vbf = vbf.clone();
        move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
            match spec.backend.as_str() {
                "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
                "tiny-vbf" => Ok(Arc::new(vbf.clone())),
                other => Err(ServeError::Engine(format!("unknown backend {other}"))),
            }
        }
    };
    let router = Router::new(
        BatchConfig { max_batch: 6, linger: Duration::from_micros(500), queue_capacity: 32, ..BatchConfig::default() },
        factory,
    );

    // Warm both engines (spin-up + plan build) before any traffic.
    router.warm(&spec_das, &FrameFormat::of(&frames_das[0]))?;
    router.warm(&spec_vbf, &FrameFormat::of(&frames_vbf[0]))?;
    let warm_misses = router.stats().plan_cache_total().misses;
    println!("warmed {} engines ({} plans built)", router.num_engines(), warm_misses);

    // Two producer threads submit their streams concurrently.
    let (served_das, served_vbf) = std::thread::scope(|scope| {
        let das_producer = scope.spawn(|| {
            let handles: Vec<_> =
                frames_das.iter().map(|f| router.submit(&spec_das, f.clone()).expect("submit das")).collect();
            handles.into_iter().map(|h| h.wait().expect("das frame")).collect::<Vec<IqImage>>()
        });
        let vbf_producer = scope.spawn(|| {
            let handles: Vec<_> =
                frames_vbf.iter().map(|f| router.submit(&spec_vbf, f.clone()).expect("submit vbf")).collect();
            handles.into_iter().map(|h| h.wait().expect("vbf frame")).collect::<Vec<IqImage>>()
        });
        (das_producer.join().expect("das producer"), vbf_producer.join().expect("vbf producer"))
    });

    // Routing is pure scheduling: every image matches serial inference bit
    // for bit, whatever the interleaving.
    assert_eq!(reference_das, served_das, "DAS stream served != serial");
    assert_eq!(reference_vbf, served_vbf, "Tiny-VBF stream served != serial");
    println!("✓ {} routed frames bitwise identical to serial inference", 2 * FRAMES_PER_STREAM);

    let stats = router.shutdown();
    let total_cache = stats.plan_cache_total();
    assert_eq!(total_cache.misses, warm_misses, "zero plan rebuilds after warm-up");
    assert_eq!(stats.server.completed, 2 * FRAMES_PER_STREAM as u64);
    for engine in &stats.engines {
        let cache = engine.plan_cache.expect("both backends are planned");
        println!(
            "  {:<18} {:>3} frames in {:>2} dispatches | p50 {:>7.2?} p99 {:>7.2?} | plans: {} built, {} hits, {} evictions",
            engine.spec.label(),
            engine.requests,
            engine.batches,
            engine.latency.p50(),
            engine.latency.p99(),
            cache.misses,
            cache.hits,
            cache.evictions,
        );
    }
    println!(
        "queue: {} submitted, {} batches (largest {}), mean batch {:.1}",
        stats.server.submitted,
        stats.server.batches,
        stats.server.max_batch_observed,
        stats.server.mean_batch(),
    );
    Ok(())
}
