//! Quantized-serving demo: float and fixed-point Tiny-VBF streams — one
//! [`serve::router::Router`] backend per quantization scheme — interleaved
//! through **one** queue and thread budget, then verified **bitwise
//! identical** to serial per-frame quantized inference, with per-backend
//! SQNR accuracy-proxy counters and **one shared ToF plan** across every
//! scheme (the plan depends on the stream geometry, not the scheme).
//!
//! Run with `cargo run --release --example quant_route_demo`; set
//! `TINY_VBF_THREADS` to any value — the assertions hold for every thread
//! count, batch size, linger and stream interleaving.

use std::sync::Arc;
use std::time::Duration;
use tiny_vbf_repro::beamforming::iq::IqImage;
use tiny_vbf_repro::beamforming::plan::{FrameFormat, PlanCache};
use tiny_vbf_repro::prelude::*;
use tiny_vbf_repro::serve::{ServeError, ServeResult};
use tiny_vbf_repro::ultrasound::ChannelData;

const FRAMES_PER_STREAM: usize = 12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sound_speed = Medium::soft_tissue().sound_speed();
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.012, 24, 16);
    let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&config)?;

    // One stream per scheme: float plus three Table III fixed-point schemes,
    // every spec differing only in its backend label.
    let schemes = [QuantScheme::float(), QuantScheme::w24(), QuantScheme::hybrid1(), QuantScheme::hybrid2()];
    let specs: Vec<StreamSpec> = schemes
        .iter()
        .map(|scheme| StreamSpec {
            array: array.clone(),
            grid: grid.clone(),
            sound_speed,
            backend: scheme.backend_label().into(),
        })
        .collect();

    // The quantized backends: one per scheme, all replaying ONE ToF plan.
    let shared_tof = Arc::new(PlanCache::new(2));
    let backends: Vec<QuantizedTinyVbfBeamformer> = schemes
        .iter()
        .map(|scheme| {
            QuantizedTinyVbfBeamformer::with_tof_cache(
                QuantizedTinyVbf::from_model(&model, *scheme),
                Arc::clone(&shared_tof),
            )
        })
        .collect();

    println!("simulating {FRAMES_PER_STREAM} frames for {} scheme streams…", schemes.len());
    let simulator = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.026);
    let frames: Vec<ChannelData> = (0..FRAMES_PER_STREAM)
        .map(|i| {
            let x = -0.003 + 0.006 * (i as f32 / (FRAMES_PER_STREAM - 1) as f32);
            let phantom =
                Phantom::builder(0.012, 0.026).seed(40 + i as u64).add_point_target(x, 0.018, 1.0).build();
            simulator.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate")
        })
        .collect();

    // Serial per-frame quantized reference, per scheme (clones share weights
    // and the plan cache with the served engines, so identity is end to end).
    let reference: Vec<Vec<IqImage>> = backends
        .iter()
        .map(|backend| {
            frames.iter().map(|f| backend.beamform(f, &array, &grid, sound_speed)).collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;
    let reference_quality = backends[3].quality_stats();

    // One router over a scheme-label factory.
    let factory = {
        let backends: Vec<_> = backends.iter().cloned().collect();
        let schemes = schemes;
        move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
            match schemes.iter().position(|s| s.backend_label() == spec.backend) {
                Some(i) => Ok(Arc::new(backends[i].clone())),
                None => Err(ServeError::Engine(format!("unknown backend {}", spec.backend))),
            }
        }
    };
    let router = Router::new(
        BatchConfig { max_batch: 6, linger: Duration::from_micros(500), queue_capacity: 64, ..BatchConfig::default() },
        factory,
    );
    for spec in &specs {
        router.warm(spec, &FrameFormat::of(&frames[0]))?;
    }
    // Every engine shares `shared_tof`, so count plan builds on the cache
    // itself (the per-engine RouterStats snapshots each re-count it).
    let warm_misses = shared_tof.stats().misses;
    println!("warmed {} engines sharing {warm_misses} ToF plan(s)", router.num_engines());

    // Interleave every scheme's stream frame by frame through the one queue.
    let handles: Vec<(usize, _)> = (0..FRAMES_PER_STREAM)
        .flat_map(|i| {
            let router = &router;
            let specs = &specs;
            let frame = &frames[i];
            (0..specs.len()).map(move |s| (s, router.submit(&specs[s], frame.clone()).expect("submit")))
        })
        .collect();
    let mut served: Vec<Vec<IqImage>> = vec![Vec::new(); specs.len()];
    for (s, handle) in handles {
        served[s].push(handle.wait()?);
    }

    // Quantized routing is pure scheduling: bitwise identity per scheme.
    for (s, scheme) in schemes.iter().enumerate() {
        assert_eq!(reference[s], served[s], "{} served != serial quantized inference", scheme.name);
    }
    println!("✓ {} routed frames bitwise identical to serial quantized inference", schemes.len() * FRAMES_PER_STREAM);

    let stats = router.shutdown();
    assert_eq!(shared_tof.stats().misses, warm_misses, "schemes must share the warm ToF plan");
    assert_eq!(warm_misses, 1, "one geometry, one plan — across all four backends");
    assert_eq!(stats.server.completed, (schemes.len() * FRAMES_PER_STREAM) as u64);
    for engine in &stats.engines {
        let quality = engine.quant_quality.expect("quantized backends report quality");
        // The engine clones share accumulators with the serial reference
        // clones, so each counter covers reference + served frames.
        assert!(quality.frames >= engine.requests, "{}", engine.spec.label());
        println!(
            "  {:<26} {:>3} frames | p50 {:>8.2?} p99 {:>8.2?} | input SQNR {:>8.2} dB over {} frames",
            engine.spec.label(),
            engine.requests,
            engine.latency.p50(),
            engine.latency.p99(),
            quality.sqnr_db(),
            quality.frames,
        );
    }
    // Wider datapaths keep more signal: float is noiseless, 24-bit beats Hybrid-2.
    let sqnr_of = |label: &str| {
        stats
            .engines
            .iter()
            .find(|e| e.spec.backend == label)
            .and_then(|e| e.quant_quality)
            .expect("engine quality")
            .sqnr_db()
    };
    assert!(sqnr_of("tiny-vbf-fp").is_infinite(), "float backend must accumulate zero quantization noise");
    assert!(sqnr_of("tiny-vbf-fx24") > sqnr_of("tiny-vbf-w8a16"), "24-bit SQNR must exceed Hybrid-2");
    assert!(reference_quality.frames > 0 && stats.quant_quality_total().frames > 0);
    println!(
        "queue: {} submitted, {} batches (largest {}), aggregate lossy SQNR {:.2} dB",
        stats.server.submitted,
        stats.server.batches,
        stats.server.max_batch_observed,
        stats.quant_quality_total().sqnr_db(),
    );
    Ok(())
}
