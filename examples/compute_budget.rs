//! Prints the computational-cost comparison that motivates Tiny-VBF (Section IV of the
//! paper): GOPs per frame for DAS, MVDR, FCNN, Tiny-CNN and Tiny-VBF, and how the
//! numbers scale with frame size.
//!
//! Run with `cargo run --release --example compute_budget`.

use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::gops::{das_gops, fcnn_gops, mvdr_gops, tiny_cnn_gops, tiny_vbf_gops};

fn main() {
    let config = TinyVbfConfig::paper();
    println!("GOPs per frame as the frame grows (channels = 128):\n");
    println!("{:>12} {:>10} {:>10} {:>10} {:>10} {:>10}", "frame", "DAS", "Tiny-VBF", "FCNN", "Tiny-CNN", "MVDR");
    for (rows, cols) in [(92usize, 32usize), (184, 64), (368, 128), (736, 256)] {
        println!(
            "{:>7}x{:<4} {:>10.3} {:>10.3} {:>10.2} {:>10.2} {:>10.1}",
            rows,
            cols,
            das_gops(rows, cols, 128).gops_per_frame,
            tiny_vbf_gops(&config, rows, cols).gops_per_frame,
            fcnn_gops(rows, cols, 128, 128).gops_per_frame,
            tiny_cnn_gops(rows, cols, 128, 8).gops_per_frame,
            mvdr_gops(rows, cols, 128).gops_per_frame,
        );
    }
    println!("\nPaper reference at 368x128: Tiny-VBF 0.34, FCNN 1.4, Tiny-CNN 11.7, MVDR 98.78 GOPs/frame.");
}
