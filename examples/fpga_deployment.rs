//! FPGA deployment walk-through: quantize a Tiny-VBF model with the paper's hybrid
//! schemes, check how far the quantized output drifts from floating point, and print
//! the modelled ZCU104 resource utilization and frame latency (Tables III-VI).
//!
//! Run with `cargo run --release --example fpga_deployment`.

use accel::accelerator::Accelerator;
use neural::init::normal;
use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::QuantizedTinyVbf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TinyVbfConfig::paper();
    let mut model = TinyVbf::new(&config)?;
    println!("Tiny-VBF ({} weights) on the ZCU104 accelerator model\n", model.num_weights());

    // A representative normalized ToF-corrected row.
    let row = normal(&[config.tokens, config.channels], 0.3, 11).map(|v| v.clamp(-1.0, 1.0));
    let float_out = model.infer_row(&row)?;

    println!("{:<10} {:>12} {:>10} {:>10} {:>8} {:>10} {:>10}", "Scheme", "max |err|", "LUT", "FF", "DSP", "BRAM", "latency");
    for scheme in QuantScheme::all() {
        let quantized = QuantizedTinyVbf::from_model(&model, scheme);
        let out = quantized.infer_row(&row);
        let max_err = float_out
            .as_slice()
            .iter()
            .zip(out.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let report = Accelerator::new(config, scheme).frame_report(368, 128);
        println!(
            "{:<10} {:>12.5} {:>10.0} {:>10.0} {:>8.0} {:>10.1} {:>8.1} ms",
            scheme.name,
            max_err,
            report.resources.lut,
            report.resources.ff,
            report.resources.dsp,
            report.resources.bram,
            report.latency_seconds * 1e3
        );
    }

    println!("\nThe paper's headline: Hybrid-2 cuts resource use by >50% versus the float design");
    println!("while Tables IV/V show essentially unchanged resolution and contrast.");
    Ok(())
}
