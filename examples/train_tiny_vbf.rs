//! Train Tiny-VBF (and the Tiny-CNN / FCNN baselines) at reduced scale and compare the
//! resulting beamformers against DAS and MVDR on a synthetic PICMUS-style cyst frame —
//! a miniature version of the paper's Table I experiment.
//!
//! Run with `cargo run --release --example train_tiny_vbf`.

use tiny_vbf::evaluation::{beamformer_suite, contrast_table, train_models, EvaluationConfig};
use ultrasound::picmus::PicmusKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The test-size configuration trains in seconds; switch to
    // `EvaluationConfig::reduced()` (or `paper()`) for better image quality.
    let config = EvaluationConfig::test_size();
    println!(
        "training on {} simulated frames, {} epochs, {}-channel probe, {}x{} grid…",
        config.training_frames,
        config.epochs,
        config.array().num_elements(),
        config.grid_rows,
        config.grid_cols
    );

    let models = train_models(&config)?;
    println!(
        "Tiny-VBF: {} weights, loss {:?} -> {:?}",
        models.tiny_vbf.num_weights(),
        models.tiny_vbf_history.epoch_losses.first(),
        models.tiny_vbf_history.final_loss()
    );
    println!(
        "Tiny-CNN: {} weights | FCNN: {} weights",
        models.tiny_cnn.num_weights(),
        models.fcnn.num_weights()
    );

    let beamformers = beamformer_suite(&models, &config);
    let table = contrast_table(&beamformers, &config, PicmusKind::InSilico)?;
    println!("\ncontrast on the in-silico cyst frame:");
    for row in table {
        println!(
            "  {:<10} CR {:>6.2} dB   CNR {:>5.2}   GCNR {:>4.2}",
            row.beamformer, row.metrics.cr_db, row.metrics.cnr, row.metrics.gcnr
        );
    }
    println!("\n(the paper's full-scale Table I: DAS 13.78 dB, MVDR 21.66 dB, Tiny-CNN 13.45 dB, Tiny-VBF 14.89 dB)");
    Ok(())
}
