//! Cross-crate consistency checks between the substrates (simulator, ToF correction,
//! classical beamformers, metrics).

use beamforming::das::DelayAndSum;
use beamforming::pipeline::Beamformer;
use beamforming::tof::{round_trip_delay, tof_correct};
use tiny_vbf_repro::prelude::*;

#[test]
fn das_via_cube_equals_direct_das_with_uniform_weights() {
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let phantom = Phantom::builder(0.01, 0.03)
        .seed(3)
        .speckle_density(60.0)
        .add_point_target(0.0, 0.02, 5.0)
        .build();
    let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate");
    let grid = ImagingGrid::for_array(&array, 0.015, 0.01, 24, 12);

    let das = DelayAndSum::default();
    let direct = das.beamform_rf(&rf, &array, &grid, 1540.0).expect("direct");
    let cube = tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).expect("cube");
    let via_cube = das.beamform_cube(&cube, &grid).expect("cube sum");
    for (a, b) in direct.iter().zip(via_cube.iter()) {
        assert!((a - b).abs() < 1e-4);
    }
}

#[test]
fn point_target_is_localized_where_the_phantom_says() {
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let target = (0.002f32, 0.022f32);
    let phantom = Phantom::builder(0.012, 0.03).add_point_target(target.0, target.1, 1.0).build();
    let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate");
    let grid = ImagingGrid::for_array(&array, 0.016, 0.012, 60, 24);
    let iq = DelayAndSum::default().beamform(&rf, &array, &grid, 1540.0).expect("beamform");
    let envelope = iq.envelope();
    let (idx, _) = envelope
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let row = idx / grid.num_cols();
    let col = idx % grid.num_cols();
    assert!((grid.z(row) - target.1).abs() < 1.0e-3, "depth {} vs {}", grid.z(row), target.1);
    assert!((grid.x(col) - target.0).abs() < 1.0e-3, "lateral {} vs {}", grid.x(col), target.0);
}

#[test]
fn round_trip_delay_is_consistent_with_the_simulator_peak() {
    let array = LinearArray::small_test_array();
    let medium = Medium::lossless(1540.0);
    let sim = PlaneWaveSimulator::new(array.clone(), medium, 0.03);
    let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
    let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate");

    let ch = array.num_elements() / 2;
    let expected = round_trip_delay(PlaneWave::zero_angle(), 0.0, 0.02, array.element_x(ch), 1540.0);
    let trace = rf.channel(ch);
    let (peak_idx, _) = trace
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap();
    let measured = peak_idx as f32 / rf.sampling_frequency();
    assert!((measured - expected).abs() < 0.4e-6, "measured {measured} expected {expected}");
}

#[test]
fn in_vitro_degradation_lowers_image_quality() {
    use usmetrics::contrast_metrics;
    use usmetrics::region::CircularRoi;

    let silico = PicmusDataset::contrast(PicmusKind::InSilico)
        .with_scale(0.15)
        .with_max_depth(0.02)
        .build(9)
        .expect("in-silico");
    let vitro = PicmusDataset::contrast(PicmusKind::InVitro)
        .with_scale(0.15)
        .with_max_depth(0.02)
        .build(9)
        .expect("in-vitro");
    let grid = ImagingGrid::for_array(&silico.array, 0.008, 0.010, 64, 24);
    let cyst = silico.cysts()[0];
    let roi = CircularRoi::new(cyst.cx, cyst.cz, cyst.radius);

    let score = |frame: &ultrasound::picmus::PicmusFrame| {
        let iq = DelayAndSum::default()
            .beamform(&frame.channel_data, &frame.array, &grid, 1540.0)
            .expect("beamform");
        contrast_metrics(&iq.envelope(), &grid, roi).expect("metrics")
    };
    let clean = score(&silico);
    let degraded = score(&vitro);
    // The degradation model should not *improve* the deepest metrics; allow a small
    // tolerance because the in-vitro cyst sits at a slightly different depth set.
    assert!(degraded.gcnr <= clean.gcnr + 0.15, "clean {:?} degraded {:?}", clean, degraded);
}
