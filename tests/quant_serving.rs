//! Quantized-inference serving: fixed-point Tiny-VBF backends behind the
//! `serve::router::Router`, asserted bitwise identical to direct quantized
//! inference, with per-backend SQNR accuracy-proxy counters.

use std::sync::Arc;
use std::time::Duration;
use tiny_vbf_repro::beamforming::iq::IqImage;
use tiny_vbf_repro::beamforming::plan::{FrameFormat, PlanCache};
use tiny_vbf_repro::prelude::*;
use tiny_vbf_repro::serve::{ServeError, ServeResult};
use tiny_vbf_repro::ultrasound::ChannelData;

/// Deterministic pseudo-random frame (serving identity only needs the values
/// to be fixed, not physical).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn scheme_factory(
    model: TinyVbf,
    shared_tof: Arc<PlanCache>,
) -> impl Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static {
    move |spec: &StreamSpec| match QuantScheme::from_backend_label(&spec.backend) {
        Some(scheme) => Ok(Arc::new(QuantizedTinyVbfBeamformer::with_tof_cache(
            QuantizedTinyVbf::from_model(&model, scheme),
            Arc::clone(&shared_tof),
        ))),
        None => Err(ServeError::Engine(format!("unknown backend {}", spec.backend))),
    }
}

#[test]
fn router_serves_quantized_backends_bitwise_identical_to_direct_calls() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.010, 20, 12);
    let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&config).unwrap();

    // Four Table III schemes interleaved as four streams on one geometry.
    let schemes = [QuantScheme::float(), QuantScheme::w24(), QuantScheme::w16(), QuantScheme::hybrid2()];
    let specs: Vec<StreamSpec> = schemes
        .iter()
        .map(|scheme| StreamSpec {
            array: array.clone(),
            grid: grid.clone(),
            sound_speed: 1540.0,
            backend: scheme.backend_label().into(),
        })
        .collect();
    // 1024 samples at 31.25 MHz cover the grid's 12–22 mm round trips.
    let frames: Vec<ChannelData> = (0..4).map(|i| synthetic_frame(&array, 1024, 11 + i as u64)).collect();

    // Direct (unserved) quantized reference: independent backend instances —
    // weight quantization is deterministic, so served engines built by the
    // factory from the same float model must match bit for bit.
    let reference: Vec<Vec<IqImage>> = schemes
        .iter()
        .map(|scheme| {
            let direct = QuantizedTinyVbfBeamformer::new(&model, *scheme);
            frames.iter().map(|f| direct.beamform(f, &array, &grid, 1540.0).unwrap()).collect()
        })
        .collect();

    let shared_tof = Arc::new(PlanCache::new(2));
    let router = Router::new(
        BatchConfig { max_batch: 5, linger: Duration::from_micros(400), queue_capacity: 32, ..BatchConfig::default() },
        scheme_factory(model, Arc::clone(&shared_tof)),
    );
    for spec in &specs {
        router.warm(spec, &FrameFormat::of(&frames[0])).unwrap();
    }
    assert_eq!(router.num_engines(), specs.len());
    assert_eq!(shared_tof.stats().misses, 1, "per-scheme engines must share one ToF plan");

    let handles: Vec<(usize, usize, _)> = frames
        .iter()
        .enumerate()
        .flat_map(|(i, frame)| {
            specs
                .iter()
                .enumerate()
                .map(|(s, spec)| (s, i, router.submit(spec, frame.clone()).unwrap()))
                .collect::<Vec<_>>()
        })
        .collect();
    for (s, i, handle) in handles {
        let image = handle.wait().unwrap();
        assert_eq!(reference[s][i], image, "scheme {} frame {i} served != direct", schemes[s].name);
    }

    let stats = router.shutdown();
    assert_eq!(stats.server.completed, (schemes.len() * frames.len()) as u64);
    assert_eq!(shared_tof.stats().misses, 1, "no ToF plan rebuilds under mixed quantized load");

    // Per-backend accuracy proxy: float noiseless, fixed point finite, and
    // the wider 24-bit datapath keeps more SQNR than the 16-bit one.
    let quality_of = |label: &str| {
        stats
            .engines
            .iter()
            .find(|e| e.spec.backend == label)
            .and_then(|e| e.quant_quality)
            .unwrap_or_else(|| panic!("no quality counters for {label}"))
    };
    for spec in &specs {
        assert_eq!(quality_of(&spec.backend).frames, frames.len() as u64, "{}", spec.backend);
    }
    assert!(quality_of("tiny-vbf-fp").sqnr_db().is_infinite());
    let s24 = quality_of("tiny-vbf-fx24").sqnr_db();
    let s16 = quality_of("tiny-vbf-fx16").sqnr_db();
    assert!(s24.is_finite() && s16.is_finite() && s24 > s16, "fx24 {s24} dB vs fx16 {s16} dB");
    assert!(stats.quant_quality_total().frames >= (schemes.len() - 1) as u64);
}

#[test]
fn unknown_quantized_backend_label_fails_only_its_stream() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.010, 12, 8);
    let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&config).unwrap();

    let good = StreamSpec {
        array: array.clone(),
        grid: grid.clone(),
        sound_speed: 1540.0,
        backend: QuantScheme::hybrid1().backend_label().into(),
    };
    let bad = StreamSpec { backend: "tiny-vbf-int4".into(), ..good.clone() };

    let router = Router::new(
        BatchConfig { max_batch: 4, queue_capacity: 8, ..BatchConfig::default() },
        scheme_factory(model, Arc::new(PlanCache::new(1))),
    );
    let frame = synthetic_frame(&array, 256, 3);
    let ok = router.submit(&good, frame.clone()).unwrap();
    let err = router.submit(&bad, frame).unwrap();
    assert!(ok.wait().is_ok());
    assert!(matches!(err.wait(), Err(ServeError::Engine(reason)) if reason.contains("tiny-vbf-int4")));
    router.shutdown();
}
