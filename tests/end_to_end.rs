//! Cross-crate integration tests: the full paper pipeline at test scale.

use tiny_vbf_repro::prelude::*;
use tiny_vbf::evaluation::{beamformer_suite, contrast_table, quantized_quality_table, resolution_table, train_models};
use tiny_vbf::quantized::QuantizedTinyVbf;

#[test]
fn simulate_beamform_and_score_all_beamformers() {
    let config = EvaluationConfig::test_size();
    let models = train_models(&config).expect("training at test size should succeed");

    // Training must have actually adjusted the models.
    assert!(models.tiny_vbf_history.final_loss().is_some());
    assert!(models.tiny_vbf.num_weights() > 1_000);

    let beamformers = beamformer_suite(&models, &config);
    assert_eq!(beamformers.len(), 5);

    // Contrast on the in-silico cyst frame: every beamformer produces finite metrics and
    // the classical ones show a clearly darker cyst than background.
    let contrast = contrast_table(&beamformers, &config, PicmusKind::InSilico).expect("contrast table");
    for row in &contrast {
        assert!(row.metrics.cr_db.is_finite(), "{}", row.beamformer);
        assert!((0.0..=1.0).contains(&row.metrics.gcnr), "{}", row.beamformer);
    }
    let das = contrast.iter().find(|r| r.beamformer == "DAS").unwrap();
    let mvdr = contrast.iter().find(|r| r.beamformer == "MVDR").unwrap();
    assert!(das.metrics.cr_db > 3.0, "DAS CR {}", das.metrics.cr_db);
    // The paper's ordering: MVDR contrast exceeds DAS.
    assert!(mvdr.metrics.cr_db + 1.0 > das.metrics.cr_db, "MVDR {} DAS {}", mvdr.metrics.cr_db, das.metrics.cr_db);

    // Resolution on the point-target frame.
    let resolution = resolution_table(&beamformers, &config, PicmusKind::InSilico).expect("resolution table");
    let das_res = resolution.iter().find(|r| r.beamformer == "DAS").unwrap();
    assert!(das_res.metrics.axial_mm > 0.05 && das_res.metrics.axial_mm < 5.0);
    assert!(das_res.metrics.lateral_mm > 0.05 && das_res.metrics.lateral_mm < 10.0);
}

#[test]
fn quantized_model_tracks_float_model() {
    let config = EvaluationConfig::test_size();
    let models = train_models(&config).expect("training");
    let rows = quantized_quality_table(&models.tiny_vbf, &config, PicmusKind::InSilico).expect("quant table");
    assert_eq!(rows.len(), 6);
    let float_row = rows.iter().find(|r| r.scheme == "Float").unwrap();
    let w24_row = rows.iter().find(|r| r.scheme == "24 bits").unwrap();
    // 24-bit quantization should preserve the image metrics almost exactly — the
    // paper's central FPGA claim.
    if float_row.resolution.axial_mm.is_finite() && w24_row.resolution.axial_mm.is_finite() {
        assert!((float_row.resolution.axial_mm - w24_row.resolution.axial_mm).abs() < 0.15);
    }
    assert!((float_row.contrast.cr_db - w24_row.contrast.cr_db).abs() < 2.0);
}

#[test]
fn accelerator_reports_are_consistent_with_the_quantizer() {
    let config = TinyVbfConfig::paper();
    let model = TinyVbf::new(&config).expect("model");
    let scheme = QuantScheme::hybrid2();
    let quantized = QuantizedTinyVbf::from_model(&model, scheme);
    assert_eq!(quantized.scheme().name, "Hybrid-2");

    let accel = Accelerator::new(config, scheme);
    let report = accel.frame_report(368, 128);
    assert_eq!(report.scheme, "Hybrid-2");
    assert!(report.latency_seconds > 0.0 && report.latency_seconds < 1.0);
    // The calibrated resource numbers match Table VI for this scheme.
    assert_eq!(report.resources.lut, 61_951.0);
    assert_eq!(report.resources.dsp, 274.0);
}

#[test]
fn tiny_vbf_beamformer_plugs_into_the_generic_pipeline() {
    let config = EvaluationConfig::test_size();
    let grid = config.grid();
    let array = config.array();
    let frame = config.contrast_frame(PicmusKind::InSilico).expect("frame");

    let model_config = TinyVbfConfig::paper().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&model_config).expect("model");
    let beamformer = TinyVbfBeamformer::new(model);

    let learned: Vec<Box<dyn Beamformer>> = vec![Box::new(DelayAndSum::default()), Box::new(beamformer)];
    for bf in &learned {
        let bmode = bf
            .beamform_bmode(&frame.channel_data, &array, &grid, 1540.0, 60.0)
            .expect("beamform");
        assert_eq!(bmode.num_rows(), grid.num_rows());
        assert_eq!(bmode.num_cols(), grid.num_cols());
    }
}
