//! Offline stand-in for the real `bytes` crate.
//!
//! Implements exactly the little-endian cursor surface that
//! `neural::serialize` uses: `BytesMut` + `BufMut` for writing, `Bytes` (a
//! thin `Vec<u8>` wrapper) for frozen buffers, and `Buf` for reading from
//! `&[u8]` slices.

use std::ops::Deref;

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer used while serialising.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte cursor.
///
/// # Panics
///
/// The `get_*` methods panic when fewer than the required bytes remain; call
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_u8(7);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 9);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_the_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
