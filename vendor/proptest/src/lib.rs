//! Offline stand-in for the real `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`Just`],
//! `prop::collection::vec`, [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Differences from real proptest: value generation is a fixed deterministic
//! stream (no persisted failure seeds) and failing cases are not shrunk — the
//! failing input values are simply included in the panic message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The random source handed to strategies. A thin wrapper over the vendored
/// deterministic [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the deterministic per-test generator.
    pub fn deterministic(salt: u64) -> Self {
        Self(StdRng::seed_from_u64(0x70726F70_u64 ^ salt))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` returns for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which `f` returns `false` (regenerating, up to a
    /// retry limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`](vec()): an exact `usize` or a `usize` range.
    pub trait SizeBounds {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBounds for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeBounds for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeBounds>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeBounds> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with the given (optional) message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?} ({}:{})", lhs, rhs, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?} — {} ({}:{})",
                lhs, rhs, format!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne failed: both {:?} ({}:{})", lhs, file!(), line!()
            ));
        }
    }};
}

/// Declares a block of property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     // ... more tests
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Per-test deterministic stream, salted by the test name.
                let salt = stringify!($name).bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(131).wrapping_add(b as u64)
                });
                let mut rng = $crate::TestRng::deterministic(salt);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let dbg_inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, message, dbg_inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even_usize() -> impl Strategy<Value = usize> {
        (0usize..100).prop_filter("even", |v| v % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f32..7.5, n in 1usize..10, m in 3u32..=5) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((3..=5).contains(&m));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(even_usize(), 2..6), k in Just(7usize)) {
            prop_assert_eq!(k, 7);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(e % 2 == 0, "odd element {}", e);
            }
        }

        #[test]
        fn flat_map_respects_dependency(pair in (2u32..10).prop_flat_map(|hi| (Just(hi), 0u32..hi))) {
            let (hi, lo) = pair;
            prop_assert!(lo < hi);
        }

        #[test]
        fn early_ok_return_is_supported(n in 0usize..10) {
            if n > 3 { return Ok(()); }
            prop_assert!(n <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            @impl (ProptestConfig::with_cases(8))
            #[allow(dead_code)]
            fn always_fails(x in 0usize..5) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
