//! Offline stand-in for the real `serde` crate.
//!
//! The workspace is built in an environment without network access, so the
//! real serde cannot be fetched from crates.io. The repo only uses serde for
//! `#[derive(Serialize, Deserialize)]` markers (no actual serialization is
//! performed anywhere — the binary weight format in `neural::serialize` is
//! hand-rolled), so marker traits with blanket impls are sufficient: every
//! type satisfies `Serialize` / `Deserialize` bounds and the derive macros
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
