//! Offline stand-in for the real `rand` crate.
//!
//! Provides the small deterministic-PRNG surface the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range` and `gen_bool`. The generator is an
//! xorshift64* seeded through SplitMix64 — statistically plenty for test
//! phantoms and noise models, and fully reproducible from the seed. Streams
//! differ from the real `rand::StdRng` (ChaCha12), which is fine because the
//! repo only relies on seeded reproducibility, not on specific streams.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their "standard" distribution
/// (`[0, 1)` for floats, all values for integers).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the exclusive bound.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles the (possibly tiny) user seed into a
            // well-mixed nonzero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: usize = rng.gen_range(5..8usize);
            assert!((5..8).contains(&u));
            let i: usize = rng.gen_range(0..=2usize);
            assert!(i <= 2);
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f32> = (0..1000).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }
}
