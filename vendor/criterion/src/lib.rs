//! Offline stand-in for the real `criterion` benchmarking crate.
//!
//! Implements the subset the `bench` crate's benchmark targets use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple mean over `sample_size`
//! timed iterations after one warm-up iteration — good enough for the smoke
//! runs and relative before/after comparisons CI performs; no statistical
//! analysis, plots or HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Runs one benchmarked closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, name: N, f: F) -> &mut Self {
        run_one(name.as_ref(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(&mut self, name: N, f: F) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    /// Finishes the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    println!("  {name}: {:.3} ms/iter ({} iters)", mean * 1e3, bencher.iters);
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // one warm-up + three timed iterations
        assert_eq!(runs, 4);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
