//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched. The sibling `serde` shim provides blanket `Serialize` /
//! `Deserialize` impls for every type; these derive macros therefore only need
//! to exist (so `#[derive(Serialize, Deserialize)]` parses) and expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
