/root/repo/target/debug/deps/table2_resolution-1275fc2c9ee70d56.d: crates/bench/src/bin/table2_resolution.rs

/root/repo/target/debug/deps/table2_resolution-1275fc2c9ee70d56: crates/bench/src/bin/table2_resolution.rs

crates/bench/src/bin/table2_resolution.rs:
