/root/repo/target/debug/deps/parallel_equivalence-51bbee52a9f94450.d: crates/beamforming/tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-51bbee52a9f94450: crates/beamforming/tests/parallel_equivalence.rs

crates/beamforming/tests/parallel_equivalence.rs:
