/root/repo/target/debug/deps/table3_schemes-e3eb90967bdefb10.d: crates/bench/src/bin/table3_schemes.rs

/root/repo/target/debug/deps/table3_schemes-e3eb90967bdefb10: crates/bench/src/bin/table3_schemes.rs

crates/bench/src/bin/table3_schemes.rs:
