/root/repo/target/debug/deps/table4_5_quantized_quality-56dbd9ab8a91dbe5.d: crates/bench/src/bin/table4_5_quantized_quality.rs

/root/repo/target/debug/deps/table4_5_quantized_quality-56dbd9ab8a91dbe5: crates/bench/src/bin/table4_5_quantized_quality.rs

crates/bench/src/bin/table4_5_quantized_quality.rs:
