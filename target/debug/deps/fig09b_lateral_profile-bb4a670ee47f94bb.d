/root/repo/target/debug/deps/fig09b_lateral_profile-bb4a670ee47f94bb.d: crates/bench/src/bin/fig09b_lateral_profile.rs

/root/repo/target/debug/deps/libfig09b_lateral_profile-bb4a670ee47f94bb.rmeta: crates/bench/src/bin/fig09b_lateral_profile.rs

crates/bench/src/bin/fig09b_lateral_profile.rs:
