/root/repo/target/debug/deps/tiny_vbf-8617c942ada5c4ca.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libtiny_vbf-8617c942ada5c4ca.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/config.rs:
crates/core/src/evaluation.rs:
crates/core/src/gops.rs:
crates/core/src/inference.rs:
crates/core/src/model.rs:
crates/core/src/quantized.rs:
crates/core/src/training.rs:
