/root/repo/target/debug/deps/proptest_ultrasound-155b9c1ff14eb366.d: crates/ultrasound/tests/proptest_ultrasound.rs

/root/repo/target/debug/deps/proptest_ultrasound-155b9c1ff14eb366: crates/ultrasound/tests/proptest_ultrasound.rs

crates/ultrasound/tests/proptest_ultrasound.rs:
