/root/repo/target/debug/deps/serde_derive-c942e6f68fff9109.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-c942e6f68fff9109.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
