/root/repo/target/debug/deps/fig09b_lateral_profile-a6a776a8c066464b.d: crates/bench/src/bin/fig09b_lateral_profile.rs

/root/repo/target/debug/deps/fig09b_lateral_profile-a6a776a8c066464b: crates/bench/src/bin/fig09b_lateral_profile.rs

crates/bench/src/bin/fig09b_lateral_profile.rs:
