/root/repo/target/debug/deps/serde-9117332ba9ebc5fa.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9117332ba9ebc5fa: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
