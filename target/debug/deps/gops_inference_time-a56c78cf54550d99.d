/root/repo/target/debug/deps/gops_inference_time-a56c78cf54550d99.d: crates/bench/src/bin/gops_inference_time.rs

/root/repo/target/debug/deps/gops_inference_time-a56c78cf54550d99: crates/bench/src/bin/gops_inference_time.rs

crates/bench/src/bin/gops_inference_time.rs:
