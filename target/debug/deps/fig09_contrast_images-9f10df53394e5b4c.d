/root/repo/target/debug/deps/fig09_contrast_images-9f10df53394e5b4c.d: crates/bench/src/bin/fig09_contrast_images.rs

/root/repo/target/debug/deps/fig09_contrast_images-9f10df53394e5b4c: crates/bench/src/bin/fig09_contrast_images.rs

crates/bench/src/bin/fig09_contrast_images.rs:
