/root/repo/target/debug/deps/runtime-5c45a33681505fe2.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/runtime-5c45a33681505fe2: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
