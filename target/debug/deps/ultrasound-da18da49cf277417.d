/root/repo/target/debug/deps/ultrasound-da18da49cf277417.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/debug/deps/libultrasound-da18da49cf277417.rlib: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/debug/deps/libultrasound-da18da49cf277417.rmeta: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
