/root/repo/target/debug/deps/criterion-30cc13aef80d769e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-30cc13aef80d769e: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
