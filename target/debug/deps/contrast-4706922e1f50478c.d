/root/repo/target/debug/deps/contrast-4706922e1f50478c.d: crates/bench/benches/contrast.rs

/root/repo/target/debug/deps/contrast-4706922e1f50478c: crates/bench/benches/contrast.rs

crates/bench/benches/contrast.rs:
