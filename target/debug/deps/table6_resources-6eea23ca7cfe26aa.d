/root/repo/target/debug/deps/table6_resources-6eea23ca7cfe26aa.d: crates/bench/src/bin/table6_resources.rs

/root/repo/target/debug/deps/table6_resources-6eea23ca7cfe26aa: crates/bench/src/bin/table6_resources.rs

crates/bench/src/bin/table6_resources.rs:
