/root/repo/target/debug/deps/proptest_ultrasound-f65f6cf09d76e935.d: crates/ultrasound/tests/proptest_ultrasound.rs

/root/repo/target/debug/deps/proptest_ultrasound-f65f6cf09d76e935: crates/ultrasound/tests/proptest_ultrasound.rs

crates/ultrasound/tests/proptest_ultrasound.rs:
