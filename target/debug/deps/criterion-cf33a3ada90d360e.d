/root/repo/target/debug/deps/criterion-cf33a3ada90d360e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-cf33a3ada90d360e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-cf33a3ada90d360e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
