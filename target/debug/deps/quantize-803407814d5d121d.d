/root/repo/target/debug/deps/quantize-803407814d5d121d.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/libquantize-803407814d5d121d.rlib: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/libquantize-803407814d5d121d.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
