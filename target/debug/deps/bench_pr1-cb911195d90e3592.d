/root/repo/target/debug/deps/bench_pr1-cb911195d90e3592.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/debug/deps/bench_pr1-cb911195d90e3592: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
