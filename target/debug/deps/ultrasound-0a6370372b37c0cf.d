/root/repo/target/debug/deps/ultrasound-0a6370372b37c0cf.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/debug/deps/ultrasound-0a6370372b37c0cf: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
