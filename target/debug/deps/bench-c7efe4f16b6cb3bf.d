/root/repo/target/debug/deps/bench-c7efe4f16b6cb3bf.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-c7efe4f16b6cb3bf.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
