/root/repo/target/debug/deps/tiny_vbf_repro-e14c596ca93774f2.d: src/lib.rs

/root/repo/target/debug/deps/tiny_vbf_repro-e14c596ca93774f2: src/lib.rs

src/lib.rs:
