/root/repo/target/debug/deps/bytes-c4cc86a97b405278.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c4cc86a97b405278.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c4cc86a97b405278.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
