/root/repo/target/debug/deps/table6_resources-14015894e1000089.d: crates/bench/src/bin/table6_resources.rs

/root/repo/target/debug/deps/table6_resources-14015894e1000089: crates/bench/src/bin/table6_resources.rs

crates/bench/src/bin/table6_resources.rs:
