/root/repo/target/debug/deps/bench-c7c87c738cf00980.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/bench-c7c87c738cf00980: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
