/root/repo/target/debug/deps/quantize-db0a534e4da04b06.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/libquantize-db0a534e4da04b06.rlib: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/libquantize-db0a534e4da04b06.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
