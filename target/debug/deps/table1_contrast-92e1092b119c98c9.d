/root/repo/target/debug/deps/table1_contrast-92e1092b119c98c9.d: crates/bench/src/bin/table1_contrast.rs

/root/repo/target/debug/deps/table1_contrast-92e1092b119c98c9: crates/bench/src/bin/table1_contrast.rs

crates/bench/src/bin/table1_contrast.rs:
