/root/repo/target/debug/deps/parallel_equivalence-df5fe416d5699af1.d: crates/beamforming/tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-df5fe416d5699af1: crates/beamforming/tests/parallel_equivalence.rs

crates/beamforming/tests/parallel_equivalence.rs:
