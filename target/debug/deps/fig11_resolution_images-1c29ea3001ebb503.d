/root/repo/target/debug/deps/fig11_resolution_images-1c29ea3001ebb503.d: crates/bench/src/bin/fig11_resolution_images.rs

/root/repo/target/debug/deps/fig11_resolution_images-1c29ea3001ebb503: crates/bench/src/bin/fig11_resolution_images.rs

crates/bench/src/bin/fig11_resolution_images.rs:
