/root/repo/target/debug/deps/rand-6888abd76b7af920.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6888abd76b7af920.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6888abd76b7af920.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
