/root/repo/target/debug/deps/usmetrics-58cc43ce3f065162.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/usmetrics-58cc43ce3f065162: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
