/root/repo/target/debug/deps/ultrasound-20a5ca303b506c1a.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/debug/deps/ultrasound-20a5ca303b506c1a: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
