/root/repo/target/debug/deps/runtime-cfdf121a620958e7.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libruntime-cfdf121a620958e7.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
