/root/repo/target/debug/deps/runtime-356576529c3e0532.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libruntime-356576529c3e0532.rlib: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libruntime-356576529c3e0532.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
