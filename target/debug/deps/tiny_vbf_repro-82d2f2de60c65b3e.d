/root/repo/target/debug/deps/tiny_vbf_repro-82d2f2de60c65b3e.d: src/lib.rs

/root/repo/target/debug/deps/libtiny_vbf_repro-82d2f2de60c65b3e.rlib: src/lib.rs

/root/repo/target/debug/deps/libtiny_vbf_repro-82d2f2de60c65b3e.rmeta: src/lib.rs

src/lib.rs:
