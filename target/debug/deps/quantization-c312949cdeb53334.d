/root/repo/target/debug/deps/quantization-c312949cdeb53334.d: crates/bench/benches/quantization.rs

/root/repo/target/debug/deps/quantization-c312949cdeb53334: crates/bench/benches/quantization.rs

crates/bench/benches/quantization.rs:
