/root/repo/target/debug/deps/bench-539885f570a1ce82.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/bench-539885f570a1ce82: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
