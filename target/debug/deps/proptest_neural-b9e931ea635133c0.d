/root/repo/target/debug/deps/proptest_neural-b9e931ea635133c0.d: crates/neural/tests/proptest_neural.rs

/root/repo/target/debug/deps/proptest_neural-b9e931ea635133c0: crates/neural/tests/proptest_neural.rs

crates/neural/tests/proptest_neural.rs:
