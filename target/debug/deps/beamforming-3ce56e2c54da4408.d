/root/repo/target/debug/deps/beamforming-3ce56e2c54da4408.d: crates/beamforming/src/lib.rs crates/beamforming/src/apodization.rs crates/beamforming/src/bmode.rs crates/beamforming/src/das.rs crates/beamforming/src/flops.rs crates/beamforming/src/grid.rs crates/beamforming/src/iq.rs crates/beamforming/src/linalg.rs crates/beamforming/src/mvdr.rs crates/beamforming/src/pipeline.rs crates/beamforming/src/tof.rs

/root/repo/target/debug/deps/beamforming-3ce56e2c54da4408: crates/beamforming/src/lib.rs crates/beamforming/src/apodization.rs crates/beamforming/src/bmode.rs crates/beamforming/src/das.rs crates/beamforming/src/flops.rs crates/beamforming/src/grid.rs crates/beamforming/src/iq.rs crates/beamforming/src/linalg.rs crates/beamforming/src/mvdr.rs crates/beamforming/src/pipeline.rs crates/beamforming/src/tof.rs

crates/beamforming/src/lib.rs:
crates/beamforming/src/apodization.rs:
crates/beamforming/src/bmode.rs:
crates/beamforming/src/das.rs:
crates/beamforming/src/flops.rs:
crates/beamforming/src/grid.rs:
crates/beamforming/src/iq.rs:
crates/beamforming/src/linalg.rs:
crates/beamforming/src/mvdr.rs:
crates/beamforming/src/pipeline.rs:
crates/beamforming/src/tof.rs:
