/root/repo/target/debug/deps/serde-91ccbf12ca073dd2.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-91ccbf12ca073dd2.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
