/root/repo/target/debug/deps/bench-90a3bea483a8a860.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-90a3bea483a8a860.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-90a3bea483a8a860.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
