/root/repo/target/debug/deps/usmetrics-99fc59f9dc28795a.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/libusmetrics-99fc59f9dc28795a.rlib: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/libusmetrics-99fc59f9dc28795a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
