/root/repo/target/debug/deps/proptest_quantize-43a944a26cfb38ac.d: crates/quantize/tests/proptest_quantize.rs

/root/repo/target/debug/deps/proptest_quantize-43a944a26cfb38ac: crates/quantize/tests/proptest_quantize.rs

crates/quantize/tests/proptest_quantize.rs:
