/root/repo/target/debug/deps/fig15_quantized_images-361aa56420d05620.d: crates/bench/src/bin/fig15_quantized_images.rs

/root/repo/target/debug/deps/libfig15_quantized_images-361aa56420d05620.rmeta: crates/bench/src/bin/fig15_quantized_images.rs

crates/bench/src/bin/fig15_quantized_images.rs:
