/root/repo/target/debug/deps/accelerator-2ee97cb048b08035.d: crates/bench/benches/accelerator.rs

/root/repo/target/debug/deps/accelerator-2ee97cb048b08035: crates/bench/benches/accelerator.rs

crates/bench/benches/accelerator.rs:
