/root/repo/target/debug/deps/proptest-3fd380ac8f7cac91.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3fd380ac8f7cac91.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3fd380ac8f7cac91.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
