/root/repo/target/debug/deps/fig12_psf_insilico-98d1b8c2fe8fb173.d: crates/bench/src/bin/fig12_psf_insilico.rs

/root/repo/target/debug/deps/fig12_psf_insilico-98d1b8c2fe8fb173: crates/bench/src/bin/fig12_psf_insilico.rs

crates/bench/src/bin/fig12_psf_insilico.rs:
