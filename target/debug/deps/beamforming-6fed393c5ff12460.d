/root/repo/target/debug/deps/beamforming-6fed393c5ff12460.d: crates/beamforming/src/lib.rs crates/beamforming/src/apodization.rs crates/beamforming/src/bmode.rs crates/beamforming/src/das.rs crates/beamforming/src/flops.rs crates/beamforming/src/grid.rs crates/beamforming/src/iq.rs crates/beamforming/src/linalg.rs crates/beamforming/src/mvdr.rs crates/beamforming/src/pipeline.rs crates/beamforming/src/tof.rs

/root/repo/target/debug/deps/libbeamforming-6fed393c5ff12460.rlib: crates/beamforming/src/lib.rs crates/beamforming/src/apodization.rs crates/beamforming/src/bmode.rs crates/beamforming/src/das.rs crates/beamforming/src/flops.rs crates/beamforming/src/grid.rs crates/beamforming/src/iq.rs crates/beamforming/src/linalg.rs crates/beamforming/src/mvdr.rs crates/beamforming/src/pipeline.rs crates/beamforming/src/tof.rs

/root/repo/target/debug/deps/libbeamforming-6fed393c5ff12460.rmeta: crates/beamforming/src/lib.rs crates/beamforming/src/apodization.rs crates/beamforming/src/bmode.rs crates/beamforming/src/das.rs crates/beamforming/src/flops.rs crates/beamforming/src/grid.rs crates/beamforming/src/iq.rs crates/beamforming/src/linalg.rs crates/beamforming/src/mvdr.rs crates/beamforming/src/pipeline.rs crates/beamforming/src/tof.rs

crates/beamforming/src/lib.rs:
crates/beamforming/src/apodization.rs:
crates/beamforming/src/bmode.rs:
crates/beamforming/src/das.rs:
crates/beamforming/src/flops.rs:
crates/beamforming/src/grid.rs:
crates/beamforming/src/iq.rs:
crates/beamforming/src/linalg.rs:
crates/beamforming/src/mvdr.rs:
crates/beamforming/src/pipeline.rs:
crates/beamforming/src/tof.rs:
