/root/repo/target/debug/deps/table2_resolution-fcdff49b82d5f214.d: crates/bench/src/bin/table2_resolution.rs

/root/repo/target/debug/deps/table2_resolution-fcdff49b82d5f214: crates/bench/src/bin/table2_resolution.rs

crates/bench/src/bin/table2_resolution.rs:
