/root/repo/target/debug/deps/fig14_psf_invitro-dacf39a704ced319.d: crates/bench/src/bin/fig14_psf_invitro.rs

/root/repo/target/debug/deps/fig14_psf_invitro-dacf39a704ced319: crates/bench/src/bin/fig14_psf_invitro.rs

crates/bench/src/bin/fig14_psf_invitro.rs:
