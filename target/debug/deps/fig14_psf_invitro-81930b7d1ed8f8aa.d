/root/repo/target/debug/deps/fig14_psf_invitro-81930b7d1ed8f8aa.d: crates/bench/src/bin/fig14_psf_invitro.rs

/root/repo/target/debug/deps/libfig14_psf_invitro-81930b7d1ed8f8aa.rmeta: crates/bench/src/bin/fig14_psf_invitro.rs

crates/bench/src/bin/fig14_psf_invitro.rs:
