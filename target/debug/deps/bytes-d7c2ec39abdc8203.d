/root/repo/target/debug/deps/bytes-d7c2ec39abdc8203.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d7c2ec39abdc8203.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
