/root/repo/target/debug/deps/fig12_psf_insilico-634468598d57e13f.d: crates/bench/src/bin/fig12_psf_insilico.rs

/root/repo/target/debug/deps/fig12_psf_insilico-634468598d57e13f: crates/bench/src/bin/fig12_psf_insilico.rs

crates/bench/src/bin/fig12_psf_insilico.rs:
