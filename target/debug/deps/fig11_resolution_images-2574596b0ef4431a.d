/root/repo/target/debug/deps/fig11_resolution_images-2574596b0ef4431a.d: crates/bench/src/bin/fig11_resolution_images.rs

/root/repo/target/debug/deps/fig11_resolution_images-2574596b0ef4431a: crates/bench/src/bin/fig11_resolution_images.rs

crates/bench/src/bin/fig11_resolution_images.rs:
