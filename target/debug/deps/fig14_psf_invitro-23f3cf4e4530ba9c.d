/root/repo/target/debug/deps/fig14_psf_invitro-23f3cf4e4530ba9c.d: crates/bench/src/bin/fig14_psf_invitro.rs

/root/repo/target/debug/deps/fig14_psf_invitro-23f3cf4e4530ba9c: crates/bench/src/bin/fig14_psf_invitro.rs

crates/bench/src/bin/fig14_psf_invitro.rs:
