/root/repo/target/debug/deps/gops_inference_time-44bc1cddf556f552.d: crates/bench/src/bin/gops_inference_time.rs

/root/repo/target/debug/deps/gops_inference_time-44bc1cddf556f552: crates/bench/src/bin/gops_inference_time.rs

crates/bench/src/bin/gops_inference_time.rs:
