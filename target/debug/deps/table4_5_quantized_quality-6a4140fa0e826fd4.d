/root/repo/target/debug/deps/table4_5_quantized_quality-6a4140fa0e826fd4.d: crates/bench/src/bin/table4_5_quantized_quality.rs

/root/repo/target/debug/deps/libtable4_5_quantized_quality-6a4140fa0e826fd4.rmeta: crates/bench/src/bin/table4_5_quantized_quality.rs

crates/bench/src/bin/table4_5_quantized_quality.rs:
