/root/repo/target/debug/deps/quantize-0927f510e3533b6a.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/quantize-0927f510e3533b6a: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
