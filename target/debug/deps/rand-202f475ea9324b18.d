/root/repo/target/debug/deps/rand-202f475ea9324b18.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-202f475ea9324b18: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
