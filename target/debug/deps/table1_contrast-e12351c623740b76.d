/root/repo/target/debug/deps/table1_contrast-e12351c623740b76.d: crates/bench/src/bin/table1_contrast.rs

/root/repo/target/debug/deps/table1_contrast-e12351c623740b76: crates/bench/src/bin/table1_contrast.rs

crates/bench/src/bin/table1_contrast.rs:
