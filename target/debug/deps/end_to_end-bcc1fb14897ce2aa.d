/root/repo/target/debug/deps/end_to_end-bcc1fb14897ce2aa.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-bcc1fb14897ce2aa: tests/end_to_end.rs

tests/end_to_end.rs:
