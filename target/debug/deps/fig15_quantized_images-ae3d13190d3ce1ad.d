/root/repo/target/debug/deps/fig15_quantized_images-ae3d13190d3ce1ad.d: crates/bench/src/bin/fig15_quantized_images.rs

/root/repo/target/debug/deps/fig15_quantized_images-ae3d13190d3ce1ad: crates/bench/src/bin/fig15_quantized_images.rs

crates/bench/src/bin/fig15_quantized_images.rs:
