/root/repo/target/debug/deps/neural-d9e188caf0a35cf7.d: crates/neural/src/lib.rs crates/neural/src/activation.rs crates/neural/src/attention.rs crates/neural/src/conv.rs crates/neural/src/dense.rs crates/neural/src/flops.rs crates/neural/src/gradcheck.rs crates/neural/src/init.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/norm.rs crates/neural/src/optimizer.rs crates/neural/src/schedule.rs crates/neural/src/serialize.rs crates/neural/src/tensor.rs

/root/repo/target/debug/deps/libneural-d9e188caf0a35cf7.rmeta: crates/neural/src/lib.rs crates/neural/src/activation.rs crates/neural/src/attention.rs crates/neural/src/conv.rs crates/neural/src/dense.rs crates/neural/src/flops.rs crates/neural/src/gradcheck.rs crates/neural/src/init.rs crates/neural/src/layer.rs crates/neural/src/loss.rs crates/neural/src/norm.rs crates/neural/src/optimizer.rs crates/neural/src/schedule.rs crates/neural/src/serialize.rs crates/neural/src/tensor.rs

crates/neural/src/lib.rs:
crates/neural/src/activation.rs:
crates/neural/src/attention.rs:
crates/neural/src/conv.rs:
crates/neural/src/dense.rs:
crates/neural/src/flops.rs:
crates/neural/src/gradcheck.rs:
crates/neural/src/init.rs:
crates/neural/src/layer.rs:
crates/neural/src/loss.rs:
crates/neural/src/norm.rs:
crates/neural/src/optimizer.rs:
crates/neural/src/schedule.rs:
crates/neural/src/serialize.rs:
crates/neural/src/tensor.rs:
