/root/repo/target/debug/deps/usmetrics-3089f75f2d6d3bd8.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/libusmetrics-3089f75f2d6d3bd8.rlib: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/libusmetrics-3089f75f2d6d3bd8.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
