/root/repo/target/debug/deps/tiny_vbf_repro-10005e0caa083777.d: src/lib.rs

/root/repo/target/debug/deps/libtiny_vbf_repro-10005e0caa083777.rmeta: src/lib.rs

src/lib.rs:
