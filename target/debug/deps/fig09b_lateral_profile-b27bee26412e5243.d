/root/repo/target/debug/deps/fig09b_lateral_profile-b27bee26412e5243.d: crates/bench/src/bin/fig09b_lateral_profile.rs

/root/repo/target/debug/deps/fig09b_lateral_profile-b27bee26412e5243: crates/bench/src/bin/fig09b_lateral_profile.rs

crates/bench/src/bin/fig09b_lateral_profile.rs:
