/root/repo/target/debug/deps/proptest_neural-d3749f7b376a7541.d: crates/neural/tests/proptest_neural.rs

/root/repo/target/debug/deps/proptest_neural-d3749f7b376a7541: crates/neural/tests/proptest_neural.rs

crates/neural/tests/proptest_neural.rs:
