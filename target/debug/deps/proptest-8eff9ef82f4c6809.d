/root/repo/target/debug/deps/proptest-8eff9ef82f4c6809.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8eff9ef82f4c6809.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8eff9ef82f4c6809.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
