/root/repo/target/debug/deps/quantize-b415becd8c181386.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/debug/deps/libquantize-b415becd8c181386.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
