/root/repo/target/debug/deps/serde_derive-35074d73b7e7a56a.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-35074d73b7e7a56a: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
