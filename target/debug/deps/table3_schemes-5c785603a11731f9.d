/root/repo/target/debug/deps/table3_schemes-5c785603a11731f9.d: crates/bench/src/bin/table3_schemes.rs

/root/repo/target/debug/deps/table3_schemes-5c785603a11731f9: crates/bench/src/bin/table3_schemes.rs

crates/bench/src/bin/table3_schemes.rs:
