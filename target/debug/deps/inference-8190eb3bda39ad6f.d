/root/repo/target/debug/deps/inference-8190eb3bda39ad6f.d: crates/bench/benches/inference.rs

/root/repo/target/debug/deps/inference-8190eb3bda39ad6f: crates/bench/benches/inference.rs

crates/bench/benches/inference.rs:
