/root/repo/target/debug/deps/proptest_beamforming-3dde77ba0dfefdd3.d: crates/beamforming/tests/proptest_beamforming.rs

/root/repo/target/debug/deps/proptest_beamforming-3dde77ba0dfefdd3: crates/beamforming/tests/proptest_beamforming.rs

crates/beamforming/tests/proptest_beamforming.rs:
