/root/repo/target/debug/deps/rand-637f24a29b71ee49.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-637f24a29b71ee49.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
