/root/repo/target/debug/deps/resolution-f1d233ba259d176e.d: crates/bench/benches/resolution.rs

/root/repo/target/debug/deps/resolution-f1d233ba259d176e: crates/bench/benches/resolution.rs

crates/bench/benches/resolution.rs:
