/root/repo/target/debug/deps/fig15_quantized_images-a6481e6352d54856.d: crates/bench/src/bin/fig15_quantized_images.rs

/root/repo/target/debug/deps/fig15_quantized_images-a6481e6352d54856: crates/bench/src/bin/fig15_quantized_images.rs

crates/bench/src/bin/fig15_quantized_images.rs:
