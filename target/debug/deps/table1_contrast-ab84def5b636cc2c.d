/root/repo/target/debug/deps/table1_contrast-ab84def5b636cc2c.d: crates/bench/src/bin/table1_contrast.rs

/root/repo/target/debug/deps/table1_contrast-ab84def5b636cc2c: crates/bench/src/bin/table1_contrast.rs

crates/bench/src/bin/table1_contrast.rs:
