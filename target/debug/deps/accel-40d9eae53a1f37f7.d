/root/repo/target/debug/deps/accel-40d9eae53a1f37f7.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/libaccel-40d9eae53a1f37f7.rlib: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/libaccel-40d9eae53a1f37f7.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
