/root/repo/target/debug/deps/accel-24e964ecce38c985.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/libaccel-24e964ecce38c985.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
