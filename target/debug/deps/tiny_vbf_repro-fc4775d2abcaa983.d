/root/repo/target/debug/deps/tiny_vbf_repro-fc4775d2abcaa983.d: src/lib.rs

/root/repo/target/debug/deps/tiny_vbf_repro-fc4775d2abcaa983: src/lib.rs

src/lib.rs:
