/root/repo/target/debug/deps/bytes-ef0f8c515b18521c.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-ef0f8c515b18521c: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
