/root/repo/target/debug/deps/table3_schemes-edc1c26db6c7cd6b.d: crates/bench/src/bin/table3_schemes.rs

/root/repo/target/debug/deps/libtable3_schemes-edc1c26db6c7cd6b.rmeta: crates/bench/src/bin/table3_schemes.rs

crates/bench/src/bin/table3_schemes.rs:
