/root/repo/target/debug/deps/criterion-740250b3d75883fd.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-740250b3d75883fd.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-740250b3d75883fd.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
