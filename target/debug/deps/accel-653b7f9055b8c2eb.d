/root/repo/target/debug/deps/accel-653b7f9055b8c2eb.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/accel-653b7f9055b8c2eb: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
