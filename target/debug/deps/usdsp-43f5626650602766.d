/root/repo/target/debug/deps/usdsp-43f5626650602766.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libusdsp-43f5626650602766.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
