/root/repo/target/debug/deps/gops_inference_time-cf92b687060116ad.d: crates/bench/src/bin/gops_inference_time.rs

/root/repo/target/debug/deps/gops_inference_time-cf92b687060116ad: crates/bench/src/bin/gops_inference_time.rs

crates/bench/src/bin/gops_inference_time.rs:
