/root/repo/target/debug/deps/usdsp-f60a286a6a5976a5.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libusdsp-f60a286a6a5976a5.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libusdsp-f60a286a6a5976a5.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
