/root/repo/target/debug/deps/fig11_resolution_images-a96cfb64fd8d8456.d: crates/bench/src/bin/fig11_resolution_images.rs

/root/repo/target/debug/deps/libfig11_resolution_images-a96cfb64fd8d8456.rmeta: crates/bench/src/bin/fig11_resolution_images.rs

crates/bench/src/bin/fig11_resolution_images.rs:
