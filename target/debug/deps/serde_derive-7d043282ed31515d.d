/root/repo/target/debug/deps/serde_derive-7d043282ed31515d.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7d043282ed31515d.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
