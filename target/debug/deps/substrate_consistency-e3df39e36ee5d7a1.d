/root/repo/target/debug/deps/substrate_consistency-e3df39e36ee5d7a1.d: tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-e3df39e36ee5d7a1: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
