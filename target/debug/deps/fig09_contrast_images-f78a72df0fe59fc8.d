/root/repo/target/debug/deps/fig09_contrast_images-f78a72df0fe59fc8.d: crates/bench/src/bin/fig09_contrast_images.rs

/root/repo/target/debug/deps/fig09_contrast_images-f78a72df0fe59fc8: crates/bench/src/bin/fig09_contrast_images.rs

crates/bench/src/bin/fig09_contrast_images.rs:
