/root/repo/target/debug/deps/fig12_psf_insilico-fbe9470af13362eb.d: crates/bench/src/bin/fig12_psf_insilico.rs

/root/repo/target/debug/deps/fig12_psf_insilico-fbe9470af13362eb: crates/bench/src/bin/fig12_psf_insilico.rs

crates/bench/src/bin/fig12_psf_insilico.rs:
