/root/repo/target/debug/deps/accel-1366261fa5a6b0b0.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/libaccel-1366261fa5a6b0b0.rlib: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/debug/deps/libaccel-1366261fa5a6b0b0.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
