/root/repo/target/debug/deps/usmetrics-e6042ce01f6910ad.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/libusmetrics-e6042ce01f6910ad.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
