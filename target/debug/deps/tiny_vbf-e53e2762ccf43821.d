/root/repo/target/debug/deps/tiny_vbf-e53e2762ccf43821.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libtiny_vbf-e53e2762ccf43821.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libtiny_vbf-e53e2762ccf43821.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/config.rs:
crates/core/src/evaluation.rs:
crates/core/src/gops.rs:
crates/core/src/inference.rs:
crates/core/src/model.rs:
crates/core/src/quantized.rs:
crates/core/src/training.rs:
