/root/repo/target/debug/deps/tiny_vbf_repro-b2e901bf8c2019b9.d: src/lib.rs

/root/repo/target/debug/deps/libtiny_vbf_repro-b2e901bf8c2019b9.rlib: src/lib.rs

/root/repo/target/debug/deps/libtiny_vbf_repro-b2e901bf8c2019b9.rmeta: src/lib.rs

src/lib.rs:
