/root/repo/target/debug/deps/tiny_vbf-8d09dbca6de52f91.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/tiny_vbf-8d09dbca6de52f91: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/config.rs:
crates/core/src/evaluation.rs:
crates/core/src/gops.rs:
crates/core/src/inference.rs:
crates/core/src/model.rs:
crates/core/src/quantized.rs:
crates/core/src/training.rs:
