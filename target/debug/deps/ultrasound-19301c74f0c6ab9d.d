/root/repo/target/debug/deps/ultrasound-19301c74f0c6ab9d.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/debug/deps/libultrasound-19301c74f0c6ab9d.rmeta: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
