/root/repo/target/debug/deps/table6_resources-f6763cbf797f640a.d: crates/bench/src/bin/table6_resources.rs

/root/repo/target/debug/deps/libtable6_resources-f6763cbf797f640a.rmeta: crates/bench/src/bin/table6_resources.rs

crates/bench/src/bin/table6_resources.rs:
