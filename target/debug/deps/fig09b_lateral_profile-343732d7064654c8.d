/root/repo/target/debug/deps/fig09b_lateral_profile-343732d7064654c8.d: crates/bench/src/bin/fig09b_lateral_profile.rs

/root/repo/target/debug/deps/fig09b_lateral_profile-343732d7064654c8: crates/bench/src/bin/fig09b_lateral_profile.rs

crates/bench/src/bin/fig09b_lateral_profile.rs:
