/root/repo/target/debug/deps/fig12_psf_insilico-ffeb125bb48ab5af.d: crates/bench/src/bin/fig12_psf_insilico.rs

/root/repo/target/debug/deps/libfig12_psf_insilico-ffeb125bb48ab5af.rmeta: crates/bench/src/bin/fig12_psf_insilico.rs

crates/bench/src/bin/fig12_psf_insilico.rs:
