/root/repo/target/debug/deps/serde-58a5881785b6cede.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-58a5881785b6cede.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-58a5881785b6cede.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
