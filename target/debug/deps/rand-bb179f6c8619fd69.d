/root/repo/target/debug/deps/rand-bb179f6c8619fd69.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bb179f6c8619fd69.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bb179f6c8619fd69.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
