/root/repo/target/debug/deps/bench_pr1-a84ea06f0d35110a.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/debug/deps/libbench_pr1-a84ea06f0d35110a.rmeta: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
