/root/repo/target/debug/deps/proptest_dsp-91b98933df106376.d: crates/dsp/tests/proptest_dsp.rs

/root/repo/target/debug/deps/proptest_dsp-91b98933df106376: crates/dsp/tests/proptest_dsp.rs

crates/dsp/tests/proptest_dsp.rs:
