/root/repo/target/debug/deps/usdsp-b77dc9d17063cc22.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/usdsp-b77dc9d17063cc22: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
