/root/repo/target/debug/deps/proptest-4f56e5bc4402d79c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4f56e5bc4402d79c: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
