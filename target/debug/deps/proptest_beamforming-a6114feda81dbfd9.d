/root/repo/target/debug/deps/proptest_beamforming-a6114feda81dbfd9.d: crates/beamforming/tests/proptest_beamforming.rs

/root/repo/target/debug/deps/proptest_beamforming-a6114feda81dbfd9: crates/beamforming/tests/proptest_beamforming.rs

crates/beamforming/tests/proptest_beamforming.rs:
