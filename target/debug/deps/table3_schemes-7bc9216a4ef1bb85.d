/root/repo/target/debug/deps/table3_schemes-7bc9216a4ef1bb85.d: crates/bench/src/bin/table3_schemes.rs

/root/repo/target/debug/deps/table3_schemes-7bc9216a4ef1bb85: crates/bench/src/bin/table3_schemes.rs

crates/bench/src/bin/table3_schemes.rs:
