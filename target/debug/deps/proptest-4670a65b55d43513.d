/root/repo/target/debug/deps/proptest-4670a65b55d43513.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4670a65b55d43513.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
