/root/repo/target/debug/deps/gops_inference_time-98f00a0cac0d3c68.d: crates/bench/src/bin/gops_inference_time.rs

/root/repo/target/debug/deps/libgops_inference_time-98f00a0cac0d3c68.rmeta: crates/bench/src/bin/gops_inference_time.rs

crates/bench/src/bin/gops_inference_time.rs:
