/root/repo/target/debug/deps/serde-9f7330309fc15d3d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9f7330309fc15d3d.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9f7330309fc15d3d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
