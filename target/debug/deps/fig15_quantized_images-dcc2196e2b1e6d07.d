/root/repo/target/debug/deps/fig15_quantized_images-dcc2196e2b1e6d07.d: crates/bench/src/bin/fig15_quantized_images.rs

/root/repo/target/debug/deps/fig15_quantized_images-dcc2196e2b1e6d07: crates/bench/src/bin/fig15_quantized_images.rs

crates/bench/src/bin/fig15_quantized_images.rs:
