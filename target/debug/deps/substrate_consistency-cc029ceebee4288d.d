/root/repo/target/debug/deps/substrate_consistency-cc029ceebee4288d.d: tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-cc029ceebee4288d: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
