/root/repo/target/debug/deps/usmetrics-acfa387e38318126.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/debug/deps/usmetrics-acfa387e38318126: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
