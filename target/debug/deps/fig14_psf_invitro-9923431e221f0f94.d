/root/repo/target/debug/deps/fig14_psf_invitro-9923431e221f0f94.d: crates/bench/src/bin/fig14_psf_invitro.rs

/root/repo/target/debug/deps/fig14_psf_invitro-9923431e221f0f94: crates/bench/src/bin/fig14_psf_invitro.rs

crates/bench/src/bin/fig14_psf_invitro.rs:
