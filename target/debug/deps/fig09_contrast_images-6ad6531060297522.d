/root/repo/target/debug/deps/fig09_contrast_images-6ad6531060297522.d: crates/bench/src/bin/fig09_contrast_images.rs

/root/repo/target/debug/deps/fig09_contrast_images-6ad6531060297522: crates/bench/src/bin/fig09_contrast_images.rs

crates/bench/src/bin/fig09_contrast_images.rs:
