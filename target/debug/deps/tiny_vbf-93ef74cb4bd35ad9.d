/root/repo/target/debug/deps/tiny_vbf-93ef74cb4bd35ad9.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libtiny_vbf-93ef74cb4bd35ad9.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libtiny_vbf-93ef74cb4bd35ad9.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/config.rs:
crates/core/src/evaluation.rs:
crates/core/src/gops.rs:
crates/core/src/inference.rs:
crates/core/src/model.rs:
crates/core/src/quantized.rs:
crates/core/src/training.rs:
