/root/repo/target/debug/deps/bytes-f368bc4ccfbaf4c7.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f368bc4ccfbaf4c7.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f368bc4ccfbaf4c7.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
