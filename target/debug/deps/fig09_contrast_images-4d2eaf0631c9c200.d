/root/repo/target/debug/deps/fig09_contrast_images-4d2eaf0631c9c200.d: crates/bench/src/bin/fig09_contrast_images.rs

/root/repo/target/debug/deps/libfig09_contrast_images-4d2eaf0631c9c200.rmeta: crates/bench/src/bin/fig09_contrast_images.rs

crates/bench/src/bin/fig09_contrast_images.rs:
