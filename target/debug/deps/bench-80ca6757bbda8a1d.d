/root/repo/target/debug/deps/bench-80ca6757bbda8a1d.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-80ca6757bbda8a1d.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-80ca6757bbda8a1d.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
