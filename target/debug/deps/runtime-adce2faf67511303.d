/root/repo/target/debug/deps/runtime-adce2faf67511303.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libruntime-adce2faf67511303.rlib: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libruntime-adce2faf67511303.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
