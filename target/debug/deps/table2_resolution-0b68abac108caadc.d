/root/repo/target/debug/deps/table2_resolution-0b68abac108caadc.d: crates/bench/src/bin/table2_resolution.rs

/root/repo/target/debug/deps/libtable2_resolution-0b68abac108caadc.rmeta: crates/bench/src/bin/table2_resolution.rs

crates/bench/src/bin/table2_resolution.rs:
