/root/repo/target/debug/deps/table1_contrast-c6acf32b7a5da51c.d: crates/bench/src/bin/table1_contrast.rs

/root/repo/target/debug/deps/libtable1_contrast-c6acf32b7a5da51c.rmeta: crates/bench/src/bin/table1_contrast.rs

crates/bench/src/bin/table1_contrast.rs:
