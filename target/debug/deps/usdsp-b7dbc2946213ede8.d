/root/repo/target/debug/deps/usdsp-b7dbc2946213ede8.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libusdsp-b7dbc2946213ede8.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libusdsp-b7dbc2946213ede8.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
