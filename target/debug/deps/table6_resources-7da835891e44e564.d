/root/repo/target/debug/deps/table6_resources-7da835891e44e564.d: crates/bench/src/bin/table6_resources.rs

/root/repo/target/debug/deps/table6_resources-7da835891e44e564: crates/bench/src/bin/table6_resources.rs

crates/bench/src/bin/table6_resources.rs:
