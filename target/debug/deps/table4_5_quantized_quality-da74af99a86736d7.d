/root/repo/target/debug/deps/table4_5_quantized_quality-da74af99a86736d7.d: crates/bench/src/bin/table4_5_quantized_quality.rs

/root/repo/target/debug/deps/table4_5_quantized_quality-da74af99a86736d7: crates/bench/src/bin/table4_5_quantized_quality.rs

crates/bench/src/bin/table4_5_quantized_quality.rs:
