/root/repo/target/debug/deps/criterion-344ed5e7165bf155.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-344ed5e7165bf155.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
