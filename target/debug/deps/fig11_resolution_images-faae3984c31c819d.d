/root/repo/target/debug/deps/fig11_resolution_images-faae3984c31c819d.d: crates/bench/src/bin/fig11_resolution_images.rs

/root/repo/target/debug/deps/fig11_resolution_images-faae3984c31c819d: crates/bench/src/bin/fig11_resolution_images.rs

crates/bench/src/bin/fig11_resolution_images.rs:
