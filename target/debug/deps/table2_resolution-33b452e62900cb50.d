/root/repo/target/debug/deps/table2_resolution-33b452e62900cb50.d: crates/bench/src/bin/table2_resolution.rs

/root/repo/target/debug/deps/table2_resolution-33b452e62900cb50: crates/bench/src/bin/table2_resolution.rs

crates/bench/src/bin/table2_resolution.rs:
