/root/repo/target/debug/deps/end_to_end-48263736e873d7a6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-48263736e873d7a6: tests/end_to_end.rs

tests/end_to_end.rs:
