/root/repo/target/debug/deps/table4_5_quantized_quality-5287036632d6c223.d: crates/bench/src/bin/table4_5_quantized_quality.rs

/root/repo/target/debug/deps/table4_5_quantized_quality-5287036632d6c223: crates/bench/src/bin/table4_5_quantized_quality.rs

crates/bench/src/bin/table4_5_quantized_quality.rs:
