/root/repo/target/debug/deps/beamformers-8add636b01853001.d: crates/bench/benches/beamformers.rs

/root/repo/target/debug/deps/beamformers-8add636b01853001: crates/bench/benches/beamformers.rs

crates/bench/benches/beamformers.rs:
