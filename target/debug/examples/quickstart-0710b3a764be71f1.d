/root/repo/target/debug/examples/quickstart-0710b3a764be71f1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0710b3a764be71f1: examples/quickstart.rs

examples/quickstart.rs:
