/root/repo/target/debug/examples/train_tiny_vbf-fe501580c4b47266.d: examples/train_tiny_vbf.rs

/root/repo/target/debug/examples/train_tiny_vbf-fe501580c4b47266: examples/train_tiny_vbf.rs

examples/train_tiny_vbf.rs:
