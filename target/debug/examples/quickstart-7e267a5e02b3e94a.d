/root/repo/target/debug/examples/quickstart-7e267a5e02b3e94a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7e267a5e02b3e94a: examples/quickstart.rs

examples/quickstart.rs:
