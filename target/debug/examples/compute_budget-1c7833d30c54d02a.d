/root/repo/target/debug/examples/compute_budget-1c7833d30c54d02a.d: examples/compute_budget.rs

/root/repo/target/debug/examples/compute_budget-1c7833d30c54d02a: examples/compute_budget.rs

examples/compute_budget.rs:
