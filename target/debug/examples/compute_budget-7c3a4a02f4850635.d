/root/repo/target/debug/examples/compute_budget-7c3a4a02f4850635.d: examples/compute_budget.rs

/root/repo/target/debug/examples/compute_budget-7c3a4a02f4850635: examples/compute_budget.rs

examples/compute_budget.rs:
