/root/repo/target/debug/examples/fpga_deployment-a384912391050f1a.d: examples/fpga_deployment.rs

/root/repo/target/debug/examples/fpga_deployment-a384912391050f1a: examples/fpga_deployment.rs

examples/fpga_deployment.rs:
