/root/repo/target/debug/examples/fpga_deployment-d95b6ca897043973.d: examples/fpga_deployment.rs

/root/repo/target/debug/examples/fpga_deployment-d95b6ca897043973: examples/fpga_deployment.rs

examples/fpga_deployment.rs:
