/root/repo/target/debug/examples/train_tiny_vbf-4e0b412ac6fbece0.d: examples/train_tiny_vbf.rs

/root/repo/target/debug/examples/train_tiny_vbf-4e0b412ac6fbece0: examples/train_tiny_vbf.rs

examples/train_tiny_vbf.rs:
