/root/repo/target/release/deps/fig12_psf_insilico-aa242e11354e9e10.d: crates/bench/src/bin/fig12_psf_insilico.rs

/root/repo/target/release/deps/fig12_psf_insilico-aa242e11354e9e10: crates/bench/src/bin/fig12_psf_insilico.rs

crates/bench/src/bin/fig12_psf_insilico.rs:
