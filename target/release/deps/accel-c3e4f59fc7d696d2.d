/root/repo/target/release/deps/accel-c3e4f59fc7d696d2.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-c3e4f59fc7d696d2.rlib: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-c3e4f59fc7d696d2.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
