/root/repo/target/release/deps/usmetrics-3ca57937350dcc6b.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-3ca57937350dcc6b.rlib: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-3ca57937350dcc6b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
