/root/repo/target/release/deps/table1_contrast-f8f3f9268a9e9f89.d: crates/bench/src/bin/table1_contrast.rs

/root/repo/target/release/deps/table1_contrast-f8f3f9268a9e9f89: crates/bench/src/bin/table1_contrast.rs

crates/bench/src/bin/table1_contrast.rs:
