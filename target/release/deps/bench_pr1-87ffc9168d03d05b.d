/root/repo/target/release/deps/bench_pr1-87ffc9168d03d05b.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/release/deps/bench_pr1-87ffc9168d03d05b: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
