/root/repo/target/release/deps/fig14_psf_invitro-2202c7d89c5f164c.d: crates/bench/src/bin/fig14_psf_invitro.rs

/root/repo/target/release/deps/fig14_psf_invitro-2202c7d89c5f164c: crates/bench/src/bin/fig14_psf_invitro.rs

crates/bench/src/bin/fig14_psf_invitro.rs:
