/root/repo/target/release/deps/bytes-ad27f48d430eae35.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ad27f48d430eae35.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ad27f48d430eae35.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
