/root/repo/target/release/deps/fig15_quantized_images-41401029a9fe87ad.d: crates/bench/src/bin/fig15_quantized_images.rs

/root/repo/target/release/deps/fig15_quantized_images-41401029a9fe87ad: crates/bench/src/bin/fig15_quantized_images.rs

crates/bench/src/bin/fig15_quantized_images.rs:
