/root/repo/target/release/deps/quantize-1f8e3d684556ae69.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-1f8e3d684556ae69.rlib: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-1f8e3d684556ae69.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
