/root/repo/target/release/deps/fig11_resolution_images-46d884a39019eaf6.d: crates/bench/src/bin/fig11_resolution_images.rs

/root/repo/target/release/deps/fig11_resolution_images-46d884a39019eaf6: crates/bench/src/bin/fig11_resolution_images.rs

crates/bench/src/bin/fig11_resolution_images.rs:
