/root/repo/target/release/deps/bench_pr1-fe2abc2269efcf38.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/release/deps/bench_pr1-fe2abc2269efcf38: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
