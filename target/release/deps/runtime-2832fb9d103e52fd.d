/root/repo/target/release/deps/runtime-2832fb9d103e52fd.d: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-2832fb9d103e52fd.rlib: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-2832fb9d103e52fd.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
