/root/repo/target/release/deps/gops_inference_time-4fb90a524898c670.d: crates/bench/src/bin/gops_inference_time.rs

/root/repo/target/release/deps/gops_inference_time-4fb90a524898c670: crates/bench/src/bin/gops_inference_time.rs

crates/bench/src/bin/gops_inference_time.rs:
