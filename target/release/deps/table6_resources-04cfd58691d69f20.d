/root/repo/target/release/deps/table6_resources-04cfd58691d69f20.d: crates/bench/src/bin/table6_resources.rs

/root/repo/target/release/deps/table6_resources-04cfd58691d69f20: crates/bench/src/bin/table6_resources.rs

crates/bench/src/bin/table6_resources.rs:
