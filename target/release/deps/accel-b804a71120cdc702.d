/root/repo/target/release/deps/accel-b804a71120cdc702.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-b804a71120cdc702.rlib: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-b804a71120cdc702.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
