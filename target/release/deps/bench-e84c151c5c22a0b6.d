/root/repo/target/release/deps/bench-e84c151c5c22a0b6.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-e84c151c5c22a0b6.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-e84c151c5c22a0b6.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
