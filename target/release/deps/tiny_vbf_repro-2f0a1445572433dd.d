/root/repo/target/release/deps/tiny_vbf_repro-2f0a1445572433dd.d: src/lib.rs

/root/repo/target/release/deps/libtiny_vbf_repro-2f0a1445572433dd.rlib: src/lib.rs

/root/repo/target/release/deps/libtiny_vbf_repro-2f0a1445572433dd.rmeta: src/lib.rs

src/lib.rs:
