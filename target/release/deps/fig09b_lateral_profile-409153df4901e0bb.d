/root/repo/target/release/deps/fig09b_lateral_profile-409153df4901e0bb.d: crates/bench/src/bin/fig09b_lateral_profile.rs

/root/repo/target/release/deps/fig09b_lateral_profile-409153df4901e0bb: crates/bench/src/bin/fig09b_lateral_profile.rs

crates/bench/src/bin/fig09b_lateral_profile.rs:
