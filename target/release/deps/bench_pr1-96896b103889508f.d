/root/repo/target/release/deps/bench_pr1-96896b103889508f.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/release/deps/bench_pr1-96896b103889508f: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
