/root/repo/target/release/deps/serde-1098ab922018d450.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1098ab922018d450.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-1098ab922018d450.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
