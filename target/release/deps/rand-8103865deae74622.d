/root/repo/target/release/deps/rand-8103865deae74622.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-8103865deae74622.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-8103865deae74622.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
