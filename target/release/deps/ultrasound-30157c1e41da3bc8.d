/root/repo/target/release/deps/ultrasound-30157c1e41da3bc8.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/release/deps/libultrasound-30157c1e41da3bc8.rlib: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/release/deps/libultrasound-30157c1e41da3bc8.rmeta: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
