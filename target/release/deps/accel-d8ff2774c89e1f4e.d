/root/repo/target/release/deps/accel-d8ff2774c89e1f4e.d: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-d8ff2774c89e1f4e.rlib: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

/root/repo/target/release/deps/libaccel-d8ff2774c89e1f4e.rmeta: crates/accel/src/lib.rs crates/accel/src/accelerator.rs crates/accel/src/memory.rs crates/accel/src/pe.rs crates/accel/src/resources.rs crates/accel/src/scheduler.rs

crates/accel/src/lib.rs:
crates/accel/src/accelerator.rs:
crates/accel/src/memory.rs:
crates/accel/src/pe.rs:
crates/accel/src/resources.rs:
crates/accel/src/scheduler.rs:
