/root/repo/target/release/deps/serde_derive-4aa1163c357435f3.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4aa1163c357435f3.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
