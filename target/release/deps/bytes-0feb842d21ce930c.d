/root/repo/target/release/deps/bytes-0feb842d21ce930c.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0feb842d21ce930c.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0feb842d21ce930c.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
