/root/repo/target/release/deps/runtime-745e789e63948af3.d: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-745e789e63948af3.rlib: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-745e789e63948af3.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
