/root/repo/target/release/deps/serde-930440c219af7245.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-930440c219af7245.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-930440c219af7245.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
