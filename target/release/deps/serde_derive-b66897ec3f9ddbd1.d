/root/repo/target/release/deps/serde_derive-b66897ec3f9ddbd1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b66897ec3f9ddbd1.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
