/root/repo/target/release/deps/usdsp-23bafff2ab09d5d7.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libusdsp-23bafff2ab09d5d7.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libusdsp-23bafff2ab09d5d7.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
