/root/repo/target/release/deps/bench_pr1-4c5d3b63a84bb4ef.d: crates/bench/src/bin/bench_pr1.rs

/root/repo/target/release/deps/bench_pr1-4c5d3b63a84bb4ef: crates/bench/src/bin/bench_pr1.rs

crates/bench/src/bin/bench_pr1.rs:
