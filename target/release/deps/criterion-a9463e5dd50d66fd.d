/root/repo/target/release/deps/criterion-a9463e5dd50d66fd.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a9463e5dd50d66fd.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a9463e5dd50d66fd.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
