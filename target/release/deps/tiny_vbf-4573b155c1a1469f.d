/root/repo/target/release/deps/tiny_vbf-4573b155c1a1469f.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/release/deps/libtiny_vbf-4573b155c1a1469f.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

/root/repo/target/release/deps/libtiny_vbf-4573b155c1a1469f.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/config.rs crates/core/src/evaluation.rs crates/core/src/gops.rs crates/core/src/inference.rs crates/core/src/model.rs crates/core/src/quantized.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/config.rs:
crates/core/src/evaluation.rs:
crates/core/src/gops.rs:
crates/core/src/inference.rs:
crates/core/src/model.rs:
crates/core/src/quantized.rs:
crates/core/src/training.rs:
