/root/repo/target/release/deps/tiny_vbf_repro-eb5195fdc34e25ef.d: src/lib.rs

/root/repo/target/release/deps/libtiny_vbf_repro-eb5195fdc34e25ef.rlib: src/lib.rs

/root/repo/target/release/deps/libtiny_vbf_repro-eb5195fdc34e25ef.rmeta: src/lib.rs

src/lib.rs:
