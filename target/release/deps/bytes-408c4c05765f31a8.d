/root/repo/target/release/deps/bytes-408c4c05765f31a8.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-408c4c05765f31a8.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-408c4c05765f31a8.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
