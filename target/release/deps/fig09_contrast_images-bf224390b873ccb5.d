/root/repo/target/release/deps/fig09_contrast_images-bf224390b873ccb5.d: crates/bench/src/bin/fig09_contrast_images.rs

/root/repo/target/release/deps/fig09_contrast_images-bf224390b873ccb5: crates/bench/src/bin/fig09_contrast_images.rs

crates/bench/src/bin/fig09_contrast_images.rs:
