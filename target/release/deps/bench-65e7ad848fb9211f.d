/root/repo/target/release/deps/bench-65e7ad848fb9211f.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-65e7ad848fb9211f.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-65e7ad848fb9211f.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
