/root/repo/target/release/deps/table4_5_quantized_quality-07692156cf04a9da.d: crates/bench/src/bin/table4_5_quantized_quality.rs

/root/repo/target/release/deps/table4_5_quantized_quality-07692156cf04a9da: crates/bench/src/bin/table4_5_quantized_quality.rs

crates/bench/src/bin/table4_5_quantized_quality.rs:
