/root/repo/target/release/deps/rand-baa7dd9f3ac76483.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-baa7dd9f3ac76483.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-baa7dd9f3ac76483.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
