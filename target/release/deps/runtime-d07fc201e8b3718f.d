/root/repo/target/release/deps/runtime-d07fc201e8b3718f.d: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-d07fc201e8b3718f.rlib: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libruntime-d07fc201e8b3718f.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
