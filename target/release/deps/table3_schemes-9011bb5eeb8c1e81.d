/root/repo/target/release/deps/table3_schemes-9011bb5eeb8c1e81.d: crates/bench/src/bin/table3_schemes.rs

/root/repo/target/release/deps/table3_schemes-9011bb5eeb8c1e81: crates/bench/src/bin/table3_schemes.rs

crates/bench/src/bin/table3_schemes.rs:
