/root/repo/target/release/deps/proptest-bab8f95e680d0051.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bab8f95e680d0051.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bab8f95e680d0051.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
