/root/repo/target/release/deps/bench-56a3aea027cfe2a4.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-56a3aea027cfe2a4.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-56a3aea027cfe2a4.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
