/root/repo/target/release/deps/usmetrics-fe443b66ece6615d.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-fe443b66ece6615d.rlib: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-fe443b66ece6615d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
