/root/repo/target/release/deps/ultrasound-8acf730ff06b40c9.d: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/release/deps/libultrasound-8acf730ff06b40c9.rlib: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

/root/repo/target/release/deps/libultrasound-8acf730ff06b40c9.rmeta: crates/ultrasound/src/lib.rs crates/ultrasound/src/acquisition.rs crates/ultrasound/src/dataset.rs crates/ultrasound/src/invitro.rs crates/ultrasound/src/medium.rs crates/ultrasound/src/phantom.rs crates/ultrasound/src/picmus.rs crates/ultrasound/src/planewave.rs crates/ultrasound/src/pulse.rs crates/ultrasound/src/transducer.rs

crates/ultrasound/src/lib.rs:
crates/ultrasound/src/acquisition.rs:
crates/ultrasound/src/dataset.rs:
crates/ultrasound/src/invitro.rs:
crates/ultrasound/src/medium.rs:
crates/ultrasound/src/phantom.rs:
crates/ultrasound/src/picmus.rs:
crates/ultrasound/src/planewave.rs:
crates/ultrasound/src/pulse.rs:
crates/ultrasound/src/transducer.rs:
