/root/repo/target/release/deps/rand-5fa23b50e67dfabc.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5fa23b50e67dfabc.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-5fa23b50e67dfabc.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
