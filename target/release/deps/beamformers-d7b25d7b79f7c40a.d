/root/repo/target/release/deps/beamformers-d7b25d7b79f7c40a.d: crates/bench/benches/beamformers.rs

/root/repo/target/release/deps/beamformers-d7b25d7b79f7c40a: crates/bench/benches/beamformers.rs

crates/bench/benches/beamformers.rs:
