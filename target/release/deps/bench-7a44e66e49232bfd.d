/root/repo/target/release/deps/bench-7a44e66e49232bfd.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-7a44e66e49232bfd.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-7a44e66e49232bfd.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
