/root/repo/target/release/deps/serde-2aa9879e8230601c.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-2aa9879e8230601c.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-2aa9879e8230601c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
