/root/repo/target/release/deps/serde_derive-e9f8fc876e97a5e2.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-e9f8fc876e97a5e2.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
