/root/repo/target/release/deps/quantize-2182cad78109df2e.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-2182cad78109df2e.rlib: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-2182cad78109df2e.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
