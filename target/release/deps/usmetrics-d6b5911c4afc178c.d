/root/repo/target/release/deps/usmetrics-d6b5911c4afc178c.d: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-d6b5911c4afc178c.rlib: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

/root/repo/target/release/deps/libusmetrics-d6b5911c4afc178c.rmeta: crates/metrics/src/lib.rs crates/metrics/src/compare.rs crates/metrics/src/contrast.rs crates/metrics/src/psf.rs crates/metrics/src/region.rs crates/metrics/src/resolution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/compare.rs:
crates/metrics/src/contrast.rs:
crates/metrics/src/psf.rs:
crates/metrics/src/region.rs:
crates/metrics/src/resolution.rs:
