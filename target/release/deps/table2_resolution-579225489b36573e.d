/root/repo/target/release/deps/table2_resolution-579225489b36573e.d: crates/bench/src/bin/table2_resolution.rs

/root/repo/target/release/deps/table2_resolution-579225489b36573e: crates/bench/src/bin/table2_resolution.rs

crates/bench/src/bin/table2_resolution.rs:
