/root/repo/target/release/deps/quantize-ee636ad307bb14f2.d: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-ee636ad307bb14f2.rlib: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

/root/repo/target/release/deps/libquantize-ee636ad307bb14f2.rmeta: crates/quantize/src/lib.rs crates/quantize/src/fixed.rs crates/quantize/src/quantizer.rs crates/quantize/src/scheme.rs

crates/quantize/src/lib.rs:
crates/quantize/src/fixed.rs:
crates/quantize/src/quantizer.rs:
crates/quantize/src/scheme.rs:
