/root/repo/target/release/deps/serde_derive-7a3e8e29bcd043bc.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-7a3e8e29bcd043bc.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
