/root/repo/target/release/deps/usdsp-081ac0ac117e8e06.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libusdsp-081ac0ac117e8e06.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libusdsp-081ac0ac117e8e06.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/hilbert.rs crates/dsp/src/interp.rs crates/dsp/src/resample.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/hilbert.rs:
crates/dsp/src/interp.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
