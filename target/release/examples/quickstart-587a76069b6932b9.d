/root/repo/target/release/examples/quickstart-587a76069b6932b9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-587a76069b6932b9: examples/quickstart.rs

examples/quickstart.rs:
