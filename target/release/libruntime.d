/root/repo/target/release/libruntime.rlib: /root/repo/crates/runtime/src/lib.rs
