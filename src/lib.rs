//! Workspace-level convenience crate for the Tiny-VBF reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); it simply re-exports the member crates so examples can
//! write `use tiny_vbf_repro::prelude::*;`.

#![deny(missing_docs)]

pub use accel;
pub use beamforming;
pub use neural;
pub use quantize;
pub use runtime;
pub use serve;
pub use tiny_vbf;
pub use ultrasound;
pub use usdsp;
pub use usmetrics;

/// Commonly used types across the workspace.
pub mod prelude {
    pub use accel::accelerator::Accelerator;
    pub use beamforming::grid::ImagingGrid;
    pub use beamforming::pipeline::{Beamformer, DelayAndSum, Mvdr};
    pub use beamforming::BModeImage;
    pub use quantize::QuantScheme;
    pub use serve::router::{FaultPolicy, Router, StreamSpec};
    pub use serve::service::{beamform_server, BeamformEngine, BeamformServer};
    pub use serve::{BatchConfig, ChaosBeamformer, ChaosSchedule, DegradeConfig, Server};
    pub use tiny_vbf::config::TinyVbfConfig;
    pub use tiny_vbf::evaluation::EvaluationConfig;
    pub use tiny_vbf::inference::TinyVbfBeamformer;
    pub use tiny_vbf::model::TinyVbf;
    pub use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
    pub use ultrasound::picmus::{PicmusDataset, PicmusKind};
    pub use ultrasound::{LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let probe = LinearArray::l11_5v();
        assert_eq!(probe.num_elements(), 128);
        let config = TinyVbfConfig::paper();
        assert_eq!(config.channels, 128);
        assert_eq!(QuantScheme::all().len(), 6);
    }
}
