//! Criterion benchmark: quantized Tiny-VBF row inference across the paper's schemes
//! (Tables III-V support), plus tensor quantization throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use neural::init::normal;
use quantize::fixed::FixedFormat;
use quantize::quantizer::quantize_tensor;
use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::QuantizedTinyVbf;

fn bench_quantization(c: &mut Criterion) {
    let config = TinyVbfConfig::small();
    let model = TinyVbf::new(&config).expect("model");
    let row = normal(&[config.tokens, config.channels], 0.3, 3);

    let mut group = c.benchmark_group("quantized_row_inference");
    group.sample_size(20);
    for scheme in [QuantScheme::float(), QuantScheme::w24(), QuantScheme::w16(), QuantScheme::hybrid2()] {
        let quantized = QuantizedTinyVbf::from_model(&model, scheme);
        group.bench_function(scheme.name, |b| b.iter(|| quantized.infer_row(&row)));
    }
    group.finish();

    let tensor = normal(&[368, 128], 0.5, 9);
    let format = FixedFormat::new(16, 10);
    c.bench_function("quantize_tensor_368x128_to_16bit", |b| b.iter(|| quantize_tensor(&tensor, format)));
}

criterion_group!(benches, bench_quantization);
criterion_main!(benches);
