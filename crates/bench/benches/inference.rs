//! Criterion benchmark: per-row inference latency of Tiny-VBF and the learned baselines
//! (the measured counterpart of the Section IV GOPs/inference-time comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use neural::init::normal;
use tiny_vbf::baselines::{Fcnn, TinyCnn};
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;

fn bench_inference(c: &mut Criterion) {
    let config = TinyVbfConfig::paper();
    let mut tiny_vbf = TinyVbf::new(&config).expect("model");
    let mut tiny_cnn = TinyCnn::new(config.channels, 8, 1).expect("cnn");
    let mut fcnn = Fcnn::new(config.channels, 128, 1).expect("fcnn");
    let row = normal(&[config.tokens, config.channels], 0.3, 7);

    let mut group = c.benchmark_group("row_inference_128ch");
    group.sample_size(20);
    group.bench_function("tiny_vbf", |b| b.iter(|| tiny_vbf.infer_row(&row).unwrap()));
    group.bench_function("tiny_cnn", |b| b.iter(|| tiny_cnn.infer_row(&row).unwrap()));
    group.bench_function("fcnn", |b| b.iter(|| fcnn.infer_row(&row).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
