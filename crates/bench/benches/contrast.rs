//! Criterion benchmark backing Table I: end-to-end contrast evaluation (simulate,
//! beamform, score) of the classical beamformers on a reduced cyst frame.

use beamforming::pipeline::{Beamformer, DelayAndSum, Mvdr};
use criterion::{criterion_group, criterion_main, Criterion};
use tiny_vbf::evaluation::EvaluationConfig;
use ultrasound::picmus::PicmusKind;
use usmetrics::contrast_metrics;
use usmetrics::region::CircularRoi;

fn bench_contrast(c: &mut Criterion) {
    let config = EvaluationConfig::test_size();
    let frame = config.contrast_frame(PicmusKind::InSilico).expect("frame");
    let grid = config.grid();
    let cyst = frame.cysts()[0];
    let roi = CircularRoi::new(cyst.cx, cyst.cz, cyst.radius);

    let mut group = c.benchmark_group("table1_contrast_pipeline");
    group.sample_size(10);
    group.bench_function("das_beamform_and_score", |b| {
        b.iter(|| {
            let iq = DelayAndSum::default().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap();
            contrast_metrics(&iq.envelope(), &grid, roi).unwrap()
        })
    });
    group.bench_function("mvdr_beamform_and_score", |b| {
        b.iter(|| {
            let iq = Mvdr::fast().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap();
            contrast_metrics(&iq.envelope(), &grid, roi).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_contrast);
criterion_main!(benches);
