//! Criterion benchmark backing Table II and Figs. 12/14: resolution evaluation
//! (beamform a point-target frame and measure FWHM / lateral PSFs).

use beamforming::pipeline::{Beamformer, DelayAndSum};
use criterion::{criterion_group, criterion_main, Criterion};
use tiny_vbf::evaluation::EvaluationConfig;
use ultrasound::picmus::PicmusKind;
use usmetrics::psf::LateralPsf;
use usmetrics::resolution_metrics;

fn bench_resolution(c: &mut Criterion) {
    let config = EvaluationConfig::test_size();
    let frame = config.resolution_frame(PicmusKind::InSilico).expect("frame");
    let grid = config.grid();
    let target = frame.point_targets().iter().find(|p| p.x.abs() < 1e-4).copied().expect("central target");

    let das_iq = DelayAndSum::default().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap();
    let envelope = das_iq.envelope();

    let mut group = c.benchmark_group("table2_resolution_pipeline");
    group.sample_size(10);
    group.bench_function("das_beamform", |b| {
        b.iter(|| DelayAndSum::default().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap())
    });
    group.bench_function("fwhm_measurement", |b| {
        b.iter(|| resolution_metrics(&envelope, &grid, target.x, target.z).unwrap())
    });
    group.bench_function("lateral_psf_extraction", |b| {
        b.iter(|| LateralPsf::from_envelope(&envelope, &grid, target.z))
    });
    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
