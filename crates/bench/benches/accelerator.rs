//! Criterion benchmark: accelerator-model evaluation cost (Table VI / latency reports)
//! and the underlying scheduler, across quantization schemes and PE counts.

use accel::accelerator::Accelerator;
use accel::resources::analytical_estimate;
use accel::scheduler::Scheduler;
use criterion::{criterion_group, criterion_main, Criterion};
use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;

fn bench_accelerator(c: &mut Criterion) {
    let config = TinyVbfConfig::paper();

    c.bench_function("frame_report_368x128_hybrid2", |b| {
        let accel = Accelerator::new(config, QuantScheme::hybrid2());
        b.iter(|| accel.frame_report(368, 128))
    });

    c.bench_function("all_schemes_report", |b| b.iter(|| Accelerator::all_schemes_report(config, 368, 128)));

    c.bench_function("analytical_resource_estimate", |b| {
        b.iter(|| analytical_estimate(&config, &QuantScheme::hybrid1()))
    });

    let mut group = c.benchmark_group("scheduler_row_cycles_by_pes");
    for pes in [1usize, 2, 4, 8] {
        group.bench_function(format!("{pes}_pes"), |b| {
            let scheduler = Scheduler::with_pes(pes);
            b.iter(|| scheduler.row_cycles(&config, &QuantScheme::hybrid2()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accelerator);
criterion_main!(benches);
