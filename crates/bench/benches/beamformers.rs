//! Criterion benchmark: classical beamformer throughput (DAS vs MVDR) on a reduced
//! frame. Supports the paper's computational-cost argument (Table-free, Section IV).

use beamforming::grid::ImagingGrid;
use beamforming::pipeline::{Beamformer, DelayAndSum, Mvdr};
use criterion::{criterion_group, criterion_main, Criterion};
use ultrasound::picmus::{PicmusDataset, PicmusKind};

fn bench_beamformers(c: &mut Criterion) {
    let frame = PicmusDataset::resolution(PicmusKind::InSilico)
        .with_scale(0.15)
        .with_max_depth(0.025)
        .build(1)
        .expect("frame");
    let grid = ImagingGrid::for_array(&frame.array, 0.010, 0.012, 48, 24);

    let mut group = c.benchmark_group("classical_beamformers");
    group.sample_size(10);
    group.bench_function("das_48x24", |b| {
        b.iter(|| DelayAndSum::default().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap())
    });
    group.bench_function("mvdr_48x24", |b| {
        b.iter(|| Mvdr::fast().beamform(&frame.channel_data, &frame.array, &grid, 1540.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_beamformers);
criterion_main!(benches);
