//! Property tests for the scenario harness: config validation must accept
//! exactly the combinations the harness can actually run, whatever corner
//! of the parameter space a scenario author wanders into.

use bench::harness::{ChaosSpec, LoadModel, ScenarioConfig, StreamLoad};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `validate()` is exactly the conjunction of the documented rules: a
    /// config passes iff duration/warmup/agents/streams/load are all
    /// individually sane. Catches both rejected-valid and accepted-invalid
    /// drift when rules are added or edited.
    #[test]
    fn validation_matches_the_documented_predicate(
        duration_ms in 0u64..1_500,
        warmup_ms in 0u64..1_500,
        agents in 0usize..4,
        num_streams in 0usize..4,
        weight0 in 0u32..3,
        inflight in 0usize..6,
        use_poisson_bit in 0u8..2,
        rate_centi_hz in 0u64..200_000,
        chaos_label_bit in 0u8..2,
        chaos_spec_bit in 0u8..2,
    ) {
        let use_poisson = use_poisson_bit == 1;
        let with_chaos_label = chaos_label_bit == 1;
        let with_chaos_spec = chaos_spec_bit == 1;
        let mut config = ScenarioConfig::named("prop");
        config.duration_ms = duration_ms;
        config.warmup_ms = warmup_ms;
        config.agents = agents;
        config.streams = (0..num_streams)
            .map(|i| {
                let label = if with_chaos_label && i == 0 { "chaos:das" } else { "das" };
                let mut stream = StreamLoad::new(label);
                stream.weight = if i == 0 { weight0 } else { 1 };
                stream
            })
            .collect();
        let rate_hz = rate_centi_hz as f64 / 100.0;
        config.load = if use_poisson {
            LoadModel::OpenLoopPoisson { rate_hz }
        } else {
            LoadModel::ClosedLoop { inflight }
        };
        config.chaos = with_chaos_spec.then(|| ChaosSpec {
            seed: 1,
            panic_one_in: 16,
            delay_one_in: 0,
            delay_ms: 0,
        });

        let expected = duration_ms > 0
            && warmup_ms < duration_ms
            && agents > 0
            && num_streams > 0
            && (weight0 > 0 || num_streams > 1)
            && (!with_chaos_label || with_chaos_spec)
            && if use_poisson { rate_hz > 0.0 } else { inflight > 0 };
        prop_assert_eq!(
            config.validate().is_ok(),
            expected,
            "config {:?}: {:?}",
            config,
            config.validate()
        );
    }

    /// Every *valid* generated config survives the agent wire format
    /// unchanged — the exact document the harness pipes to the spawned
    /// server and load processes.
    #[test]
    fn valid_configs_round_trip_through_the_agent_wire(
        duration_ms in 1u64..1_500,
        warmup_frac in 0u64..100,
        agents in 1usize..4,
        inflight in 1usize..6,
        use_poisson_bit in 0u8..2,
        rate_centi_hz in 1u64..200_000,
        deadline_ms in 0u64..500,
        seed in 0u64..u64::MAX,
    ) {
        let use_poisson = use_poisson_bit == 1;
        let mut config = ScenarioConfig::named("prop_round_trip");
        config.duration_ms = duration_ms;
        config.warmup_ms = duration_ms * warmup_frac / 101;
        config.agents = agents;
        config.deadline_ms = (deadline_ms > 0).then_some(deadline_ms);
        config.seed = seed;
        config.load = if use_poisson {
            LoadModel::OpenLoopPoisson { rate_hz: rate_centi_hz as f64 / 100.0 }
        } else {
            LoadModel::ClosedLoop { inflight }
        };
        prop_assert!(config.validate().is_ok());
        let parsed = ScenarioConfig::from_json(&config.to_json());
        prop_assert_eq!(parsed.as_ref(), Ok(&config), "wire: {}", config.to_json().to_string_compact());
    }
}
