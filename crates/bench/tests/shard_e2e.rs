//! End-to-end failover acceptance: spawn a real registry + two shard
//! processes + load agents, SIGKILL one shard mid-window, and assert the
//! tentpole's bar — every request resolves (success, typed shed, or typed
//! timeout; zero lost), the tail window recovers, and the surviving
//! shard's responses are bitwise identical to the single-process Router
//! path for the same seeds.

use bench::harness::{run_scenario, Profile, ScenarioConfig, StreamLoad};
use bench::harness::LoadModel;

/// A debug-scale sharded scenario: two stream keys over two shards, the
/// second shard killed mid-window. The client deadline is generous so the
/// blackout shows up as retries + failover, not as expiries — which makes
/// "every request resolves successfully or typed" a sharp assertion.
fn failover_scenario() -> ScenarioConfig {
    let mut config = ScenarioConfig::named("e2e_shard_failover");
    config.channels = 8;
    config.grid_rows = 8;
    config.grid_cols = 4;
    config.num_samples = 64;
    config.streams = vec![StreamLoad::new("das-planned"), StreamLoad::new("das-planned")];
    config.load = LoadModel::ClosedLoop { inflight: 2 };
    config.duration_ms = 1_600;
    config.warmup_ms = 200;
    config.deadline_ms = Some(2_000);
    config.shards = 2;
    config.lease_ttl_ms = 250;
    config.heartbeat_ms = 80;
    config.kill_shard_at_ms = Some(600);
    config.seed = 0x5EED;
    config
}

#[test]
fn shard_kill_failover_recovers_and_matches_the_single_process_router() {
    let config = failover_scenario();
    let outcome = run_scenario(&config, Profile::Fast).expect("sharded scenario runs");

    // Accounting: every request resolved — zero lost is the hard bar.
    assert_eq!(outcome.lost, 0, "requests were lost across the shard kill");
    assert_eq!(
        outcome.measured,
        outcome.ok + outcome.expired + outcome.panicked + outcome.errors
    );
    assert!(outcome.ok > 0, "no successful requests measured");

    // Topology: two shards reported, exactly the victim marked killed, the
    // survivor delivered router stats, and the registry evicted the corpse.
    assert_eq!(outcome.shards.len(), 2);
    let killed: Vec<usize> =
        outcome.shards.iter().filter(|s| s.killed).map(|s| s.shard).collect();
    assert_eq!(killed, vec![1]);
    assert!(outcome.shards[0].router.is_some(), "survivor must report router stats");
    let registry = outcome.registry.as_ref().expect("registry stats");
    let evictions =
        registry.get("evictions").and_then(runtime::json::Json::as_u64).unwrap_or(0);
    assert!(evictions >= 1, "registry never evicted the killed shard: {registry:?}");

    // The kill was visible to clients (they retried and failed over) …
    assert!(outcome.retries >= 1, "no retries despite a shard kill");
    assert!(outcome.failovers >= 1, "no failovers despite a shard kill");

    // … and the tail window (final measured quarter, past the recovery
    // bound) is healthy again.
    assert!(outcome.tail_measured > 0, "tail window saw no traffic");
    assert!(
        outcome.tail_success_rate() >= 0.99,
        "tail did not recover: {}/{} ok",
        outcome.tail_ok,
        outcome.tail_measured
    );

    // Bitwise determinism, part 1: no frame's checksum disagreed across
    // responses — including the same key served by shard1 before the kill
    // and shard0 after it.
    assert!(!outcome.checks.is_empty(), "no response checksums collected");
    for (key, sum) in &outcome.checks {
        assert_ne!(sum, "!conflict", "checksum conflict for frame {key}");
    }

    // Bitwise determinism, part 2: the single-process Router path serves
    // the exact same bytes for the same seeds.
    let mut single = config.clone();
    single.name = "e2e_shard_failover_single".into();
    single.shards = 0;
    single.kill_shard_at_ms = None;
    single.lease_ttl_ms = 250; // field is inert without shards, keep defaults tidy
    let single_outcome = run_scenario(&single, Profile::Fast).expect("single-process run");
    assert!(!single_outcome.checks.is_empty());
    let mut compared = 0usize;
    for (key, sum) in &outcome.checks {
        if let Some(single_sum) = single_outcome.checks.get(key) {
            assert_eq!(
                sum, single_sum,
                "frame {key} differs between sharded and single-process serving"
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "no overlapping frames to compare — seeds out of sync?");
}

/// Compound fault: the shard kill of the failover scenario plus seeded
/// injected panics and latency on *both* shards' engines. The bar
/// compounds accordingly — zero lost requests, panics surfacing as typed
/// outcomes, clients retrying and failing over through the blackout, and a
/// tail window recovered to the chaos-limited steady state.
#[test]
fn shard_chaos_kill_recovers_with_typed_panics_and_zero_lost_requests() {
    let mut config =
        bench::scenarios::scenario("shard_chaos", Profile::Fast).expect("catalogue scenario");
    // Debug-scale geometry; fault cadence, kill point and lease timings
    // stay exactly the gated scenario's.
    config.channels = 8;
    config.grid_rows = 8;
    config.grid_cols = 4;
    config.num_samples = 64;
    let outcome = run_scenario(&config, Profile::Fast).expect("shard-chaos scenario runs");

    // Accounting: every request resolved, panics as typed outcomes.
    assert_eq!(outcome.lost, 0, "requests were lost under compound faults");
    assert_eq!(
        outcome.measured,
        outcome.ok + outcome.expired + outcome.panicked + outcome.errors
    );
    assert!(outcome.ok > 0, "no successful requests measured");
    assert!(outcome.panicked >= 1, "the seeded panic schedule never surfaced");

    // The kill happened and was survivable: the victim is marked, the
    // registry evicted its lease, and clients retried/failed over.
    let killed: Vec<usize> =
        outcome.shards.iter().filter(|s| s.killed).map(|s| s.shard).collect();
    assert_eq!(killed, vec![1]);
    let registry = outcome.registry.as_ref().expect("registry stats");
    let evictions =
        registry.get("evictions").and_then(runtime::json::Json::as_u64).unwrap_or(0);
    assert!(evictions >= 1, "registry never evicted the killed shard: {registry:?}");
    assert!(outcome.retries >= 1, "no retries despite a shard kill");
    assert!(outcome.failovers >= 1, "no failovers despite a shard kill");

    // Tail recovery: past the blackout, success returns to the
    // chaos-limited steady state (a small fraction of calls still panic by
    // design, so full recovery is slightly below 1.0).
    assert!(outcome.tail_measured > 0, "tail window saw no traffic");
    assert!(
        outcome.tail_success_rate() >= 0.80,
        "tail did not recover: {}/{} ok",
        outcome.tail_ok,
        outcome.tail_measured
    );

    // Injected latency and panics must not break bitwise determinism of
    // the frames that did serve.
    assert!(!outcome.checks.is_empty(), "no response checksums collected");
    for (key, sum) in &outcome.checks {
        assert_ne!(sum, "!conflict", "checksum conflict for frame {key}");
    }
}
