//! End-to-end harness smoke tests: spawn real `serve_agent`/`load_agent`
//! OS processes through `run_scenario`, and drive the `bench_compare`
//! binary's exit code with a perturbed run — the acceptance checks of the
//! scenario-benchmark subsystem, run at debug scale.

use bench::compare::{baseline_from_summaries, compare, Tolerances};
use bench::harness::{
    agent_bin_path, run_scenario, summary_json, summary_metrics, LoadModel, Profile,
    ScenarioConfig, StreamLoad, SCHEMA_VERSION,
};
use runtime::json::Json;
use std::path::PathBuf;
use std::process::Command;

/// A scenario small enough for a debug-build test (two streams, deadline,
/// two agents → three OS processes) yet exercising the whole protocol.
fn tiny_scenario() -> ScenarioConfig {
    let mut config = ScenarioConfig::named("e2e_smoke");
    config.channels = 8;
    config.grid_rows = 8;
    config.grid_cols = 4;
    config.num_samples = 64;
    config.streams = vec![StreamLoad::new("das-planned"), StreamLoad::new("das")];
    config.load = LoadModel::ClosedLoop { inflight: 2 };
    config.duration_ms = 500;
    config.warmup_ms = 100;
    config.deadline_ms = Some(2_000);
    config.agents = 2;
    config.seed = 7;
    config
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_e2e_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn scenario_spawns_processes_and_emits_a_stable_summary() {
    let config = tiny_scenario();
    let outcome = run_scenario(&config, Profile::Fast).expect("scenario runs");

    // Two load agents reported, requests flowed on both, nothing vanished.
    assert_eq!(outcome.agent_summaries.len(), 2);
    assert!(outcome.ok > 0, "no successful requests measured");
    assert_eq!(outcome.lost, 0, "requests were lost");
    assert_eq!(
        outcome.measured,
        outcome.ok + outcome.expired + outcome.panicked + outcome.errors
    );
    // The merged histogram is the lossless sum of the agents' histograms.
    assert_eq!(
        outcome.latency.count(),
        outcome.agent_summaries.iter().map(|s| s.latency.count()).sum::<u64>()
    );
    assert_eq!(outcome.latency.count(), outcome.ok);
    // The server saw both streams and reported its own counters + RSS.
    assert_eq!(outcome.router.engines.len(), 2);
    assert!(outcome.router.server.completed > 0);
    if cfg!(target_os = "linux") {
        assert!(outcome.server_rss_kb.unwrap_or(0) > 0, "server RSS probe failed");
        assert!(outcome.load_agent_rss_kb.unwrap_or(0) > 0, "agent RSS probe failed");
    }

    // summary.json carries the stable schema and the full gate vocabulary.
    let summary = summary_json(&outcome);
    assert_eq!(summary.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
    assert_eq!(summary.get("scenario").and_then(Json::as_str), Some("e2e_smoke"));
    assert_eq!(
        summary.get("processes").and_then(|p| p.get("load_agents")).and_then(Json::as_u64),
        Some(2)
    );
    let reparsed = Json::parse(&summary.to_string_pretty()).expect("summary round-trips");
    assert_eq!(reparsed, summary);
    let metric_names: Vec<String> = summary_metrics(&summary).into_iter().map(|(n, _)| n).collect();
    for name in ["p50_us", "p99_us", "throughput_rps", "success_rate", "expired", "panicked", "lost"] {
        assert!(metric_names.iter().any(|m| m == name), "metric {name} missing");
    }

    // An identical-by-construction run compares clean against itself.
    let baseline = baseline_from_summaries("fast", &[summary.clone()]).expect("baseline");
    let report = compare(&baseline, &[summary], &Tolerances::default()).expect("compare");
    assert!(!report.regressed(), "self-comparison regressed:\n{}", report.render());
}

/// Mid-run churn: a second stream joins partway through the window (engine
/// spin-up under live traffic) and leaves again; the idle TTL then evicts
/// its engine while the anchor stream keeps serving.
#[test]
fn stream_churn_spins_up_and_evicts_under_traffic() {
    let mut config = tiny_scenario();
    config.name = "e2e_churn".into();
    config.agents = 1;
    config.streams = vec![
        StreamLoad::new("das-planned"),
        StreamLoad { active_from_ms: Some(250), active_until_ms: Some(450), ..StreamLoad::new("das") },
    ];
    config.duration_ms = 800;
    config.warmup_ms = 100;
    config.engine_ttl_ms = Some(100);
    let outcome = run_scenario(&config, Profile::Fast).expect("churn scenario runs");

    assert_eq!(outcome.lost, 0, "churn lost requests");
    assert!(outcome.ok > 0);
    // The churning stream was actually served (its frame checksums were
    // collected) and its idle engine was evicted before shutdown.
    assert!(
        outcome.checks.keys().any(|k| k.starts_with("1:")),
        "windowed stream never served: {:?}",
        outcome.checks.keys().collect::<Vec<_>>()
    );
    assert!(
        outcome.router.resilience.engines_evicted >= 1,
        "idle TTL never evicted the churned engine"
    );
}

/// Fan-in overload: four agents hammer one stream key into a tiny
/// submission queue with `shed_on_full`. The backpressure contract: the
/// overflow surfaces as typed `status:"shed"` refusals (the `errors`
/// bucket) with zero lost requests — never as reader threads hanging on a
/// blocking submit.
#[test]
fn stream_fanin_sheds_typed_errors_instead_of_hanging() {
    let mut config =
        bench::scenarios::scenario("stream_fanin", Profile::Fast).expect("catalogue scenario");
    // Debug-scale geometry; the chaos-pinned 2 ms service time (not
    // beamforming cost) stays the capacity limit.
    config.channels = 8;
    config.grid_rows = 8;
    config.grid_cols = 4;
    config.num_samples = 64;
    config.duration_ms = 700;
    config.warmup_ms = 150;
    let outcome = run_scenario(&config, Profile::Fast).expect("fan-in scenario runs");

    // Every request resolved, and resolved *typed*: ok, expired, or shed.
    assert_eq!(outcome.lost, 0, "fan-in lost requests");
    assert_eq!(
        outcome.measured,
        outcome.ok + outcome.expired + outcome.panicked + outcome.errors
    );
    assert_eq!(outcome.panicked, 0, "no panics are injected in this scenario");
    // The tiny queue demonstrably overflowed (typed sheds in the errors
    // bucket) while accepted traffic kept being served.
    assert!(
        outcome.errors > 0,
        "offered load never overflowed the {}-slot queue into sheds",
        config.queue_capacity.unwrap()
    );
    assert!(outcome.ok > 0, "shedding must not starve accepted requests");
    // All four agents got answers — none was left hanging on backpressure.
    assert_eq!(outcome.agent_summaries.len(), 4);
    for agent in &outcome.agent_summaries {
        assert!(agent.measured > 0, "agent {} saw no measured traffic", agent.agent);
    }
}

#[test]
fn invalid_configs_never_reach_the_process_spawn() {
    let mut config = tiny_scenario();
    config.duration_ms = 0;
    let err = run_scenario(&config, Profile::Fast).unwrap_err();
    assert!(err.contains("duration"), "unexpected error: {err}");
}

/// The gate demonstrably fails: a run identical to the baseline except for
/// one perturbed metric makes the `bench_compare` *binary* exit non-zero.
#[test]
fn bench_compare_binary_exits_nonzero_on_a_perturbed_run() {
    let bench_compare = agent_bin_path("bench_compare").expect("bench_compare binary");
    let dir = scratch_dir("compare");
    let run_dir = dir.join("run");
    std::fs::create_dir_all(&run_dir).expect("run dir");

    // A hand-built summary: only the gate vocabulary matters here.
    let summary = Json::obj([
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("scenario", Json::str("gated")),
        ("profile", Json::str("fast")),
        (
            "latency_us",
            Json::obj([
                ("p50", Json::num(1024.0)),
                ("p99", Json::num(2048.0)),
                ("mean", Json::num(1200.0)),
            ]),
        ),
        ("throughput_rps", Json::num(500.0)),
        ("success_rate", Json::num(1.0)),
        (
            "requests",
            Json::obj([
                ("expired", Json::num(0.0)),
                ("panicked", Json::num(0.0)),
                ("lost", Json::num(0.0)),
            ]),
        ),
        ("rss_kb", Json::obj([("server_max", Json::num(10_000.0))])),
    ]);
    std::fs::write(run_dir.join("gated.summary.json"), summary.to_string_pretty())
        .expect("write summary");

    let baseline_path = dir.join("baseline.json");
    let tolerance_path = dir.join("tolerances.json");
    std::fs::write(
        &tolerance_path,
        r#"{"defaults": {"p99_us": {"rel": 0.20}, "lost": {"abs": 0}}}"#,
    )
    .expect("write tolerances");

    // 1. Write the baseline from the run.
    let status = Command::new(&bench_compare)
        .args(["--baseline"])
        .arg(&baseline_path)
        .args(["--dir"])
        .arg(&run_dir)
        .arg("--write-baseline")
        .status()
        .expect("run bench_compare --write-baseline");
    assert!(status.success(), "--write-baseline failed");

    // 2. The unperturbed run passes (exit 0).
    let status = Command::new(&bench_compare)
        .args(["--baseline"])
        .arg(&baseline_path)
        .args(["--dir"])
        .arg(&run_dir)
        .args(["--tolerance-file"])
        .arg(&tolerance_path)
        .status()
        .expect("run bench_compare");
    assert!(status.success(), "identical run must pass the gate");

    // 3. Perturb p99 by 4× (tolerance allows 1.2×) → exit code 1.
    let text = std::fs::read_to_string(run_dir.join("gated.summary.json")).unwrap();
    std::fs::write(
        run_dir.join("gated.summary.json"),
        text.replace("\"p99\": 2048", "\"p99\": 8192"),
    )
    .expect("perturb summary");
    let output = Command::new(&bench_compare)
        .args(["--baseline"])
        .arg(&baseline_path)
        .args(["--dir"])
        .arg(&run_dir)
        .args(["--tolerance-file"])
        .arg(&tolerance_path)
        .output()
        .expect("run bench_compare on perturbed run");
    assert_eq!(output.status.code(), Some(1), "perturbed run must fail the gate");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("REGRESSED"), "report must flag the regression:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
