//! The named scenario catalogue — the bench trajectory as data.
//!
//! Each scenario ports one of the measurements the per-PR bench binaries
//! (`bench_pr2`–`bench_pr6`) made in-process into the process-spawning
//! harness, so the whole trajectory is re-runnable under one schema and
//! gated by `bench_compare`:
//!
//! | Scenario | Ports | Question it answers |
//! |---|---|---|
//! | `baseline_latency` | bench_pr2 | single-stream serve-path latency |
//! | `planned_vs_direct` | bench_pr3 | plan-cache reuse vs per-frame geometry |
//! | `router_fanout` | bench_pr4 | heterogeneous streams + deadline under fan-out |
//! | `quantized_sweep` | bench_pr5 | all six quantization schemes side by side |
//! | `simd_kernels` | bench_pr9 | float vs fx16 integer datapath under serve load |
//! | `poisson_openloop` | new | open-loop offered load (queueing, not capacity) |
//! | `chaos_availability` | bench_pr6 | success rate under injected faults + ladder |
//! | `stream_fanin` | new | many agents on one stream key: typed shedding, not backpressure hangs |
//! | `shard_chaos` | new | shard kill compounded with injected panics/latency |
//!
//! Both profiles describe the *same* scenarios; [`Profile::Fast`] shrinks
//! grids and durations to CI-smoke scale (~a second per scenario) while
//! [`Profile::Full`] is the measurement shape.

use crate::harness::{ChaosSpec, LoadModel, Profile, ScenarioConfig, StreamLoad};
use quantize::QuantScheme;

/// Names of every scenario in the catalogue, in run order.
pub fn scenario_names() -> Vec<&'static str> {
    vec![
        "baseline_latency",
        "planned_vs_direct",
        "router_fanout",
        "quantized_sweep",
        "simd_kernels",
        "poisson_openloop",
        "chaos_availability",
        "stream_churn",
        "shard_failover",
        "stream_fanin",
        "shard_chaos",
    ]
}

/// Builds the full catalogue for a profile. Every config is validated; a
/// construction bug here is a panic at build time, not a mid-run failure.
pub fn all_scenarios(profile: Profile) -> Vec<ScenarioConfig> {
    let configs: Vec<ScenarioConfig> =
        scenario_names().into_iter().map(|name| scenario(name, profile).expect("known name")).collect();
    for config in &configs {
        if let Err(e) = config.validate() {
            panic!("scenario `{}` is invalid: {e}", config.name);
        }
    }
    configs
}

/// Builds one named scenario for a profile; `None` for unknown names.
pub fn scenario(name: &str, profile: Profile) -> Option<ScenarioConfig> {
    let fast = profile == Profile::Fast;
    let mut config = ScenarioConfig::named(name);
    // Shared profile scaling: the fast profile must finish in about a
    // second per scenario; the full profile runs long enough for stable
    // percentiles on larger grids.
    if fast {
        config.channels = 32;
        config.grid_rows = 16;
        config.grid_cols = 8;
        config.num_samples = 256;
        config.duration_ms = 800;
        config.warmup_ms = 200;
    } else {
        config.channels = 64;
        config.grid_rows = 48;
        config.grid_cols = 24;
        config.num_samples = 1024;
        config.duration_ms = 6_000;
        config.warmup_ms = 1_000;
    }
    match name {
        "baseline_latency" => {
            // bench_pr2's question: what does one stream cost through the
            // full submit→batch→respond path, nothing else running?
            config.streams = vec![StreamLoad::new("das-planned")];
            config.load = LoadModel::ClosedLoop { inflight: 4 };
            config.seed = 0xB10E;
        }
        "planned_vs_direct" => {
            // bench_pr3's question: plan-cache reuse vs recomputing
            // geometry per frame. Same probe, same grid, two backends; the
            // per-engine latency split in `server.engines` carries the
            // comparison.
            config.streams = vec![StreamLoad::new("das"), StreamLoad::new("das-planned")];
            config.load = LoadModel::ClosedLoop { inflight: 4 };
            config.seed = 0x91A2;
        }
        "router_fanout" => {
            // bench_pr4's question: heterogeneous probe/grid streams
            // through one router under a dispatch deadline, offered by two
            // concurrent agent processes.
            let (small, large) = if fast { ((16, 8), (24, 16)) } else { ((32, 16), (64, 32)) };
            config.streams = vec![
                StreamLoad {
                    weight: 2,
                    channels: Some(if fast { 16 } else { 32 }),
                    grid: Some(small),
                    ..StreamLoad::new("das-planned")
                },
                StreamLoad { grid: Some(large), ..StreamLoad::new("das-planned") },
                StreamLoad::new("das"),
            ];
            config.load = LoadModel::ClosedLoop { inflight: 3 };
            config.agents = 2;
            config.deadline_ms = Some(if fast { 250 } else { 500 });
            config.max_batch = 6;
            config.seed = 0xFA40;
        }
        "quantized_sweep" => {
            // bench_pr5's question: the six quantization schemes of the
            // paper's Table III side by side, sharing one TOF plan cache.
            config.streams =
                QuantScheme::all().iter().map(|s| StreamLoad::new(s.backend_label())).collect();
            config.load = LoadModel::ClosedLoop { inflight: 6 };
            // Tiny-VBF inference is the heavy path: keep the full profile
            // on the fast-profile geometry and stretch only the duration.
            config.channels = 32;
            config.grid_rows = 16;
            config.grid_cols = 8;
            config.num_samples = 256;
            config.seed = 0x0A17;
        }
        "simd_kernels" => {
            // bench_pr9's question carried into the serving harness: with
            // the SIMD datapath under the hot loops, does the fx16 integer
            // rung actually undercut the float path end to end? Two
            // Tiny-VBF streams — float and fx16 — share one TOF plan cache;
            // the per-engine latency split carries the comparison, and the
            // gate tracks both rungs against the recorded baseline.
            config.streams =
                vec![StreamLoad::new("tiny-vbf-fp"), StreamLoad::new("tiny-vbf-fx16")];
            config.load = LoadModel::ClosedLoop { inflight: 6 };
            // Same reasoning as `quantized_sweep`: inference is the heavy
            // path, so the full profile stretches duration, not geometry.
            config.channels = 32;
            config.grid_rows = 16;
            config.grid_cols = 8;
            config.num_samples = 256;
            config.seed = 0x51D9;
        }
        "poisson_openloop" => {
            // New with the harness: open-loop offered load. A closed loop
            // self-throttles and can never show queueing collapse; seeded
            // Poisson arrivals keep offering at rate λ whatever the server
            // does, so deadline expiries become visible.
            config.streams = vec![StreamLoad::new("das-planned")];
            config.load = LoadModel::OpenLoopPoisson { rate_hz: if fast { 120.0 } else { 200.0 } };
            config.deadline_ms = Some(if fast { 100 } else { 200 });
            config.seed = 0x9015;
        }
        "chaos_availability" => {
            // bench_pr6's question: availability under injected faults,
            // with the degradation ladder allowed to shed to the healthy
            // backend. The chaos rung panics 1-in-16 and stalls on *every*
            // call; 8 pipelined requests against a small batch ceiling
            // saturate the deadline, so expiries accumulate until the
            // ladder downshifts to the clean planned-DAS rung and the
            // success rate recovers — the dynamic the gate then tracks.
            config.streams = vec![StreamLoad::new("chaos:das-planned")];
            config.chaos = Some(ChaosSpec {
                seed: 0xC405,
                panic_one_in: 16,
                delay_one_in: 1,
                delay_ms: if fast { 6 } else { 12 },
            });
            config.degrade_ladder = Some(vec!["chaos:das-planned".into(), "das-planned".into()]);
            config.deadline_ms = Some(if fast { 25 } else { 50 });
            config.load = LoadModel::ClosedLoop { inflight: 8 };
            config.max_batch = 2;
            config.seed = 0xC4A0;
        }
        "stream_churn" => {
            // Mid-run churn: the stream mix changes while the offered
            // window is live. A second stream joins partway through (engine
            // spin-up under traffic) and leaves again; the idle-engine TTL
            // then evicts its engine while the anchor stream keeps serving.
            // The gate watches the anchor's latency and the eviction
            // counter — churn must neither wedge the router nor leak
            // engines.
            let (from, until, ttl) = if fast { (350, 550, 120) } else { (2_500, 4_000, 800) };
            config.streams = vec![
                StreamLoad::new("das-planned"),
                StreamLoad {
                    active_from_ms: Some(from),
                    active_until_ms: Some(until),
                    ..StreamLoad::new("das")
                },
            ];
            config.engine_ttl_ms = Some(ttl);
            config.load = LoadModel::ClosedLoop { inflight: 4 };
            config.seed = 0x51C8;
        }
        "shard_failover" => {
            // The tentpole's acceptance scenario: two shard processes
            // behind the registry, one stream key assigned to each; the
            // harness SIGKILLs the second shard mid-window. Clients must
            // ride it out — retry/backoff through the blackout (at most
            // lease TTL + one sweep + one routing refresh), then fail over
            // to the survivor — with every request resolving and the tail
            // window (the final quarter of the measured span, well past
            // recovery) back to full success.
            config.streams = vec![StreamLoad::new("das-planned"), StreamLoad::new("das-planned")];
            config.shards = 2;
            config.lease_ttl_ms = 250;
            config.heartbeat_ms = 80;
            config.load = LoadModel::ClosedLoop { inflight: 4 };
            config.deadline_ms = Some(500);
            if fast {
                config.duration_ms = 1_600;
                config.kill_shard_at_ms = Some(700);
            } else {
                config.kill_shard_at_ms = Some(2_500);
            }
            config.seed = 0x5A8D;
        }
        "stream_fanin" => {
            // Fan-in overload: four agent processes all offering the *same*
            // stream key into a deliberately tiny submission queue. With
            // the blocking submit path, overload would surface as unbounded
            // socket backpressure (reader threads parked on a full queue);
            // `shed_on_full` turns it into `status:"shed"` — a typed,
            // gate-visible outcome (`errors`) — while accepted requests
            // keep bounded queueing delay. Chaos pins the per-call service
            // time so capacity, and therefore the overflow, is
            // machine-independent.
            config.streams = vec![StreamLoad::new("chaos:das-planned")];
            config.chaos =
                Some(ChaosSpec { seed: 0xFA11, panic_one_in: 0, delay_one_in: 1, delay_ms: 2 });
            config.agents = 4;
            config.load = LoadModel::OpenLoopPoisson { rate_hz: if fast { 300.0 } else { 250.0 } };
            config.queue_capacity = Some(8);
            config.shed_on_full = true;
            config.deadline_ms = Some(if fast { 100 } else { 200 });
            config.max_batch = 4;
            config.seed = 0xFA11;
        }
        "shard_chaos" => {
            // Compound fault: both shards serve chaos-wrapped engines
            // (seeded injected panics and latency) while the harness
            // SIGKILLs the second shard mid-window. The bar compounds the
            // failover scenario's: zero lost requests, panics surface as
            // typed outcomes, clients retry and fail over through the
            // blackout, and the tail window recovers to the chaos-limited
            // steady state.
            //
            // The panic rate is deliberately far below the engine's
            // consecutive-panic quarantine threshold (see the catalogue
            // test): this scenario measures fault *transparency* — typed
            // outcomes plus retry/failover riding through the kill — not
            // circuit-breaker storms, which would drown the tail in
            // `Quarantined` rejections a closed loop turns into a spin.
            config.streams =
                vec![StreamLoad::new("chaos:das-planned"), StreamLoad::new("chaos:das-planned")];
            config.chaos = Some(ChaosSpec {
                seed: 0xC0C5,
                panic_one_in: 100,
                delay_one_in: 2,
                delay_ms: if fast { 2 } else { 4 },
            });
            config.max_batch = 2;
            config.shards = 2;
            config.lease_ttl_ms = 250;
            config.heartbeat_ms = 80;
            config.load = LoadModel::ClosedLoop { inflight: 4 };
            config.deadline_ms = Some(500);
            if fast {
                config.duration_ms = 1_600;
                config.kill_shard_at_ms = Some(700);
            } else {
                config.kill_shard_at_ms = Some(2_500);
            }
            config.seed = 0xC0C5;
        }
        _ => return None,
    }
    Some(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_valid_in_both_profiles() {
        for profile in [Profile::Fast, Profile::Full] {
            let configs = all_scenarios(profile);
            assert_eq!(configs.len(), scenario_names().len());
            for config in &configs {
                config.validate().expect("catalogue scenario must validate");
            }
        }
        assert!(scenario("no_such_scenario", Profile::Fast).is_none());
    }

    #[test]
    fn catalogue_names_match_configs() {
        let configs = all_scenarios(Profile::Fast);
        let names: Vec<_> = configs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, scenario_names());
    }

    #[test]
    fn quantized_sweep_covers_every_scheme() {
        let config = scenario("quantized_sweep", Profile::Fast).unwrap();
        assert_eq!(config.streams.len(), QuantScheme::all().len());
        for scheme in QuantScheme::all() {
            assert!(config.streams.iter().any(|s| s.backend == scheme.backend_label()));
        }
    }

    #[test]
    fn churn_scenario_changes_the_mix_mid_window() {
        for profile in [Profile::Fast, Profile::Full] {
            let config = scenario("stream_churn", profile).unwrap();
            let churner = &config.streams[1];
            let from = churner.active_from_ms.expect("windowed stream");
            let until = churner.active_until_ms.expect("windowed stream");
            // The join and the leave must both land inside the offered
            // window, and the idle TTL must be able to evict before it ends
            // — otherwise the scenario no longer exercises churn.
            assert!(from > 0 && until < config.duration_ms);
            assert!(until + config.engine_ttl_ms.unwrap() < config.duration_ms);
            assert!(config.streams[0].is_active_at(0));
        }
    }

    #[test]
    fn failover_scenario_kills_inside_the_window_and_recovers_before_the_tail() {
        for profile in [Profile::Fast, Profile::Full] {
            let config = scenario("shard_failover", profile).unwrap();
            assert_eq!(config.shards, 2);
            let kill_at = config.kill_shard_at_ms.expect("kill point");
            // The blackout is bounded by lease TTL + sweep + routing
            // refresh; the tail window (final measured quarter) must start
            // after the kill plus that bound, or its success rate would
            // measure the outage instead of the recovery.
            let measured = config.duration_ms - config.warmup_ms;
            let tail_start = config.warmup_ms + 3 * measured / 4;
            let recovery_bound = config.lease_ttl_ms + config.lease_ttl_ms / 4 + 100;
            assert!(kill_at > config.warmup_ms);
            assert!(kill_at + recovery_bound < tail_start, "{profile:?}");
        }
    }

    #[test]
    fn fanin_scenario_overflows_a_tiny_queue_with_typed_shedding() {
        for profile in [Profile::Fast, Profile::Full] {
            let config = scenario("stream_fanin", profile).unwrap();
            assert!(config.shed_on_full, "fan-in must shed, not block");
            let capacity = config.queue_capacity.expect("tiny queue") as f64;
            assert!(config.agents >= 4, "fan-in needs many agents on the one key");
            assert_eq!(config.streams.len(), 1, "all agents share one stream key");
            // The offered rate must exceed the chaos-pinned service
            // capacity (1 worker × 1/delay) or the queue never overflows
            // and the scenario stops measuring shedding.
            let chaos = config.chaos.as_ref().expect("service time is chaos-pinned");
            assert_eq!(chaos.delay_one_in, 1);
            let capacity_rps = 1_000.0 / chaos.delay_ms as f64;
            let LoadModel::OpenLoopPoisson { rate_hz } = config.load else {
                panic!("fan-in must offer open-loop load");
            };
            let offered = rate_hz * config.agents as f64;
            assert!(
                offered > 1.5 * capacity_rps,
                "{profile:?}: offered {offered} rps cannot overflow {capacity_rps} rps capacity"
            );
            // Queued wait is bounded by capacity × service time — the
            // deadline must clear it, so accepted requests succeed and the
            // only typed refusals are sheds.
            assert!((capacity * chaos.delay_ms as f64) < config.deadline_ms.unwrap() as f64);
        }
    }

    #[test]
    fn shard_chaos_compounds_the_kill_with_seeded_faults() {
        for profile in [Profile::Fast, Profile::Full] {
            let config = scenario("shard_chaos", profile).unwrap();
            assert_eq!(config.shards, 2);
            assert!(config.kill_shard_at_ms.is_some());
            let chaos = config.chaos.as_ref().expect("chaos schedule");
            // The seeded panic schedule fires with probability 1/N per
            // call, so a whole dispatch of `max_batch` calls panics with
            // probability ≈ max_batch/N — and three *consecutive* panicked
            // dispatches quarantine the engine, turning the closed loop
            // into a 250 ms spin of typed rejections. Keep the per-dispatch
            // panic probability low enough (N ≥ 20 × max_batch ⇒ cube
            // ≤ 1.25e-4) that quarantine is out of the measured dynamics.
            assert!(
                chaos.panic_one_in >= 20 * config.max_batch as u64,
                "panic cadence {} risks quarantine storms at batch {}",
                chaos.panic_one_in,
                config.max_batch
            );
            for stream in &config.streams {
                assert!(stream.backend.starts_with("chaos:"), "both shards serve chaos engines");
            }
            // Same recovery arithmetic as shard_failover: the kill plus the
            // blackout bound must land before the tail window starts.
            let measured = config.duration_ms - config.warmup_ms;
            let tail_start = config.warmup_ms + 3 * measured / 4;
            let recovery_bound = config.lease_ttl_ms + config.lease_ttl_ms / 4 + 100;
            assert!(config.kill_shard_at_ms.unwrap() + recovery_bound < tail_start, "{profile:?}");
        }
    }

    #[test]
    fn fanout_scenario_spawns_multiple_processes() {
        // The acceptance bar: scenarios spawn ≥ 2 OS processes. Every
        // scenario has 1 server + ≥ 1 agents; the fan-out one uses 2 agents.
        let config = scenario("router_fanout", Profile::Fast).unwrap();
        assert!(config.agents >= 2);
        for config in all_scenarios(Profile::Fast) {
            assert!(1 + config.agents >= 2, "{} must spawn at least 2 processes", config.name);
        }
    }
}
