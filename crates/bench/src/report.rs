//! Table formatting and paper reference values shared by the regeneration binaries.
//!
//! # Performance notes
//!
//! The regeneration binaries inherit the workspace threading model: ToF
//! correction, DAS and the learned-beamformer row sweeps all split image rows
//! across `runtime::default_threads()` workers (override with the
//! `TINY_VBF_THREADS` environment variable), and `Tensor::matmul` runs an
//! 8×32 register-tiled kernel. Parallel outputs are bitwise identical to the
//! serial ones, so table values never depend on the host's core count. For
//! before/after throughput measurements run
//! `cargo run --release -p bench --bin bench_pr1`, which writes
//! `BENCH_pr1.json` (matmul, DAS and ToF medians plus speedups vs the seed's
//! serial loops).

use tiny_vbf::evaluation::{ContrastTableRow, EvaluationConfig, QuantizedQualityRow, ResolutionTableRow};

/// Paper Table I reference values: `(beamformer, sim CR, sim CNR, sim GCNR, phantom CR,
/// phantom CNR, phantom GCNR)`.
pub const PAPER_TABLE1: [(&str, f32, f32, f32, f32, f32, f32); 4] = [
    ("DAS", 13.78, 2.37, 0.83, 11.70, 1.04, 0.83),
    ("MVDR", 21.66, 1.95, 0.78, 15.09, 2.63, 0.72),
    ("Tiny-CNN", 13.45, 2.04, 0.83, 11.30, 1.05, 0.79),
    ("Tiny-VBF", 14.89, 1.75, 0.74, 12.20, 1.39, 0.67),
];

/// Paper Table II reference values: `(beamformer, sim axial, sim lateral, phantom axial,
/// phantom lateral)` in millimetres.
pub const PAPER_TABLE2: [(&str, f32, f32, f32, f32); 4] = [
    ("DAS", 0.364, 0.6, 0.459, 0.6),
    ("MVDR", 0.297, 0.45, 0.459, 0.48),
    ("Tiny-CNN", 0.368, 0.6, 0.466, 0.72),
    ("Tiny-VBF", 0.303, 0.45, 0.444, 0.48),
];

/// Paper Table IV reference values: `(scheme, sim axial, sim lateral, phantom axial,
/// phantom lateral)` in millimetres.
pub const PAPER_TABLE4: [(&str, f32, f32, f32, f32); 5] = [
    ("Float", 0.303, 0.45, 0.444, 0.48),
    ("24 bits", 0.303, 0.45, 0.444, 0.48),
    ("20 bits", 0.310, 0.45, 0.421, 0.54),
    ("Hybrid-1", 0.309, 0.45, 0.429, 0.54),
    ("Hybrid-2", 0.309, 0.45, 0.429, 0.54),
];

/// Paper Table V reference values: `(scheme, sim CR, sim CNR, sim GCNR, phantom CR,
/// phantom CNR, phantom GCNR)`.
pub const PAPER_TABLE5: [(&str, f32, f32, f32, f32, f32, f32); 5] = [
    ("Float", 14.89, 1.75, 0.74, 12.20, 1.39, 0.67),
    ("24 bits", 14.07, 1.84, 0.75, 13.0, 1.22, 0.69),
    ("20 bits", 14.30, 1.45, 0.73, 13.05, 1.22, 0.67),
    ("Hybrid-1", 13.34, 1.74, 0.73, 12.72, 1.37, 0.68),
    ("Hybrid-2", 13.26, 1.75, 0.72, 12.62, 1.40, 0.67),
];

/// Chooses the evaluation configuration from the `TINY_VBF_EVAL` environment variable
/// (`test` → seconds-scale smoke run, otherwise the reduced configuration).
pub fn evaluation_config_from_env() -> EvaluationConfig {
    match std::env::var("TINY_VBF_EVAL").as_deref() {
        Ok("test") => EvaluationConfig::test_size(),
        Ok("paper") => EvaluationConfig::paper(),
        _ => EvaluationConfig::reduced(),
    }
}

/// Whether a per-PR bench binary should run its reduced fast configuration.
///
/// True when either the binary's own `BENCH_PR<n>_FAST` variable or the
/// `BENCH_FAST` umbrella is set (any value). Every `bench_pr*` binary used
/// to hand-roll the same `std::env::var(...).is_ok()` line with no umbrella;
/// CI and developers can now flip one switch for the whole trajectory.
pub fn fast_mode(pr: u32) -> bool {
    std::env::var("BENCH_FAST").is_ok() || std::env::var(format!("BENCH_PR{pr}_FAST")).is_ok()
}

/// Reads a positive-integer tuning knob from the environment
/// (`BENCH_PR5_FRAMES`, `BENCH_PR6_WAVES`, …): `Some(n)` when the variable
/// parses as an integer `>= min`, `None` when unset or out of range.
pub fn env_knob(name: &str, min: usize) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= min)
}

/// Renders a contrast table (our measured values) with the paper's reference alongside.
pub fn format_contrast_table(title: &str, rows: &[ContrastTableRow], reference: &[(&str, f32, f32, f32)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
        "Beamformer", "CR(dB)", "CNR", "GCNR", "ref CR", "ref CNR", "ref GCNR"
    ));
    out.push_str(&"-".repeat(76));
    out.push('\n');
    for row in rows {
        let reference_row = reference.iter().find(|(name, ..)| *name == row.beamformer);
        let (rc, rn, rg) = reference_row.map_or((f32::NAN, f32::NAN, f32::NAN), |r| (r.1, r.2, r.3));
        out.push_str(&format!(
            "{:<10} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}\n",
            row.beamformer, row.metrics.cr_db, row.metrics.cnr, row.metrics.gcnr, rc, rn, rg
        ));
    }
    out
}

/// Renders a resolution table with the paper's reference alongside.
pub fn format_resolution_table(title: &str, rows: &[ResolutionTableRow], reference: &[(&str, f32, f32)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} | {:>10} {:>11} | {:>10} {:>11}\n",
        "Beamformer", "Axial(mm)", "Lateral(mm)", "ref Axial", "ref Lateral"
    ));
    out.push_str(&"-".repeat(62));
    out.push('\n');
    for row in rows {
        let reference_row = reference.iter().find(|(name, ..)| *name == row.beamformer);
        let (ra, rl) = reference_row.map_or((f32::NAN, f32::NAN), |r| (r.1, r.2));
        out.push_str(&format!(
            "{:<10} | {:>10.3} {:>11.3} | {:>10.3} {:>11.3}\n",
            row.beamformer, row.metrics.axial_mm, row.metrics.lateral_mm, ra, rl
        ));
    }
    out
}

/// Renders the combined quantized-quality rows (Tables IV and V).
pub fn format_quantized_quality(title: &str, rows: &[QuantizedQualityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} | {:>10} {:>11} | {:>8} {:>8} {:>8}\n",
        "Scheme", "Axial(mm)", "Lateral(mm)", "CR(dB)", "CNR", "GCNR"
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<10} | {:>10.3} {:>11.3} | {:>8.2} {:>8.2} {:>8.2}\n",
            row.scheme,
            row.resolution.axial_mm,
            row.resolution.lateral_mm,
            row.contrast.cr_db,
            row.contrast.cnr,
            row.contrast.gcnr
        ));
    }
    out
}

/// Table I reference columns for the simulation dataset.
pub fn paper_table1_simulation() -> Vec<(&'static str, f32, f32, f32)> {
    PAPER_TABLE1.iter().map(|r| (r.0, r.1, r.2, r.3)).collect()
}

/// Table I reference columns for the phantom dataset.
pub fn paper_table1_phantom() -> Vec<(&'static str, f32, f32, f32)> {
    PAPER_TABLE1.iter().map(|r| (r.0, r.4, r.5, r.6)).collect()
}

/// Table II reference columns for the simulation dataset.
pub fn paper_table2_simulation() -> Vec<(&'static str, f32, f32)> {
    PAPER_TABLE2.iter().map(|r| (r.0, r.1, r.2)).collect()
}

/// Table II reference columns for the phantom dataset.
pub fn paper_table2_phantom() -> Vec<(&'static str, f32, f32)> {
    PAPER_TABLE2.iter().map(|r| (r.0, r.3, r.4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use usmetrics::{ContrastMetrics, ResolutionMetrics};

    #[test]
    fn reference_tables_have_expected_shape() {
        assert_eq!(PAPER_TABLE1.len(), 4);
        assert_eq!(PAPER_TABLE2.len(), 4);
        assert_eq!(PAPER_TABLE4.len(), 5);
        assert_eq!(PAPER_TABLE5.len(), 5);
        assert_eq!(paper_table1_simulation().len(), 4);
        assert_eq!(paper_table2_phantom().len(), 4);
    }

    #[test]
    fn formatting_includes_every_row() {
        let rows = vec![ContrastTableRow {
            beamformer: "DAS".into(),
            metrics: ContrastMetrics { cr_db: 12.0, cnr: 1.5, gcnr: 0.8 },
        }];
        let text = format_contrast_table("Table I (simulation)", &rows, &paper_table1_simulation());
        assert!(text.contains("DAS"));
        assert!(text.contains("12.00"));
        assert!(text.contains("13.78"));

        let rrows = vec![ResolutionTableRow {
            beamformer: "MVDR".into(),
            metrics: ResolutionMetrics { axial_mm: 0.3, lateral_mm: 0.5 },
        }];
        let rtext = format_resolution_table("Table II", &rrows, &paper_table2_simulation());
        assert!(rtext.contains("MVDR"));
        assert!(rtext.contains("0.450"));
    }

    #[test]
    fn env_selects_configuration() {
        std::env::set_var("TINY_VBF_EVAL", "test");
        assert_eq!(evaluation_config_from_env().grid_rows, tiny_vbf::evaluation::EvaluationConfig::test_size().grid_rows);
        std::env::remove_var("TINY_VBF_EVAL");
        assert_eq!(evaluation_config_from_env().grid_rows, tiny_vbf::evaluation::EvaluationConfig::reduced().grid_rows);
    }
}
