//! The `bench_compare` regression gate: diff a scenario run against the
//! committed `BENCH_baseline.json` under per-metric tolerances.
//!
//! The per-PR bench binaries produced reports a human had to eyeball; this
//! module turns the trajectory into a CI gate. A run regresses when any
//! metric moves in its *bad* direction by more than
//! `max(abs, rel × |baseline|)` — latency, RSS and failure counters are
//! higher-is-worse, throughput and success rate lower-is-worse. Moves in
//! the good direction never fail the gate (they are reported as
//! improvements so the baseline can be refreshed), and an unknown metric
//! name in a tolerance file is an error rather than a silently inert knob.
//!
//! Three documents share a vocabulary (the metric names emitted by
//! [`crate::harness::summary_metrics`]):
//!
//! * the baseline (`BENCH_baseline.json`): `{schema_version, profile,
//!   scenarios: {name: {metric: value}}}` — built by
//!   [`baseline_from_summaries`], refreshed with `bench_compare
//!   --write-baseline`,
//! * the tolerance file (`ci_tolerances.json`): `{defaults: {metric:
//!   {rel, abs}}, scenarios: {name: {metric: {rel, abs}}}}` — scenario
//!   entries override defaults per metric,
//! * the run itself: the `*.summary.json` files of an output directory.

use crate::harness::{summary_metrics, SCHEMA_VERSION};
use runtime::json::Json;
use std::collections::BTreeMap;

/// Metrics where a larger value is a regression.
const HIGHER_IS_WORSE: &[&str] = &[
    "p50_us",
    "p99_us",
    "mean_us",
    "expired",
    "panicked",
    "errors",
    "lost",
    "retries",
    "failovers",
    "server_rss_kb",
    // Image-quality gate (eval_quality summaries): resolution blurs upward.
    "fwhm_mm",
];

/// Metrics where a smaller value is a regression.
const LOWER_IS_WORSE: &[&str] = &[
    "throughput_rps",
    "success_rate",
    "tail_success_rate",
    // Image-quality gate (eval_quality summaries): contrast fades downward.
    "cr_db",
    "cnr",
    "gcnr",
];

/// Allowed movement of one metric in its bad direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slack as a fraction of the baseline magnitude.
    pub rel: f64,
    /// Absolute slack in the metric's own unit.
    pub abs: f64,
}

impl Tolerance {
    /// The slack granted against `baseline`: `max(abs, rel × |baseline|)`.
    pub fn slack(&self, baseline: f64) -> f64 {
        self.abs.max(self.rel * baseline.abs())
    }
}

impl Default for Tolerance {
    /// Conservative default slack for untuned metrics: 50% relative or a
    /// small absolute floor. Shared-CI latency numbers are noisy; the gate
    /// is meant to catch step changes, not 5% jitter.
    fn default() -> Self {
        Self { rel: 0.50, abs: 1.0 }
    }
}

/// Per-metric tolerances with per-scenario overrides.
#[derive(Debug, Clone, Default)]
pub struct Tolerances {
    defaults: BTreeMap<String, Tolerance>,
    scenarios: BTreeMap<String, BTreeMap<String, Tolerance>>,
}

impl Tolerances {
    /// The tolerance for `metric` of `scenario`: scenario override, then
    /// metric default, then [`Tolerance::default`].
    pub fn lookup(&self, scenario: &str, metric: &str) -> Tolerance {
        self.scenarios
            .get(scenario)
            .and_then(|m| m.get(metric))
            .or_else(|| self.defaults.get(metric))
            .copied()
            .unwrap_or_default()
    }

    /// Parses a tolerance document, rejecting unknown metric names so a
    /// typo cannot silently disable a gate.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        fn tolerance(value: &Json, context: &str) -> Result<Tolerance, String> {
            let rel = value.get("rel").and_then(Json::as_f64).unwrap_or(0.0);
            let abs = value.get("abs").and_then(Json::as_f64).unwrap_or(0.0);
            if !rel.is_finite() || rel < 0.0 || !abs.is_finite() || abs < 0.0 {
                return Err(format!("tolerance for {context} must be finite and non-negative"));
            }
            if value.get("rel").is_none() && value.get("abs").is_none() {
                return Err(format!("tolerance for {context} sets neither `rel` nor `abs`"));
            }
            Ok(Tolerance { rel, abs })
        }
        fn metric_map(value: &Json, context: &str) -> Result<BTreeMap<String, Tolerance>, String> {
            let pairs = value.as_obj().ok_or_else(|| format!("{context} must be an object"))?;
            let mut map = BTreeMap::new();
            for (metric, spec) in pairs {
                if !HIGHER_IS_WORSE.contains(&metric.as_str()) && !LOWER_IS_WORSE.contains(&metric.as_str())
                {
                    return Err(format!("{context}: unknown metric `{metric}`"));
                }
                map.insert(metric.clone(), tolerance(spec, &format!("{context}.{metric}"))?);
            }
            Ok(map)
        }
        let mut tolerances = Self::default();
        if let Some(defaults) = value.get("defaults") {
            tolerances.defaults = metric_map(defaults, "defaults")?;
        }
        if let Some(scenarios) = value.get("scenarios") {
            let pairs = scenarios.as_obj().ok_or("`scenarios` must be an object")?;
            for (name, metrics) in pairs {
                tolerances
                    .scenarios
                    .insert(name.clone(), metric_map(metrics, &format!("scenarios.{name}"))?);
            }
        }
        Ok(tolerances)
    }
}

/// Builds the baseline document from a run's summary files.
pub fn baseline_from_summaries(profile: &str, summaries: &[Json]) -> Result<Json, String> {
    let mut scenarios = Vec::new();
    for summary in summaries {
        let name = summary
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("summary without a scenario name")?;
        let metrics = summary_metrics(summary);
        if metrics.is_empty() {
            return Err(format!("summary for `{name}` carries no gate metrics"));
        }
        scenarios.push((
            name.to_string(),
            Json::Obj(metrics.into_iter().map(|(k, v)| (k, Json::num(v))).collect()),
        ));
    }
    scenarios.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Json::obj([
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("profile", Json::str(profile)),
        ("scenarios", Json::Obj(scenarios)),
    ]))
}

/// One metric's verdict in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Metric name (see [`crate::harness::summary_metrics`]).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// This run's value.
    pub current: f64,
    /// Slack the tolerance granted.
    pub slack: f64,
    /// The metric moved in its bad direction beyond the slack.
    pub regressed: bool,
    /// The metric moved in its good direction beyond the slack (baseline
    /// refresh candidate — never a failure).
    pub improved: bool,
}

/// The outcome of diffing one run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Every metric compared, in (scenario, metric) order.
    pub deltas: Vec<MetricDelta>,
    /// Baseline scenarios the run did not produce — each is a regression
    /// (a crashing scenario must not pass the gate by disappearing).
    pub missing_scenarios: Vec<String>,
    /// Run scenarios absent from the baseline — warnings, not failures
    /// (new scenarios land before their first baseline refresh).
    pub extra_scenarios: Vec<String>,
}

impl CompareReport {
    /// Whether the gate should fail the build.
    pub fn regressed(&self) -> bool {
        !self.missing_scenarios.is_empty() || self.deltas.iter().any(|d| d.regressed)
    }

    /// All regressing deltas.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for delta in &self.deltas {
            let verdict = if delta.regressed {
                "REGRESSED"
            } else if delta.improved {
                "improved"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<24} {:<16} baseline {:>12.3}  current {:>12.3}  slack {:>10.3}  {verdict}\n",
                delta.scenario, delta.metric, delta.baseline, delta.current, delta.slack
            ));
        }
        for name in &self.missing_scenarios {
            out.push_str(&format!("{name:<24} MISSING from this run (counts as a regression)\n"));
        }
        for name in &self.extra_scenarios {
            out.push_str(&format!("{name:<24} not in baseline (refresh with --write-baseline)\n"));
        }
        out
    }
}

/// Diffs a run's summaries against a baseline document.
pub fn compare(
    baseline: &Json,
    summaries: &[Json],
    tolerances: &Tolerances,
) -> Result<CompareReport, String> {
    match baseline.get("schema_version").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(other) => {
            return Err(format!("baseline schema v{other} does not match this binary (v{SCHEMA_VERSION})"))
        }
        None => return Err("baseline is missing `schema_version`".into()),
    }
    let baseline_scenarios = baseline
        .get("scenarios")
        .and_then(Json::as_obj)
        .ok_or("baseline is missing `scenarios`")?;

    let mut current: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for summary in summaries {
        let name = summary
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("summary without a scenario name")?;
        current.insert(name.to_string(), summary_metrics(summary).into_iter().collect());
    }

    let mut report = CompareReport::default();
    for (name, metrics) in baseline_scenarios {
        let Some(run) = current.remove(name) else {
            report.missing_scenarios.push(name.clone());
            continue;
        };
        let metric_pairs =
            metrics.as_obj().ok_or_else(|| format!("baseline scenario `{name}` must be an object"))?;
        for (metric, value) in metric_pairs {
            let baseline_value = value
                .as_f64()
                .ok_or_else(|| format!("baseline `{name}.{metric}` must be a number"))?;
            let Some(&current_value) = run.get(metric) else {
                // A metric the run no longer emits (e.g. RSS probe absent
                // off-Linux): fail loudly rather than skip silently.
                return Err(format!("run summary for `{name}` is missing metric `{metric}`"));
            };
            let tolerance = tolerances.lookup(name, metric);
            let slack = tolerance.slack(baseline_value);
            let bad_delta = if HIGHER_IS_WORSE.contains(&metric.as_str()) {
                current_value - baseline_value
            } else if LOWER_IS_WORSE.contains(&metric.as_str()) {
                baseline_value - current_value
            } else {
                return Err(format!("baseline carries unknown metric `{metric}`"));
            };
            report.deltas.push(MetricDelta {
                scenario: name.clone(),
                metric: metric.clone(),
                baseline: baseline_value,
                current: current_value,
                slack,
                regressed: bad_delta > slack,
                improved: -bad_delta > slack,
            });
        }
    }
    report.extra_scenarios = current.into_keys().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal summary document carrying the gate metrics.
    fn summary(name: &str, p99_us: f64, throughput: f64, expired: f64) -> Json {
        Json::obj([
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("scenario", Json::str(name)),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::num(p99_us / 2.0)),
                    ("p99", Json::num(p99_us)),
                    ("mean", Json::num(p99_us / 1.5)),
                ]),
            ),
            ("throughput_rps", Json::num(throughput)),
            ("success_rate", Json::num(0.99)),
            (
                "requests",
                Json::obj([
                    ("expired", Json::num(expired)),
                    ("panicked", Json::num(0.0)),
                    ("lost", Json::num(0.0)),
                ]),
            ),
            ("rss_kb", Json::obj([("server_max", Json::num(50_000.0))])),
        ])
    }

    fn strict_tolerances() -> Tolerances {
        Tolerances::from_json(
            &Json::parse(r#"{"defaults": {"p99_us": {"rel": 0.10}, "throughput_rps": {"rel": 0.10}, "p50_us": {"rel": 10}, "mean_us": {"rel": 10}, "success_rate": {"abs": 1}, "expired": {"abs": 5}, "panicked": {"abs": 1000}, "lost": {"abs": 0}, "server_rss_kb": {"rel": 10}}}"#)
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn identical_run_passes() {
        let base = baseline_from_summaries("fast", &[summary("a", 800.0, 100.0, 1.0)]).unwrap();
        let report = compare(&base, &[summary("a", 800.0, 100.0, 1.0)], &strict_tolerances()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
    }

    #[test]
    fn perturbation_beyond_tolerance_fails_the_gate() {
        let base = baseline_from_summaries("fast", &[summary("a", 800.0, 100.0, 1.0)]).unwrap();
        // p99 +50% against a 10% tolerance: regression.
        let slow = compare(&base, &[summary("a", 1200.0, 100.0, 1.0)], &strict_tolerances()).unwrap();
        assert!(slow.regressed());
        assert!(slow.regressions().any(|d| d.metric == "p99_us"));
        // Throughput −50% against a 10% tolerance: regression in the other
        // direction.
        let starved = compare(&base, &[summary("a", 800.0, 50.0, 1.0)], &strict_tolerances()).unwrap();
        assert!(starved.regressions().any(|d| d.metric == "throughput_rps"));
        // Expiry burst beyond the absolute slack of 5.
        let expiring = compare(&base, &[summary("a", 800.0, 100.0, 40.0)], &strict_tolerances()).unwrap();
        assert!(expiring.regressions().any(|d| d.metric == "expired"));
    }

    #[test]
    fn good_direction_moves_never_fail() {
        let base = baseline_from_summaries("fast", &[summary("a", 800.0, 100.0, 5.0)]).unwrap();
        // Faster, higher throughput, fewer expiries: all improvements.
        let better = compare(&base, &[summary("a", 200.0, 400.0, 0.0)], &strict_tolerances()).unwrap();
        assert!(!better.regressed(), "{}", better.render());
        assert!(better.deltas.iter().any(|d| d.improved));
    }

    #[test]
    fn missing_scenario_is_a_regression_extra_is_not() {
        let base = baseline_from_summaries(
            "fast",
            &[summary("a", 800.0, 100.0, 1.0), summary("b", 500.0, 80.0, 0.0)],
        )
        .unwrap();
        let report =
            compare(&base, &[summary("a", 800.0, 100.0, 1.0), summary("c", 1.0, 1.0, 0.0)], &strict_tolerances())
                .unwrap();
        assert!(report.regressed());
        assert_eq!(report.missing_scenarios, vec!["b".to_string()]);
        assert_eq!(report.extra_scenarios, vec!["c".to_string()]);
    }

    #[test]
    fn tolerance_parsing_rejects_typos_and_nonsense() {
        assert!(Tolerances::from_json(
            &Json::parse(r#"{"defaults": {"p99_microseconds": {"rel": 0.1}}}"#).unwrap()
        )
        .is_err());
        assert!(Tolerances::from_json(&Json::parse(r#"{"defaults": {"p99_us": {"rel": -0.1}}}"#).unwrap())
            .is_err());
        assert!(Tolerances::from_json(&Json::parse(r#"{"defaults": {"p99_us": {}}}"#).unwrap()).is_err());
        // Scenario overrides beat defaults.
        let t = Tolerances::from_json(
            &Json::parse(
                r#"{"defaults": {"p99_us": {"rel": 0.1}}, "scenarios": {"hot": {"p99_us": {"rel": 0.5}}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(t.lookup("hot", "p99_us").rel, 0.5);
        assert_eq!(t.lookup("cold", "p99_us").rel, 0.1);
        assert_eq!(t.lookup("cold", "lost"), Tolerance::default());
    }

    /// An eval_quality rung summary with the image-quality gate metrics.
    fn quality_summary(name: &str, cr_db: f64, gcnr: f64, fwhm_mm: f64) -> Json {
        Json::obj([
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("scenario", Json::str(name)),
            (
                "quality",
                Json::obj([
                    ("cr_db", Json::num(cr_db)),
                    ("cnr", Json::num(1.2)),
                    ("gcnr", Json::num(gcnr)),
                    ("fwhm_mm", Json::num(fwhm_mm)),
                ]),
            ),
        ])
    }

    #[test]
    fn quality_metrics_gate_in_their_own_directions() {
        let tolerances = Tolerances::from_json(
            &Json::parse(
                r#"{"defaults": {"cr_db": {"abs": 0.5}, "cnr": {"abs": 10}, "gcnr": {"abs": 0.05}, "fwhm_mm": {"abs": 0.1}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let base =
            baseline_from_summaries("fast", &[quality_summary("quality_fx16", 10.0, 0.85, 0.6)]).unwrap();

        // Contrast falling and resolution blurring beyond slack both fail.
        let faded =
            compare(&base, &[quality_summary("quality_fx16", 9.0, 0.85, 0.6)], &tolerances).unwrap();
        assert!(faded.regressions().any(|d| d.metric == "cr_db"), "{}", faded.render());
        let blurred =
            compare(&base, &[quality_summary("quality_fx16", 10.0, 0.85, 0.8)], &tolerances).unwrap();
        assert!(blurred.regressions().any(|d| d.metric == "fwhm_mm"), "{}", blurred.render());

        // Sharper and higher-contrast images are improvements, never failures.
        let better =
            compare(&base, &[quality_summary("quality_fx16", 12.0, 0.95, 0.4)], &tolerances).unwrap();
        assert!(!better.regressed(), "{}", better.render());
        assert!(better.deltas.iter().any(|d| d.improved));
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let mut base = baseline_from_summaries("fast", &[summary("a", 1.0, 1.0, 0.0)]).unwrap();
        if let Json::Obj(pairs) = &mut base {
            pairs[0].1 = Json::num(999.0);
        }
        assert!(compare(&base, &[summary("a", 1.0, 1.0, 0.0)], &Tolerances::default()).is_err());
    }
}
