//! Bench regression gate: diff a `bench_scenarios` run against the
//! committed baseline, exit non-zero on regression.
//!
//! Usage:
//!
//! ```text
//! bench_compare --baseline BENCH_baseline.json [--dir bench_out] \
//!               [--tolerance-file ci_tolerances.json] [--write-baseline]
//! ```
//!
//! * `--baseline` — the committed baseline document,
//! * `--dir` — directory of `*.summary.json` files from `bench_scenarios`
//!   (default `bench_out`),
//! * `--tolerance-file` — per-metric `{rel, abs}` slacks with per-scenario
//!   overrides (optional; defaults are intentionally loose),
//! * `--write-baseline` — instead of comparing, rebuild the baseline from
//!   the run and write it to the `--baseline` path (the refresh workflow
//!   after an intentional perf change).
//!
//! Exit status: 0 when every metric is within tolerance, 1 on any
//! regression (including a baseline scenario missing from the run), 2 on
//! usage or parse errors. See `docs/BENCHMARKS.md`.

use bench::compare::{baseline_from_summaries, compare, Tolerances};
use runtime::json::Json;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare --baseline FILE [--dir DIR] [--tolerance-file FILE] [--write-baseline]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("bench_compare: {message}");
    std::process::exit(2);
}

fn read_json(path: &Path) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", path.display())));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("parsing {}: {e}", path.display())))
}

/// Loads every `*.summary.json` of the run directory, sorted by name for
/// stable report order.
fn read_summaries(dir: &Path) -> Vec<Json> {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| fail(&format!("reading run directory {}: {e}", dir.display())));
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".summary.json")))
        .collect();
    paths.sort();
    if paths.is_empty() {
        fail(&format!("no *.summary.json files in {}", dir.display()));
    }
    paths.iter().map(|p| read_json(p)).collect()
}

fn main() {
    let mut baseline_path: Option<PathBuf> = None;
    let mut dir = PathBuf::from("bench_out");
    let mut tolerance_path: Option<PathBuf> = None;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--dir" => dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--tolerance-file" => {
                tolerance_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--write-baseline" => write_baseline = true,
            _ => usage(),
        }
    }
    let Some(baseline_path) = baseline_path else { usage() };

    let summaries = read_summaries(&dir);
    let profile = summaries[0]
        .get("profile")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("first summary has no profile field"))
        .to_string();

    if write_baseline {
        let baseline = baseline_from_summaries(&profile, &summaries)
            .unwrap_or_else(|e| fail(&format!("building baseline: {e}")));
        std::fs::write(&baseline_path, baseline.to_string_pretty() + "\n")
            .unwrap_or_else(|e| fail(&format!("writing {}: {e}", baseline_path.display())));
        println!(
            "wrote baseline for {} scenario(s) ({profile} profile) to {}",
            summaries.len(),
            baseline_path.display()
        );
        return;
    }

    let baseline = read_json(&baseline_path);
    if let Some(baseline_profile) = baseline.get("profile").and_then(Json::as_str) {
        if baseline_profile != profile {
            fail(&format!(
                "baseline is a {baseline_profile}-profile document but the run used the {profile} profile"
            ));
        }
    }
    let tolerances = match &tolerance_path {
        Some(path) => Tolerances::from_json(&read_json(path))
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display()))),
        None => Tolerances::default(),
    };

    let report = compare(&baseline, &summaries, &tolerances)
        .unwrap_or_else(|e| fail(&format!("comparing: {e}")));
    print!("{}", report.render());
    if report.regressed() {
        let count = report.regressions().count() + report.missing_scenarios.len();
        eprintln!("bench_compare: {count} regression(s) against {}", baseline_path.display());
        std::process::exit(1);
    }
    println!("no regressions against {}", baseline_path.display());
}
