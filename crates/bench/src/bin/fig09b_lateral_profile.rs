//! Regenerates Fig. 9(b): lateral variation of the beamformed image across the deepest
//! in-silico cyst (37 mm) for every beamformer.

use bench::evaluation_config_from_env;
use tiny_vbf::evaluation::{beamformer_suite, train_models};
use ultrasound::picmus::{PicmusKind, IN_SILICO_CYST_DEPTHS};
use usmetrics::psf::LateralPsf;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models…");
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    let depth = IN_SILICO_CYST_DEPTHS[IN_SILICO_CYST_DEPTHS.len() - 1].min(config.max_depth - 2e-3);
    let frame = config.contrast_frame(PicmusKind::InSilico).expect("frame");
    let grid = config.grid();
    println!("Fig. 9(b) — lateral variation at {:.1} mm depth (dB relative to profile peak)", depth * 1e3);
    for beamformer in &beamformers {
        let iq = beamformer
            .beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)
            .expect("beamform");
        let psf = LateralPsf::from_envelope(&iq.envelope(), &grid, depth);
        let series: Vec<String> = psf
            .positions_mm
            .iter()
            .zip(psf.amplitude_db.iter())
            .step_by((psf.positions_mm.len() / 16).max(1))
            .map(|(x, db)| format!("{x:+.1}mm:{db:.0}dB"))
            .collect();
        println!("{:<10} {}", beamformer.name(), series.join("  "));
    }
}
