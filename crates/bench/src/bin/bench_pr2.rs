//! PR-2 serving-throughput benchmark: end-to-end frames/sec of the `serve`
//! micro-batching front-end at several offered loads and batch-size
//! configurations, against the serial per-frame baseline.
//!
//! Writes `BENCH_pr2.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr2`; set `BENCH_PR2_FAST=1` (or the `BENCH_FAST=1` umbrella) for
//! a quicker smoke configuration. Every served image is asserted bitwise
//! identical to serial inference before any timing is reported.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::Beamformer;
use serve::service::beamform_server;
use serve::BatchConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::inference::TinyVbfBeamformer;
use tiny_vbf::model::TinyVbf;
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};

struct LoadPoint {
    /// Offered load as inter-submit sleep; `None` = submit as fast as possible.
    interval: Option<Duration>,
    label: &'static str,
}

struct RunResult {
    achieved_fps: f64,
    mean_batch: f64,
    batches: u64,
    max_batch_observed: usize,
}

/// Pushes every frame through a fresh server at the given offered load and
/// returns throughput + batching statistics. Panics if any served image
/// differs from the serial reference.
fn run_config(
    beamformer: &TinyVbfBeamformer,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
    frames: &[ChannelData],
    reference: &[IqImage],
    max_batch: usize,
    load: &LoadPoint,
) -> RunResult {
    let config = BatchConfig {
        max_batch,
        linger: Duration::from_micros(500),
        queue_capacity: frames.len().max(1),
        workers: 1,
        ..BatchConfig::default()
    };
    let server = beamform_server(config, beamformer.clone(), array.clone(), grid.clone(), sound_speed);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(frames.len());
    for frame in frames {
        if let Some(interval) = load.interval {
            std::thread::sleep(interval);
        }
        handles.push(server.submit(frame.clone()).expect("submit"));
    }
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().expect("wait")).collect();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    for (i, (a, b)) in reference.iter().zip(served.iter()).enumerate() {
        assert_eq!(a, b, "frame {i} served != serial (max_batch {max_batch}, load {})", load.label);
    }
    RunResult {
        achieved_fps: frames.len() as f64 / elapsed,
        mean_batch: stats.mean_batch(),
        batches: stats.batches,
        max_batch_observed: stats.max_batch_observed,
    }
}

fn main() {
    let fast = bench::report::fast_mode(2);
    let num_frames = if fast { 32 } else { 96 };
    let threads = runtime::default_threads();

    // Small-probe stream: one drifting point target per frame.
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.012, if fast { 16 } else { 24 }, 16);
    let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
    let beamformer = TinyVbfBeamformer::new(TinyVbf::new(&config).expect("model"));
    let sound_speed = Medium::soft_tissue().sound_speed();
    let simulator = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.026);

    println!("simulating {num_frames} frames…");
    let frames: Vec<ChannelData> = (0..num_frames)
        .map(|i| {
            let x = -0.003 + 0.006 * (i as f32 / (num_frames - 1) as f32);
            let phantom = Phantom::builder(0.012, 0.026).seed(300 + i as u64).add_point_target(x, 0.018, 1.0).build();
            simulator.simulate(&phantom, PlaneWave::zero_angle()).expect("simulate")
        })
        .collect();

    // Serial per-frame baseline (also the bitwise reference for every config).
    let serial_start = Instant::now();
    let reference: Vec<IqImage> = frames
        .iter()
        .map(|frame| beamformer.beamform(frame, &array, &grid, sound_speed).expect("beamform"))
        .collect();
    let serial_fps = num_frames as f64 / serial_start.elapsed().as_secs_f64();
    println!("serial baseline: {serial_fps:.1} frames/sec");

    // Offered loads: saturating, and throttled near/below the serial rate.
    let loads = [
        LoadPoint { interval: None, label: "saturating" },
        LoadPoint { interval: Some(Duration::from_secs_f64(1.0 / serial_fps)), label: "at_serial_rate" },
        LoadPoint { interval: Some(Duration::from_secs_f64(2.0 / serial_fps)), label: "half_serial_rate" },
    ];
    let batch_sizes = [1usize, 4, 16];

    let mut entries = String::new();
    for max_batch in batch_sizes {
        for load in &loads {
            let result = run_config(&beamformer, &array, &grid, sound_speed, &frames, &reference, max_batch, load);
            println!(
                "max_batch {max_batch:>2} | load {:<16} | {:7.1} frames/sec | {} batches, mean {:.1}, largest {}",
                load.label, result.achieved_fps, result.batches, result.mean_batch, result.max_batch_observed
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            write!(
                entries,
                r#"    {{
      "max_batch": {max_batch},
      "offered_load": "{}",
      "achieved_fps": {:.2},
      "batches": {},
      "mean_batch": {:.2},
      "max_batch_observed": {}
    }}"#,
                load.label, result.achieved_fps, result.batches, result.mean_batch, result.max_batch_observed
            )
            .expect("format entry");
        }
    }

    let json = format!(
        r#"{{
  "pr": 2,
  "threads": {threads},
  "frames": {num_frames},
  "grid": "{}x{}",
  "serial_fps": {serial_fps:.2},
  "configs": [
{entries}
  ]
}}
"#,
        grid.num_rows(),
        grid.num_cols(),
    );
    std::fs::write("BENCH_pr2.json", json).expect("write BENCH_pr2.json");
    println!("wrote BENCH_pr2.json");
}
