//! Regenerates Table II: axial and lateral resolution of DAS, MVDR, Tiny-CNN, Tiny-VBF
//! (and FCNN) on the in-silico and in-vitro resolution-distortion datasets.

use bench::{evaluation_config_from_env, format_resolution_table, paper_table2_phantom, paper_table2_simulation};
use tiny_vbf::evaluation::{beamformer_suite, resolution_table, train_models};
use ultrasound::picmus::PicmusKind;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models…");
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    let simulation = resolution_table(&beamformers, &config, PicmusKind::InSilico).expect("in-silico evaluation failed");
    println!("{}", format_resolution_table("Table II — Simulation (in-silico) resolution [measured | paper]", &simulation, &paper_table2_simulation()));

    let phantom = resolution_table(&beamformers, &config, PicmusKind::InVitro).expect("in-vitro evaluation failed");
    println!("{}", format_resolution_table("Table II — Phantom (in-vitro) resolution [measured | paper]", &phantom, &paper_table2_phantom()));
}
