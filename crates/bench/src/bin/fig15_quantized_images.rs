//! Regenerates Fig. 15: B-mode images produced by the quantized (FPGA-model) Tiny-VBF
//! under every quantization scheme, on both datasets, plus an image-fidelity summary
//! (PSNR / NRMSE against the floating-point output).

use bench::evaluation_config_from_env;
use beamforming::bmode::BModeImage;
use beamforming::pipeline::Beamformer;
use quantize::QuantScheme;
use tiny_vbf::evaluation::train_models;
use tiny_vbf::quantized::QuantizedTinyVbf;
use ultrasound::picmus::PicmusKind;
use usmetrics::compare::{nrmse, psnr_db};

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training Tiny-VBF…");
    let models = train_models(&config).expect("training failed");
    let grid = config.grid();

    for (kind, label) in [(PicmusKind::InSilico, "simulation"), (PicmusKind::InVitro, "phantom")] {
        let frame = config.contrast_frame(kind).expect("frame");
        println!("=== Fig. 15 — {label} data ===");
        let float_model = QuantizedTinyVbf::from_model(&models.tiny_vbf, QuantScheme::float());
        let float_iq = float_model
            .beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)
            .expect("float beamform");
        let float_envelope = float_iq.envelope();
        for scheme in QuantScheme::all() {
            let quantized = QuantizedTinyVbf::from_model(&models.tiny_vbf, scheme);
            let iq = quantized
                .beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)
                .expect("beamform");
            let envelope = iq.envelope();
            let bmode = BModeImage::from_envelope(&envelope, grid.clone(), config.dynamic_range).expect("bmode");
            let fidelity = if scheme.is_float() {
                "reference".to_string()
            } else {
                format!(
                    "PSNR {:.1} dB, NRMSE {:.4}",
                    psnr_db(&float_envelope, &envelope).unwrap(),
                    nrmse(&float_envelope, &envelope).unwrap()
                )
            };
            println!("--- {} ({fidelity}) ---", scheme.name);
            println!("{}", bmode.to_ascii(48));
        }
    }
}
