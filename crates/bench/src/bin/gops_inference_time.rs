//! Regenerates the Section IV efficiency comparison: GOPs/frame for every model and the
//! measured single-frame CPU inference time of our implementation, next to the paper's
//! reported numbers.

use std::time::Instant;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::gops::{
    das_gops, fcnn_gops, mvdr_gops, tiny_cnn_gops, tiny_vbf_gops, PAPER_CNN8_GOPS, PAPER_CNN9_GOPS,
    PAPER_FCNN_GOPS, PAPER_MVDR_GOPS, PAPER_TINY_CNN_GOPS, PAPER_TINY_VBF_GOPS,
    PAPER_MVDR_CPU_SECONDS, PAPER_TINY_CNN_CPU_SECONDS, PAPER_TINY_VBF_CPU_SECONDS,
};
use tiny_vbf::model::TinyVbf;
use neural::init::normal;

fn main() {
    println!("GOPs per 368x128 frame (our analytical count vs paper):");
    let config = TinyVbfConfig::paper();
    let rows = [
        (tiny_vbf_gops(&config, 368, 128), PAPER_TINY_VBF_GOPS),
        (fcnn_gops(368, 128, 128, 128), PAPER_FCNN_GOPS),
        (tiny_cnn_gops(368, 128, 128, 8), PAPER_TINY_CNN_GOPS),
        (mvdr_gops(368, 128, 128), PAPER_MVDR_GOPS),
        (das_gops(368, 128, 128), f64::NAN),
    ];
    for (estimate, paper) in rows {
        println!("  {:<10} {:>10.3} GOPs   (paper: {:>7.2})", estimate.model, estimate.gops_per_frame, paper);
    }
    println!("  (paper also cites CNN [8] ≈ {PAPER_CNN8_GOPS} GOPs and CNN [9] ≈ {PAPER_CNN9_GOPS} GOPs)");

    // Measure our per-row inference time and extrapolate to a full frame.
    let mut model = TinyVbf::new(&config).expect("model");
    let row = normal(&[config.tokens, config.channels], 0.3, 1);
    // Warm up.
    let _ = model.infer_row(&row).unwrap();
    let iterations = 20usize;
    let start = Instant::now();
    for _ in 0..iterations {
        let _ = model.infer_row(&row).unwrap();
    }
    let per_row = start.elapsed().as_secs_f64() / iterations as f64;
    let per_frame = per_row * 368.0;
    println!();
    println!("CPU inference time per 368x128 frame:");
    println!("  Tiny-VBF (this implementation, single thread): {:.3} s", per_frame);
    println!(
        "  Paper: Tiny-VBF {:.3} s, Tiny-CNN {:.3} s, MVDR {:.0} s (Intel Xeon 2 vCPU @ 2.2 GHz)",
        PAPER_TINY_VBF_CPU_SECONDS, PAPER_TINY_CNN_CPU_SECONDS, PAPER_MVDR_CPU_SECONDS
    );
}
