//! PR-6 availability-under-chaos benchmark: the same faulty, saturating
//! workload served twice — once with the graceful-degradation ladder OFF and
//! once ON — measuring success rate, deadline-expiry rate and latency.
//!
//! The primary stream's rung-0 engine is a [`serve::ChaosBeamformer`]: a
//! planned DAS with a fixed injected per-call latency (a machine-independent
//! "overloaded model" stand-in) and seeded panics (~1/16 of calls). A clean
//! control stream shares the queue. The load arrives in saturating waves
//! under 25 ms deadlines; the slow rung cannot drain a wave in time, so
//! without the ladder every wave sheds its tail, while with the ladder the
//! first wave's expiries downshift the stream to the genuinely cheaper
//! planned-DAS rung and later waves are served nearly in full. (The fixed-point Tiny-VBF schemes
//! *simulate* fixed-point rounding in f32, so they are not actually cheaper
//! in this reproduction — the bench ladder therefore falls back to planned
//! DAS, the measured ~5× cheaper backend, while the scheme ladders are
//! validated functionally in `crates/serve/tests/`.)
//!
//! Hard guarantees asserted before any number is reported:
//! * **no request is lost** — every submitted handle resolves (success,
//!   deadline expiry, or a contained `EnginePanicked`), in both runs;
//! * **every successful response is bitwise identical** to direct per-frame
//!   inference (both rungs compute the same DAS math here, so this covers
//!   downshifted frames too, and the zero-downshift control stream proves
//!   the unmanaged path untouched);
//! * **availability**: the ladder-ON success rate strictly exceeds OFF.
//!
//! Writes `BENCH_pr6.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr6`; set `BENCH_PR6_FAST=1` (or the `BENCH_FAST=1` umbrella)
//! for a smaller grid and fewer waves, and `BENCH_PR6_WAVES=n` to override
//! the wave count.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use serve::router::{Router, StreamSpec};
use serve::{BatchConfig, ChaosBeamformer, ChaosSchedule, DegradeConfig, ServeError, ServeResult};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

const DEADLINE: Duration = Duration::from_millis(25);
const PANIC_ONE_IN: u64 = 16;
const INJECTED_DELAY: Duration = Duration::from_millis(6);
const CHAOS_SEED: u64 = 2026;
/// Offered load per wave: 16 primary frames (plus 8 control frames)
/// submitted back-to-back, then drained before the next wave. One wave
/// saturates the 6 ms rung-0 engine far past the 25 ms deadline, so without
/// the ladder every wave sheds its tail; with the ladder the first wave's
/// expiries downshift the stream and later waves are served by the cheap
/// rung instead.
const WAVE_PRIMARY: usize = 16;
const WAVE_CONTROL: usize = 8;

/// Deterministic pseudo-random RF frame (inference cost is independent of
/// the sample values, so a cheap LCG replaces the full simulator).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

/// Both streams and both ladder rungs resolve through this factory. Each
/// run builds fresh engines, so chaos call counters restart at zero and the
/// seeded fault sequence is identical across the OFF and ON runs.
fn chaos_factory() -> impl Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static
{
    let schedule = ChaosSchedule::seeded(CHAOS_SEED)
        .panic_one_in(PANIC_ONE_IN)
        .delay_one_in(1, INJECTED_DELAY);
    move |spec: &StreamSpec| match spec.backend.as_str() {
        "primary" => {
            Ok(Arc::new(ChaosBeamformer::new(PlannedDas::new(DelayAndSum::default()), schedule.clone())))
        }
        "das" | "das-control" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
        other => Err(ServeError::Engine(format!("unknown backend {other}"))),
    }
}

struct RunOutcome {
    label: &'static str,
    elapsed: Duration,
    primary_total: usize,
    primary_ok: usize,
    primary_expired: usize,
    primary_panicked: usize,
    control_total: usize,
    control_ok: usize,
    p50: Duration,
    p99: Duration,
    downshifts: u64,
    upshifts: u64,
    sheds: u64,
    resilience_panics: u64,
    final_rung: Option<usize>,
}

impl RunOutcome {
    fn success_rate(&self) -> f64 {
        self.primary_ok as f64 / self.primary_total as f64
    }
    fn expiry_rate(&self) -> f64 {
        self.primary_expired as f64 / self.primary_total as f64
    }
    fn control_success_rate(&self) -> f64 {
        self.control_ok as f64 / self.control_total as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    label: &'static str,
    ladder: Option<DegradeConfig>,
    primary: &StreamSpec,
    control: &StreamSpec,
    frames: &[ChannelData],
    waves: usize,
    reference: &[IqImage],
) -> RunOutcome {
    let primary_frames = waves * WAVE_PRIMARY;
    let config = BatchConfig {
        max_batch: 2,
        linger: Duration::ZERO,
        workers: 1,
        queue_capacity: frames.len().max(1) * 2,
        ..BatchConfig::default()
    };
    let router = match ladder {
        Some(degrade) => Router::with_degrade(config, chaos_factory(), degrade).expect("valid ladder"),
        None => Router::new(config, chaos_factory()),
    };

    let (mut primary_ok, mut primary_expired, mut primary_panicked) = (0usize, 0usize, 0usize);
    let (mut control_total, mut control_ok) = (0usize, 0usize);
    let (mut submitted, mut resolved) = (0usize, 0usize);
    let start = Instant::now();
    for wave in 0..waves {
        // One wave: two primary frames then one control frame, repeated,
        // submitted back-to-back under the 25 ms deadline, then drained.
        let mut handles = Vec::with_capacity(WAVE_PRIMARY + WAVE_CONTROL);
        for k in 0..WAVE_PRIMARY {
            let i = wave * WAVE_PRIMARY + k;
            handles.push((true, i, router.submit_with_deadline(primary, frames[i].clone(), DEADLINE).expect("submit")));
            if k % 2 == 1 {
                let j = primary_frames + wave * WAVE_CONTROL + k / 2;
                handles
                    .push((false, j, router.submit_with_deadline(control, frames[j].clone(), DEADLINE).expect("submit")));
            }
        }
        submitted += handles.len();

        for (is_primary, i, handle) in handles {
            // `wait` must resolve every handle — a lost request would hang
            // here and fail the bench by timeout.
            let outcome = handle.wait();
            resolved += 1;
            if !is_primary {
                control_total += 1;
            }
            match outcome {
                Ok(image) => {
                    assert_eq!(
                        image, reference[i],
                        "{label}: frame {i} differs from direct inference — degradation must never corrupt results"
                    );
                    if is_primary {
                        primary_ok += 1;
                    } else {
                        control_ok += 1;
                    }
                }
                Err(ServeError::DeadlineExceeded) => {
                    if is_primary {
                        primary_expired += 1;
                    }
                }
                Err(ServeError::EnginePanicked { .. }) => {
                    assert!(is_primary, "{label}: panics must stay contained to the chaos stream");
                    primary_panicked += 1;
                }
                Err(other) => panic!("{label}: unexpected failure: {other}"),
            }
        }
    }
    assert_eq!(resolved, submitted, "{label}: every submitted request must resolve");
    let elapsed = start.elapsed();

    let stats = router.shutdown();
    assert_eq!(stats.server.completed, submitted as u64);
    RunOutcome {
        label,
        elapsed,
        primary_total: primary_frames,
        primary_ok,
        primary_expired,
        primary_panicked,
        control_total,
        control_ok,
        p50: stats.server.latency.p50(),
        p99: stats.server.latency.p99(),
        downshifts: stats.downshifts_total(),
        upshifts: stats.upshifts_total(),
        sheds: stats.sheds_total(),
        resilience_panics: stats.resilience.panics,
        final_rung: stats.degrade.first().map(|d| d.rung),
    }
}

fn main() {
    // The chaos engine's injected panics unwind with a `chaos:` payload and
    // are contained at the dispatch boundary; silence their default-hook
    // backtraces so the bench output stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));

    let fast = bench::report::fast_mode(6);
    let threads = runtime::default_threads();
    let (rows, cols, num_samples, mut waves) = if fast { (16, 8, 256, 4) } else { (46, 32, 1024, 10) };
    waves = bench::report::env_knob("BENCH_PR6_WAVES", 2).unwrap_or(waves);
    let primary_frames = waves * WAVE_PRIMARY;
    let control_frames = waves * WAVE_CONTROL;

    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, rows, cols);
    let primary = StreamSpec { array: array.clone(), grid: grid.clone(), sound_speed: 1540.0, backend: "primary".into() };
    let control =
        StreamSpec { array: array.clone(), grid: grid.clone(), sound_speed: 1540.0, backend: "das-control".into() };

    // Ladder: chaos-slow rung 0, genuinely cheaper planned-DAS rung 1.
    let degrade = DegradeConfig {
        window: 8,
        cooldown_windows: 1,
        downshift_expiry_rate: 0.3,
        upshift_expiry_rate: 0.02,
        ..DegradeConfig::with_ladder(vec!["primary".into(), "das".into()])
    };

    // Frames 0..primary_frames feed the primary stream, the rest the control
    // stream; all share one direct-DAS reference (both rungs and the control
    // backend compute identical DAS math).
    let total_frames = primary_frames + control_frames;
    let frames: Vec<ChannelData> =
        (0..total_frames).map(|i| synthetic_frame(&array, num_samples, 4096 + i as u64)).collect();
    println!("direct reference: {total_frames} frames at {rows}x{cols}…");
    let das = DelayAndSum::default();
    let reference: Vec<IqImage> =
        frames.iter().map(|f| das.beamform(f, &array, &grid, 1540.0).expect("reference")).collect();

    println!(
        "chaos workload: {waves} waves of {WAVE_PRIMARY}+{WAVE_CONTROL} frames, {:?} injected delay, 1/{PANIC_ONE_IN} panics, {:?} deadlines",
        INJECTED_DELAY, DEADLINE
    );
    let off = run("ladder-off", None, &primary, &control, &frames, waves, &reference);
    let on = run("ladder-on", Some(degrade), &primary, &control, &frames, waves, &reference);

    for outcome in [&off, &on] {
        println!(
            "  {:<10} success {:>5.1}% | expired {:>5.1}% | panicked {:>2} | control {:>5.1}% | p50 {:>7.2} ms | p99 {:>7.2} ms | shifts {}↓ {}↑ | {:.2} s",
            outcome.label,
            100.0 * outcome.success_rate(),
            100.0 * outcome.expiry_rate(),
            outcome.primary_panicked,
            100.0 * outcome.control_success_rate(),
            outcome.p50.as_secs_f64() * 1e3,
            outcome.p99.as_secs_f64() * 1e3,
            outcome.downshifts,
            outcome.upshifts,
            outcome.elapsed.as_secs_f64(),
        );
    }

    assert!(
        on.success_rate() > off.success_rate(),
        "the ladder must improve availability under chaos: on {:.3} vs off {:.3}",
        on.success_rate(),
        off.success_rate()
    );
    assert!(on.downshifts >= 1, "the pressured ladder run must actually downshift");
    assert_eq!(off.downshifts, 0, "without a ladder nothing may shift");

    let mut runs_json = String::new();
    for outcome in [&off, &on] {
        if !runs_json.is_empty() {
            runs_json.push_str(",\n");
        }
        write!(
            runs_json,
            r#"    {{
      "ladder": {},
      "primary_requests": {},
      "success_rate": {:.4},
      "expiry_rate": {:.4},
      "panicked_requests": {},
      "control_success_rate": {:.4},
      "p50_ms": {:.3},
      "p99_ms": {:.3},
      "downshifts": {},
      "upshifts": {},
      "sheds": {},
      "contained_dispatch_panics": {},
      "final_rung": {},
      "elapsed_s": {:.3}
    }}"#,
            outcome.label == "ladder-on",
            outcome.primary_total,
            outcome.success_rate(),
            outcome.expiry_rate(),
            outcome.primary_panicked,
            outcome.control_success_rate(),
            outcome.p50.as_secs_f64() * 1e3,
            outcome.p99.as_secs_f64() * 1e3,
            outcome.downshifts,
            outcome.upshifts,
            outcome.sheds,
            outcome.resilience_panics,
            outcome.final_rung.map_or("null".to_string(), |r| r.to_string()),
            outcome.elapsed.as_secs_f64(),
        )
        .expect("format run entry");
    }

    let json = format!(
        r#"{{
  "pr": 6,
  "threads": {threads},
  "grid_rows": {rows},
  "grid_cols": {cols},
  "channels": {},
  "deadline_ms": {},
  "injected_delay_ms": {},
  "panic_one_in": {PANIC_ONE_IN},
  "waves": {waves},
  "wave_primary_frames": {WAVE_PRIMARY},
  "wave_control_frames": {WAVE_CONTROL},
  "ladder": ["primary", "das"],
  "bitwise_identical_successes": true,
  "all_handles_resolved": true,
  "runs": [
{runs_json}
  ]
}}
"#,
        array.num_elements(),
        DEADLINE.as_millis(),
        INJECTED_DELAY.as_millis(),
    );
    std::fs::write("BENCH_pr6.json", json).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json (ladder on: {:.1}% vs off: {:.1}%)", 100.0 * on.success_rate(), 100.0 * off.success_rate());
}
