//! Regenerates Fig. 12: lateral point-spread functions at 15.12 mm and 35.15 mm depth
//! on the in-silico resolution dataset, for every beamformer.

use bench::evaluation_config_from_env;
use tiny_vbf::evaluation::{beamformer_suite, lateral_psfs, train_models};
use ultrasound::picmus::{PicmusKind, IN_SILICO_POINT_DEPTHS};

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models…");
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    let depths: Vec<f32> = IN_SILICO_POINT_DEPTHS.iter().copied().filter(|&d| d < config.max_depth - 2e-3).collect();
    let psfs = lateral_psfs(&beamformers, &config, PicmusKind::InSilico, &depths).expect("psf failed");
    for (i, depth) in depths.iter().enumerate() {
        println!("Fig. 12({}) — lateral PSF at {:.2} mm", if i == 0 { 'a' } else { 'b' }, depth * 1e3);
        for (name, profiles) in &psfs {
            let psf = &profiles[i];
            let width = psf.mainlobe_width_mm().map_or("n/a".to_string(), |w| format!("{w:.2} mm"));
            let sidelobe = psf.peak_sidelobe_db(2.0).map_or("n/a".to_string(), |s| format!("{s:.1} dB"));
            println!("  {:<10} -6 dB mainlobe width {:>8}   peak sidelobe {:>9}", name, width, sidelobe);
        }
        println!();
    }
}
