//! Prints Table III: the bit-width assignment of every quantization scheme.

use quantize::{QuantScheme, TensorRole};

fn main() {
    println!("Table III — Quantization scheme bit widths");
    println!(
        "{:<10} | {:>8} | {:>8} | {:>12} | {:>13}",
        "Scheme", "Weights", "Softmax", "Mul/Add ops", "Intermediates"
    );
    println!("{}", "-".repeat(62));
    for scheme in QuantScheme::all() {
        let bits = |role: TensorRole| {
            scheme
                .format_for(role)
                .map_or("float".to_string(), |f| format!("{} bits", f.word_bits()))
        };
        println!(
            "{:<10} | {:>8} | {:>8} | {:>12} | {:>13}",
            scheme.name,
            bits(TensorRole::Weight),
            bits(TensorRole::Softmax),
            bits(TensorRole::MacResult),
            bits(TensorRole::Intermediate)
        );
    }
}
