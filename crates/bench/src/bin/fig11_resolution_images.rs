//! Regenerates Figs. 11 and 13: B-mode images of the resolution-distortion datasets
//! (point targets at two depths) for every beamformer.

use bench::evaluation_config_from_env;
use tiny_vbf::evaluation::{beamformer_suite, bmode_gallery, resolution_table, train_models};
use ultrasound::picmus::PicmusKind;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models…");
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    for (kind, label) in [
        (PicmusKind::InSilico, "Fig. 11 — in-silico point targets (15.12 / 35.15 mm)"),
        (PicmusKind::InVitro, "Fig. 13 — in-vitro point targets (14.01 / 32.79 mm)"),
    ] {
        println!("=== {label} ===");
        let gallery = bmode_gallery(&beamformers, &config, kind, false).expect("gallery failed");
        for (name, bmode) in &gallery {
            println!("--- {name} ---");
            println!("{}", bmode.to_ascii(64));
        }
        let table = resolution_table(&beamformers, &config, kind).expect("metrics failed");
        for row in table {
            println!("{:<10} axial {:.3} mm   lateral {:.3} mm", row.beamformer, row.metrics.axial_mm, row.metrics.lateral_mm);
        }
        println!();
    }
}
