//! Regenerates Table VI and Fig. 1(b): FPGA resource utilization and power per
//! quantization scheme, from both the calibrated and the analytical resource models,
//! plus the accelerator latency at 100 MHz.

use accel::accelerator::Accelerator;
use accel::resources::{analytical_estimate, paper_table_vi};
use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;

fn main() {
    let config = TinyVbfConfig::paper();
    println!("Table VI — Resource utilization (paper measurement vs analytical model)");
    println!(
        "{:<10} | {:>9} {:>9} {:>7} {:>6} {:>8} {:>7} | {:>9} {:>9} {:>7} {:>6} {:>8} {:>7}",
        "Scheme", "LUT", "FF", "BRAM", "DSP", "LUTRAM", "P(W)", "~LUT", "~FF", "~BRAM", "~DSP", "~LUTRAM", "~P(W)"
    );
    println!("{}", "-".repeat(130));
    for scheme in QuantScheme::all() {
        let paper = paper_table_vi(&scheme).expect("known scheme");
        let model = analytical_estimate(&config, &scheme);
        println!(
            "{:<10} | {:>9.0} {:>9.0} {:>7.1} {:>6.0} {:>8.0} {:>7.3} | {:>9.0} {:>9.0} {:>7.1} {:>6.0} {:>8.0} {:>7.3}",
            scheme.name, paper.lut, paper.ff, paper.bram, paper.dsp, paper.lutram, paper.power_w,
            model.lut, model.ff, model.bram, model.dsp, model.lutram, model.power_w
        );
    }

    println!();
    println!("Fig. 1(b) — Hybrid-2 vs Float relative utilization (calibrated numbers)");
    let float = paper_table_vi(&QuantScheme::float()).unwrap();
    let hybrid2 = paper_table_vi(&QuantScheme::hybrid2()).unwrap();
    println!(
        "LUT {:.0}% | FF {:.0}% | BRAM {:.0}% | LUTRAM {:.0}% | overall {:.0}% of the float implementation",
        100.0 * hybrid2.lut / float.lut,
        100.0 * hybrid2.ff / float.ff,
        100.0 * hybrid2.bram / float.bram,
        100.0 * hybrid2.lutram / float.lutram,
        100.0 * hybrid2.relative_utilization(&float),
    );

    println!();
    println!("Accelerator latency at 100 MHz (368x128 frame):");
    for report in Accelerator::all_schemes_report(config, 368, 128) {
        println!(
            "  {:<10} {:>12} cycles/frame  {:>8.1} ms/frame  {:>7.1} frames/s",
            report.scheme,
            report.cycles_per_frame,
            report.latency_seconds * 1e3,
            report.frames_per_second
        );
    }
}
