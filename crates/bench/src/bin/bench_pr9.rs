//! PR-9 SIMD-datapath benchmark: per-kernel dispatch-tier speedups and the
//! fixed-point-vs-float inference headline.
//!
//! Two measurement families feed `BENCH_pr9.json`:
//!
//! * **Kernels** — each `runtime::simd` hot kernel timed under every
//!   available dispatch tier (`scalar` → `portable` → `native`) on
//!   paper-scale shapes (128-channel gathers, 2048-tap FIR rows, the
//!   128×128·128×8 encoder matmul, and the i16-madd vs i64 integer MAC
//!   panels). The determinism contract makes the tiers bitwise
//!   interchangeable, so the speedups are pure throughput wins.
//! * **Inference** — full Tiny-VBF row inference over every depth row of the
//!   368×128 paper grid (tokens = 128, channels = 128), once per Table III
//!   scheme. The float scheme runs the `f32` datapath; every fixed-point
//!   scheme runs the real integer kernels. The gate asserted before the
//!   report is written: **fx16 integer inference is faster than float** —
//!   the quantized rung finally pays for itself in this reproduction.
//!
//! Writes `BENCH_pr9.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr9`; set `BENCH_PR9_FAST=1`
//! (or the `BENCH_FAST=1` umbrella) for fewer repetitions.

use beamforming::tof::TofCube;
use neural::tensor::Tensor;
use quantize::QuantScheme;
use runtime::simd::{self, SimdMode};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::QuantizedTinyVbf;
use tiny_vbf::training::cube_row;

/// Paper imaging grid: 368 depth rows × 128 lateral pixels.
const GRID_ROWS: usize = 368;

fn lcg(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// Median-of-`reps` wall time for `iters` calls of `f`, in µs per call.
fn time_us<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Times `f` under each available dispatch tier; returns (mode label, µs).
fn per_mode<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> Vec<(&'static str, f64)> {
    let out = simd::available_modes()
        .into_iter()
        .map(|mode| {
            simd::force_mode(Some(mode));
            (mode.label(), time_us(reps, iters, &mut f))
        })
        .collect();
    simd::force_mode(None);
    out
}

fn json_kernel(name: &str, timings: &[(&'static str, f64)]) -> String {
    let scalar = timings.iter().find(|(m, _)| *m == "scalar").map(|&(_, t)| t).unwrap_or(f64::NAN);
    let mut body = String::new();
    for (mode, us) in timings {
        let _ = write!(body, "\"{mode}_us\": {us:.3}, ");
    }
    let best = timings.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    format!("    \"{name}\": {{ {body}\"best_speedup_vs_scalar\": {:.3} }}", scalar / best)
}

fn main() {
    let fast = bench::report::fast_mode(9);
    let (reps, iters) = if fast { (3, 2_000) } else { (5, 20_000) };
    let infer_reps = if fast { 1 } else { 3 };

    // ---- kernel shapes: 128-channel paper geometry -------------------------
    let channels = 128usize;
    let samples = 1024usize;
    let mut state = 0x5EED_u64;
    let flat: Vec<f32> = (0..channels * samples).map(|_| lcg(&mut state)).collect();
    let (tap0, tap1): (Vec<u32>, Vec<u32>) = (0..channels)
        .map(|ch| {
            let base = (ch * samples) as u32 + (lcg(&mut state).abs() * (samples - 2) as f32) as u32;
            (base, base + 1)
        })
        .unzip();
    let frac: Vec<f32> = (0..channels).map(|_| lcg(&mut state) + 0.5).collect();
    let w0: Vec<f32> = frac.iter().map(|f| 1.0 - f).collect();
    let w1 = frac;
    let apod: Vec<f32> = (0..channels).map(|_| lcg(&mut state).abs()).collect();
    let kernel_fir: Vec<f32> = (0..63).map(|_| lcg(&mut state)).collect();
    let mut fir_out = vec![0.0f32; 2048 + 63];
    let a_mat = {
        let mut t = Tensor::zeros(&[128, 128]);
        for v in t.as_mut_slice() {
            *v = lcg(&mut state);
        }
        t
    };
    let b_mat = {
        let mut t = Tensor::zeros(&[128, 8]);
        for v in t.as_mut_slice() {
            *v = lcg(&mut state);
        }
        t
    };
    let a_codes: Vec<i32> = (0..128).map(|_| (lcg(&mut state) * 20000.0) as i32).collect();
    let b_codes: Vec<i32> = (0..128 * 128).map(|_| (lcg(&mut state) * 20000.0) as i32).collect();
    let a_pairs: Vec<i32> =
        (0..64).map(|p| simd::pack_i16_pair(a_codes[2 * p].clamp(-32767, 32767), a_codes[2 * p + 1].clamp(-32767, 32767))).collect();
    let b_pairs: Vec<i32> = (0..64 * 128)
        .map(|i| {
            let (p, j) = (i / 128, i % 128);
            simd::pack_i16_pair(b_codes[(2 * p) * 128 + j].clamp(-32767, 32767), b_codes[(2 * p + 1) * 128 + j].clamp(-32767, 32767))
        })
        .collect();

    eprintln!("bench_pr9: timing kernels ({})", if fast { "fast" } else { "full" });
    let mut gather_out = vec![0.0f32; channels];
    let kernels = vec![
        (
            "das_gather_reduce_128ch",
            per_mode(reps, iters, || {
                black_box(simd::das_gather_reduce(&flat, &tap0, &tap1, &w0, &w1, &apod));
            }),
        ),
        (
            "tof_gather_two_tap_128ch",
            per_mode(reps, iters, || {
                simd::gather_two_tap(&flat, &tap0, &tap1, &w0, &w1, &mut gather_out);
                black_box(&gather_out);
            }),
        ),
        (
            "fir_axpy_2048",
            per_mode(reps, iters / 4 + 1, || {
                for s in 0..32 {
                    simd::axpy(&mut fir_out[s..s + 63], 0.37, &kernel_fir);
                }
                black_box(&fir_out);
            }),
        ),
        (
            "matmul_128x128x8",
            per_mode(reps, iters / 8 + 1, || {
                black_box(a_mat.matmul(&b_mat));
            }),
        ),
        (
            "int_madd_block_64x128",
            per_mode(reps, iters, || {
                let mut acc = [0i32; 128];
                simd::madd_block(&mut acc, &a_pairs, &b_pairs);
                black_box(&acc);
            }),
        ),
        (
            "int_i64_mac_row_128x128",
            per_mode(reps, iters / 4 + 1, || {
                let mut acc = [0i64; 128];
                simd::i64_mac_row(&mut acc, &a_codes, &b_codes);
                black_box(&acc);
            }),
        ),
    ];

    // ---- inference: 368×128 paper grid, all Table III schemes -------------
    let config = TinyVbfConfig::paper();
    eprintln!(
        "bench_pr9: paper-grid inference ({} rows × {} tokens × {} channels)",
        GRID_ROWS, config.tokens, config.channels
    );
    let model = TinyVbf::new(&config).expect("paper config");
    let mut cube = TofCube::zeros(GRID_ROWS, config.tokens, config.channels);
    for v in cube.as_mut_slice() {
        *v = lcg(&mut state);
    }
    cube.normalize();
    let rows: Vec<Tensor> = (0..cube.rows()).map(|r| cube_row(&cube, r)).collect();

    let mut inference = Vec::new();
    for scheme in QuantScheme::all() {
        let engine = QuantizedTinyVbf::from_model(&model, scheme.clone());
        let us = time_us(infer_reps, 1, || {
            for row in &rows {
                black_box(engine.infer_row(row));
            }
        });
        eprintln!("  {:>14}: {:9.0} µs/frame", scheme.backend_label(), us);
        inference.push((scheme.backend_label().to_string(), us));
    }

    let float_us = inference.iter().find(|(n, _)| n == "tiny-vbf-fp").map(|&(_, t)| t).expect("float entry");
    let fx16_us = inference.iter().find(|(n, _)| n == "tiny-vbf-fx16").map(|&(_, t)| t).expect("fx16 entry");
    let speedup = float_us / fx16_us;
    eprintln!("bench_pr9: fx16 vs float speedup {speedup:.3}×");

    // ---- report -----------------------------------------------------------
    let mut kernels_json: Vec<String> = kernels.iter().map(|(name, t)| json_kernel(name, t)).collect();
    kernels_json.sort();
    let inference_json: Vec<String> = inference
        .iter()
        .map(|(name, us)| format!("    \"{name}\": {{ \"us_per_frame\": {us:.1}, \"speedup_vs_float\": {:.3} }}", float_us / us))
        .collect();
    let json = format!
(
        "{{\n  \"schema_version\": 1,\n  \"pr\": 9,\n  \"profile\": \"{}\",\n  \"native_tier\": \"{}\",\n  \"kernels\": {{\n{}\n  }},\n  \"inference_368x128\": {{\n{}\n  }},\n  \"gate\": {{ \"fx16_faster_than_float\": {}, \"fx16_speedup_vs_float\": {:.3} }}\n}}\n",
        if fast { "fast" } else { "full" },
        if simd::native_available() { SimdMode::Native.label() } else { "unavailable" },
        kernels_json.join(",\n"),
        inference_json.join(",\n"),
        fx16_us < float_us,
        speedup,
    );
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    println!("{json}");

    assert!(
        fx16_us < float_us,
        "gate failed: fx16 integer inference ({fx16_us:.0} µs) must be faster than float ({float_us:.0} µs)"
    );
    eprintln!("bench_pr9: wrote BENCH_pr9.json");
}
