//! PR-5 quantized-serving benchmark: every Table III quantization scheme as
//! its own `serve::router::Router` backend — float plus the uniform 24/20/16
//! bit and Hybrid-1/2 fixed-point schemes — load-tested through **one** queue
//! and thread budget at the paper's 368 × 128 PICMUS grid on the 128-channel
//! L11-5v probe, reporting per-scheme throughput, p50/p99 latency and the
//! accumulated input-quantization SQNR accuracy proxy.
//!
//! Writes `BENCH_pr5.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr5`; set `BENCH_PR5_FAST=1` (or the `BENCH_FAST=1` umbrella) for
//! a quicker smoke configuration (reduced probe/grid/model) and
//! `BENCH_PR5_FRAMES=n` to override the frames per scheme. Before any
//! timing, every served image is asserted **bitwise identical** to serial
//! per-frame quantized inference, and all per-scheme engines are asserted to
//! replay **one shared ToF plan** (the plan depends on the stream geometry,
//! not the scheme). In the JSON, `quality_frames` counts reference + served
//! frames (the reference clones share the engines' quality accumulators),
//! so it reads 2× `requests`.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::Beamformer;
use beamforming::plan::{FrameFormat, PlanCache};
use quantize::QuantScheme;
use serve::router::{Router, StreamSpec};
use serve::{BatchConfig, ServeError, ServeResult};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random RF frame (inference cost is independent of
/// the sample values, so a cheap LCG replaces the full simulator at the
/// paper-scale grid).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let fast = bench::report::fast_mode(5);
    let threads = runtime::default_threads();

    // Full mode runs the paper deployment shape: L11-5v, 368 × 128 grid,
    // 128-channel / 128-token Tiny-VBF. Fast mode shrinks everything.
    let (array, rows, cols, depth_extent, num_samples, frames_per_scheme) = if fast {
        (LinearArray::small_test_array(), 46, 32, 15.0e-3, 1024, 3)
    } else {
        (LinearArray::l11_5v(), 368, 128, 40.0e-3, 2048, 6)
    };
    let frames_per_scheme =
        bench::report::env_knob("BENCH_PR5_FRAMES", 1).unwrap_or(frames_per_scheme);
    let grid = ImagingGrid::for_array(&array, 5.0e-3, depth_extent, rows, cols);
    let config = TinyVbfConfig::paper().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&config).expect("model");

    let schemes = QuantScheme::all();
    let specs: Vec<StreamSpec> = schemes
        .iter()
        .map(|scheme| StreamSpec {
            array: array.clone(),
            grid: grid.clone(),
            sound_speed: 1540.0,
            backend: scheme.backend_label().into(),
        })
        .collect();

    // One per-scheme backend each, all replaying one shared ToF plan.
    println!("quantizing {} backends ({} weights each)…", schemes.len(), model.num_weights());
    let shared_tof = Arc::new(PlanCache::new(2));
    let backends: Vec<QuantizedTinyVbfBeamformer> = schemes
        .iter()
        .map(|scheme| {
            QuantizedTinyVbfBeamformer::with_tof_cache(
                QuantizedTinyVbf::from_model(&model, *scheme),
                Arc::clone(&shared_tof),
            )
        })
        .collect();

    let frames: Vec<ChannelData> =
        (0..frames_per_scheme).map(|i| synthetic_frame(&array, num_samples, 2024 + i as u64)).collect();

    // Serial per-frame quantized reference for the bitwise assertion. The
    // served engines are clones sharing weights, the ToF plan cache AND the
    // quality accumulators, so the reported `quality_frames` counts
    // reference + served frames (2× `requests`).
    println!("serial reference: {} schemes × {frames_per_scheme} frames at {rows}x{cols}…", schemes.len());
    let reference: Vec<Vec<IqImage>> = backends
        .iter()
        .map(|backend| {
            frames.iter().map(|f| backend.beamform(f, &array, &grid, 1540.0).expect("reference")).collect()
        })
        .collect();

    let total = schemes.len() * frames_per_scheme;
    let factory = {
        let backends = backends.clone();
        let schemes = schemes.clone();
        move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
            match schemes.iter().position(|s| s.backend_label() == spec.backend) {
                Some(i) => Ok(Arc::new(backends[i].clone())),
                None => Err(ServeError::Engine(format!("unknown backend {}", spec.backend))),
            }
        }
    };
    let router = Router::new(
        BatchConfig {
            max_batch: 8,
            linger: Duration::from_micros(300),
            queue_capacity: total.max(1),
            ..BatchConfig::default()
        },
        factory,
    );
    for spec in &specs {
        router.warm(spec, &FrameFormat::of(&frames[0])).expect("warm");
    }
    // Every engine shares `shared_tof`, so assert on the cache itself (the
    // per-engine snapshots in RouterStats would each re-count it).
    let warm_misses = shared_tof.stats().misses;
    assert_eq!(warm_misses, 1, "all schemes must share one ToF plan");

    // Offered load: every scheme's stream interleaved frame by frame.
    let start = Instant::now();
    let mut handles = Vec::with_capacity(total);
    for i in 0..frames_per_scheme {
        for (s, spec) in specs.iter().enumerate() {
            handles.push((s, i, router.submit(spec, frames[i].clone()).expect("submit")));
        }
    }
    for (s, i, handle) in handles {
        let image = handle.wait().expect("serve");
        assert_eq!(reference[s][i], image, "scheme {} frame {i} != serial quantized inference", schemes[s].name);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let achieved_fps = total as f64 / elapsed;

    let stats = router.shutdown();
    assert_eq!(stats.server.completed, total as u64);
    assert_eq!(shared_tof.stats().misses, warm_misses, "zero ToF plan rebuilds after warm-up");
    assert_eq!(shared_tof.stats().evictions, 0);

    println!(
        "{total} frames served in {elapsed:.2} s ({achieved_fps:.1} frames/sec, {threads} threads, {rows}x{cols})"
    );
    let mut entries = String::new();
    for (scheme, spec) in schemes.iter().zip(&specs) {
        let engine = stats.engines.iter().find(|e| e.spec == *spec).expect("engine");
        let quality = engine.quant_quality.expect("quantized backends report quality");
        let sqnr = quality.sqnr_db();
        println!(
            "  {:<10} ({:<15}) {:>3} frames | p50 {:>8.2} ms | p99 {:>8.2} ms | input SQNR {:>8.2} dB",
            scheme.name,
            spec.backend,
            engine.requests,
            engine.latency.p50().as_secs_f64() * 1e3,
            engine.latency.p99().as_secs_f64() * 1e3,
            sqnr,
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            r#"    {{
      "scheme": "{}",
      "backend": "{}",
      "weight_bits": {},
      "datapath_bits": {},
      "requests": {},
      "p50_ms": {:.3},
      "p99_ms": {:.3},
      "input_sqnr_db": {},
      "quality_frames": {}
    }}"#,
            scheme.name,
            spec.backend,
            scheme.weight_bits(),
            scheme.datapath_bits(),
            engine.requests,
            engine.latency.p50().as_secs_f64() * 1e3,
            engine.latency.p99().as_secs_f64() * 1e3,
            json_f64(sqnr),
            quality.frames,
        )
        .expect("format scheme entry");
    }

    let json = format!(
        r#"{{
  "pr": 5,
  "threads": {threads},
  "grid_rows": {rows},
  "grid_cols": {cols},
  "channels": {},
  "frames_per_scheme": {frames_per_scheme},
  "achieved_fps": {achieved_fps:.2},
  "tof_plans_built": {},
  "schemes": [
{entries}
  ]
}}
"#,
        array.num_elements(),
        warm_misses,
    );
    std::fs::write("BENCH_pr5.json", json).expect("write BENCH_pr5.json");
    println!("wrote BENCH_pr5.json");
}
