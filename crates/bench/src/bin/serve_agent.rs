//! Scenario server process: hosts one `serve::router::Router` behind a
//! loopback TCP socket for the benchmark harness.
//!
//! Spawned by `bench::harness::run_scenario` as its own OS process, so
//! scenario measurements cross a real process boundary (separate heaps,
//! separate RSS, real sockets) instead of sharing the load generator's
//! address space the way the old per-PR bench binaries did.
//!
//! Protocol (single-line JSON):
//! * stdin, first line: `{"scenario": <ScenarioConfig>}`,
//! * stdout: `{"event":"ready","port":N}` once listening,
//! * TCP, per request: `{"id":n,"stream":i,"seed":k}` →
//!   `{"id":n,"status":"ok"|"expired"|"panicked"|"error"}` — the frame is
//!   synthesized server-side from the seed, so the socket carries only
//!   routing metadata and the measurement isolates the serving datapath,
//! * stdin `shutdown` (or EOF): stdout
//!   `{"event":"stats","rss_kb":…,"router":<RouterStatsWire>}`, exit.

use beamforming::grid::ImagingGrid;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use beamforming::plan::{FrameFormat, PlanCache};
use bench::harness::{max_rss_kb, synthetic_frame, ChaosSpec, ScenarioConfig};
use quantize::QuantScheme;
use runtime::json::Json;
use serve::router::{Router, StreamSpec};
use serve::{
    BatchConfig, ChaosBeamformer, ChaosSchedule, DegradeConfig, RouterStatsWire, ServeError,
    ServeResult,
};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
use ultrasound::ChannelData;

/// Pre-synthesized frames per stream; requests index the pool by
/// `seed % FRAME_POOL`, keeping per-request work at one memcpy.
const FRAME_POOL: usize = 32;

/// Threads resolving response handles per connection. Handles resolve in
/// roughly dispatch order, so a small pool keeps up with the batcher.
const COMPLETION_THREADS: usize = 4;

fn protocol_error(detail: &str) -> ! {
    let line = Json::obj([("event", Json::str("error")), ("detail", Json::str(detail))]);
    println!("{}", line.to_string_compact());
    std::process::exit(1);
}

/// Builds the beamformer for a backend label. `chaos:` prefixes wrap the
/// inner backend in a fault-injecting [`ChaosBeamformer`] driven by the
/// scenario's schedule; quantized Tiny-VBF labels share one TOF plan cache
/// across schemes, as in `bench_pr5`.
fn build_backend(
    label: &str,
    spec: &StreamSpec,
    chaos: &Option<ChaosSpec>,
    shared_tof: &Arc<PlanCache>,
) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
    if let Some(inner) = label.strip_prefix("chaos:") {
        let Some(chaos) = chaos else {
            return Err(ServeError::Engine(format!("backend `{label}` needs a chaos schedule")));
        };
        let mut schedule = ChaosSchedule::seeded(chaos.seed);
        if chaos.panic_one_in > 0 {
            schedule = schedule.panic_one_in(chaos.panic_one_in);
        }
        if chaos.delay_one_in > 0 {
            schedule =
                schedule.delay_one_in(chaos.delay_one_in, Duration::from_millis(chaos.delay_ms));
        }
        let inner = build_backend(inner, spec, &None, shared_tof)?;
        return Ok(Arc::new(ChaosBeamformer::new(ArcBeamformer(inner), schedule)));
    }
    match label {
        "das" => Ok(Arc::new(DelayAndSum::default())),
        "das-planned" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
        _ => match QuantScheme::all().iter().find(|s| s.backend_label() == label) {
            Some(scheme) => {
                let config =
                    TinyVbfConfig::small().for_frame(spec.array.num_elements(), spec.grid.num_cols());
                let model = TinyVbf::new(&config)
                    .map_err(|e| ServeError::Engine(format!("building Tiny-VBF: {e}")))?;
                Ok(Arc::new(QuantizedTinyVbfBeamformer::with_tof_cache(
                    QuantizedTinyVbf::from_model(&model, *scheme),
                    Arc::clone(shared_tof),
                )))
            }
            None => Err(ServeError::Engine(format!("unknown backend `{label}`"))),
        },
    }
}

/// Adapter: [`ChaosBeamformer`] wraps a concrete `Beamformer` by value;
/// this lets it wrap the `Arc<dyn Beamformer>` the factory produces.
struct ArcBeamformer(Arc<dyn Beamformer + Send + Sync>);

impl Beamformer for ArcBeamformer {
    fn beamform(
        &self,
        frame: &ChannelData,
        array: &ultrasound::LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> beamforming::BeamformResult<beamforming::iq::IqImage> {
        self.0.beamform(frame, array, grid, sound_speed)
    }

    fn prepare(
        &self,
        array: &ultrasound::LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: &FrameFormat,
    ) {
        self.0.prepare(array, grid, sound_speed, frame);
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Maps a resolved request to its wire status.
fn status_of(result: &ServeResult<beamforming::iq::IqImage>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ServeError::DeadlineExceeded) => "expired",
        Err(ServeError::EnginePanicked { .. }) | Err(ServeError::WorkerDied) => "panicked",
        Err(_) => "error",
    }
}

/// Serves one load-agent connection until it disconnects: a reader thread
/// submits, [`COMPLETION_THREADS`] waiters resolve handles and write
/// responses through a shared writer.
fn serve_connection(
    stream: TcpStream,
    router: Arc<Router>,
    specs: Arc<Vec<StreamSpec>>,
    pools: Arc<Vec<Vec<ChannelData>>>,
    deadline: Option<Duration>,
) {
    let reader = BufReader::new(stream.try_clone().expect("clone connection"));
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    let (tx, rx) = mpsc::channel::<(u64, serve::ResponseHandle<beamforming::iq::IqImage>)>();
    let rx = Arc::new(Mutex::new(rx));

    let waiters: Vec<_> = (0..COMPLETION_THREADS)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || loop {
                let next = rx.lock().expect("completion queue").recv();
                let Ok((id, handle)) = next else { break };
                let result = handle.wait();
                let line = Json::obj([
                    ("id", Json::num(id as f64)),
                    ("status", Json::str(status_of(&result))),
                ])
                .to_string_compact();
                let mut writer = writer.lock().expect("response writer");
                if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
                    break; // agent went away; drain remaining handles silently
                }
            })
        })
        .collect();

    for line in reader.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(request) = Json::parse(trimmed) else { break };
        let (Some(id), Some(stream_idx), Some(seed)) = (
            request.get("id").and_then(Json::as_u64),
            request.get("stream").and_then(Json::as_usize),
            request.get("seed").and_then(Json::as_u64),
        ) else {
            break;
        };
        if stream_idx >= specs.len() {
            break;
        }
        let frame = pools[stream_idx][seed as usize % FRAME_POOL].clone();
        let submitted = match deadline {
            Some(d) => router.submit_with_deadline(&specs[stream_idx], frame, d),
            None => router.submit(&specs[stream_idx], frame),
        };
        match submitted {
            Ok(handle) => {
                if tx.send((id, handle)).is_err() {
                    break;
                }
            }
            Err(_) => {
                // Shutting down: answer directly so the agent can account
                // for the request instead of counting it lost.
                let line = Json::obj([("id", Json::num(id as f64)), ("status", Json::str("error"))])
                    .to_string_compact();
                let mut writer = writer.lock().expect("response writer");
                if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
                    break;
                }
            }
        }
    }
    drop(tx);
    for waiter in waiters {
        let _ = waiter.join();
    }
}

fn main() {
    // Injected chaos panics unwind with a `chaos:` payload and are
    // contained at the router's dispatch boundary; silence their
    // default-hook backtraces so scenario stderr stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));

    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        protocol_error("expected a scenario config line on stdin");
    }
    let config = Json::parse(first_line.trim())
        .map_err(|e| e.to_string())
        .and_then(|v| {
            ScenarioConfig::from_json(
                v.get("scenario").ok_or("config line without `scenario`".to_string())?,
            )
        })
        .unwrap_or_else(|e| protocol_error(&format!("bad scenario config: {e}")));

    // One spec + frame pool per stream. Pools are seeded from the scenario
    // seed, so two runs of a scenario serve bit-identical frames.
    let mut specs = Vec::with_capacity(config.streams.len());
    let mut pools = Vec::with_capacity(config.streams.len());
    for (index, stream) in config.streams.iter().enumerate() {
        let array = config.stream_array(index);
        let (rows, cols) = config.stream_grid_shape(index);
        let grid = ImagingGrid::for_array(&array, 5.0e-3, 15.0e-3, rows, cols);
        specs.push(StreamSpec {
            array: array.clone(),
            grid,
            sound_speed: 1540.0,
            backend: stream.backend.clone(),
        });
        let pool: Vec<ChannelData> = (0..FRAME_POOL)
            .map(|i| {
                let seed = config
                    .seed
                    .wrapping_add((index as u64) << 32)
                    .wrapping_add(i as u64);
                synthetic_frame(&array, config.num_samples, seed)
            })
            .collect();
        pools.push(pool);
    }

    let chaos = config.chaos.clone();
    let shared_tof = Arc::new(PlanCache::new(4));
    let factory = {
        let chaos = chaos.clone();
        move |spec: &StreamSpec| build_backend(&spec.backend, spec, &chaos, &shared_tof)
    };
    let batch_config = BatchConfig {
        max_batch: config.max_batch,
        linger: Duration::from_micros(config.linger_us),
        queue_capacity: 1024,
        ..BatchConfig::default()
    };
    let router = match &config.degrade_ladder {
        Some(ladder) => {
            // Fast-reacting policy sized to second-scale scenarios: decide
            // every 8 requests, shift after one clean/dirty window.
            let degrade = DegradeConfig {
                window: 8,
                cooldown_windows: 1,
                downshift_expiry_rate: 0.25,
                upshift_expiry_rate: 0.02,
                ..DegradeConfig::with_ladder(ladder.clone())
            };
            Router::with_degrade(batch_config, factory, degrade)
                .unwrap_or_else(|e| protocol_error(&format!("invalid degrade config: {e}")))
        }
        None => Router::new(batch_config, factory),
    };
    let router = Arc::new(router);

    // Warm every stream (engine spawn + plan build) so the measured window
    // starts from a hot server, as the per-PR benches did.
    for (spec, pool) in specs.iter().zip(&pools) {
        if let Err(e) = router.warm(spec, &FrameFormat::of(&pool[0])) {
            protocol_error(&format!("warming `{}`: {e}", spec.backend));
        }
    }

    let listener = TcpListener::bind("127.0.0.1:0")
        .unwrap_or_else(|e| protocol_error(&format!("binding loopback listener: {e}")));
    let port = listener.local_addr().expect("local addr").port();
    println!(
        "{}",
        Json::obj([("event", Json::str("ready")), ("port", Json::num(port as f64))])
            .to_string_compact()
    );

    let specs = Arc::new(specs);
    let pools = Arc::new(pools);
    let deadline = config.deadline_ms.map(Duration::from_millis);
    let stats_router = Arc::clone(&router);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            stream.set_nodelay(true).ok();
            let router = Arc::clone(&router);
            let specs = Arc::clone(&specs);
            let pools = Arc::clone(&pools);
            std::thread::spawn(move || serve_connection(stream, router, specs, pools, deadline));
        }
    });

    // Block until the harness asks for the final snapshot. Load agents
    // have drained and disconnected by then, so `stats()` sees the whole
    // scenario. Exiting main tears down the accept loop and workers.
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let stats = RouterStatsWire::from_stats(&stats_router.stats());
    let line = Json::obj([
        ("event", Json::str("stats")),
        ("rss_kb", max_rss_kb().map_or(Json::Null, |r| Json::num(r as f64))),
        ("router", stats.to_json()),
    ]);
    println!("{}", line.to_string_compact());
}
