//! Scenario server process: hosts one `serve::router::Router` behind a
//! loopback TCP socket for the benchmark harness.
//!
//! Spawned by `bench::harness::run_scenario` as its own OS process, so
//! scenario measurements cross a real process boundary (separate heaps,
//! separate RSS, real sockets) instead of sharing the load generator's
//! address space the way the old per-PR bench binaries did. The serving
//! datapath itself — stream specs, frame pools, router, connection
//! handling — lives in [`bench::agent`], shared with `shard_agent`.
//!
//! Protocol (single-line JSON):
//! * stdin, first line: `{"scenario": <ScenarioConfig>}`,
//! * stdout: `{"event":"ready","port":N}` once listening,
//! * TCP, per request: `{"id":n,"stream":i,"seed":k}` →
//!   `{"id":n,"status":"ok"|"expired"|"panicked"|"error","sum":…}` — the
//!   frame is synthesized server-side from the seed, so the socket carries
//!   only routing metadata and the measurement isolates the serving
//!   datapath,
//! * stdin `shutdown` (or EOF): stdout
//!   `{"event":"stats","rss_kb":…,"router":<RouterStatsWire>}`, exit.

use bench::agent;
use bench::harness::{max_rss_kb, ScenarioConfig};
use runtime::json::Json;
use serve::RouterStatsWire;
use std::io::BufRead;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    agent::install_chaos_panic_hook();

    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        agent::protocol_error("expected a scenario config line on stdin");
    }
    let config = Json::parse(first_line.trim())
        .map_err(|e| e.to_string())
        .and_then(|v| {
            ScenarioConfig::from_json(
                v.get("scenario").ok_or("config line without `scenario`".to_string())?,
            )
        })
        .unwrap_or_else(|e| agent::protocol_error(&format!("bad scenario config: {e}")));

    let (specs, pools) = agent::build_streams(&config);
    let router = agent::build_router(&config)
        .unwrap_or_else(|e| agent::protocol_error(&e));
    let router = Arc::new(router);

    // Warm the streams active from t=0 (engine spawn + plan build) so the
    // measured window starts from a hot server. Streams whose activity
    // window opens later spin up under traffic — that spin-up is exactly
    // what the churn scenario measures.
    let warm_now = (0..config.streams.len()).filter(|&i| config.streams[i].is_active_at(0));
    if let Err(e) = agent::warm_streams(&router, &specs, &pools, warm_now) {
        agent::protocol_error(&e);
    }

    let listener = TcpListener::bind("127.0.0.1:0")
        .unwrap_or_else(|e| agent::protocol_error(&format!("binding loopback listener: {e}")));
    let port = listener.local_addr().expect("local addr").port();
    println!(
        "{}",
        Json::obj([("event", Json::str("ready")), ("port", Json::num(port as f64))])
            .to_string_compact()
    );

    let specs = Arc::new(specs);
    let pools = Arc::new(pools);
    let deadline = config.deadline_ms.map(Duration::from_millis);
    let shed_on_full = config.shed_on_full;
    let stats_router = Arc::clone(&router);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            stream.set_nodelay(true).ok();
            let router = Arc::clone(&router);
            let specs = Arc::clone(&specs);
            let pools = Arc::clone(&pools);
            std::thread::spawn(move || {
                agent::serve_connection(stream, router, specs, pools, deadline, None, shed_on_full)
            });
        }
    });

    // Block until the harness asks for the final snapshot. Load agents
    // have drained and disconnected by then, so `stats()` sees the whole
    // scenario. Exiting main tears down the accept loop and workers.
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let stats = RouterStatsWire::from_stats(&stats_router.stats());
    let line = Json::obj([
        ("event", Json::str("stats")),
        ("rss_kb", max_rss_kb().map_or(Json::Null, |r| Json::num(r as f64))),
        ("router", stats.to_json()),
    ]);
    println!("{}", line.to_string_compact());
}
