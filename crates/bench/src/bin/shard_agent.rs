//! One shard of the registry-coordinated serving topology.
//!
//! Hosts the same serving datapath as `serve_agent` ([`bench::agent`]) —
//! same specs, same seeded frame pools, same router — but additionally:
//!
//! * registers its stream keys with the shard registry and renews its
//!   heartbeat lease every `heartbeat_ms`,
//! * keeps a live [`bench::agent::ShardView`] of which keys the registry
//!   currently assigns to it, answering requests for unassigned keys with
//!   `status:"wrong_epoch"` so clients refresh their routing and fail
//!   over,
//! * warms **every** stream at startup, not just its assigned ones — when
//!   a sibling shard is killed and its keys reassigned here, failover
//!   traffic must land on a hot engine, not pay an engine spin-up inside
//!   the client's deadline.
//!
//! Protocol (single-line JSON):
//! * stdin, first line: `{"scenario": <ScenarioConfig>,
//!   "registry_port": p, "shard_index": s}`,
//! * stdout: `{"event":"ready","port":N}` once registered and listening,
//! * stdin `shutdown` (or EOF): stdout
//!   `{"event":"stats","shard":s,"rss_kb":…,"router":…}`, exit.

use bench::agent::{self, ShardView};
use bench::harness::{max_rss_kb, ScenarioConfig};
use runtime::backoff::Backoff;
use runtime::json::Json;
use serve::RouterStatsWire;
use shard::client::RegistryConn;
use shard::ShardError;
use std::io::BufRead;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Attempts to reach the registry at startup before giving up. The
/// harness spawns registry and shards concurrently, so the first
/// connects may race the registry's bind.
const STARTUP_ATTEMPTS: u32 = 10;

/// Per-exchange budget for register/renew calls.
const REGISTRY_CALL_BUDGET: Duration = Duration::from_millis(500);

/// Extracts `(epoch, assigned keys)` from a register/renew response.
fn lease_view(response: &Json) -> Result<(u64, Vec<String>), String> {
    let epoch = response
        .get("epoch")
        .and_then(Json::as_u64)
        .ok_or("lease response without `epoch`")?;
    let assigned = response
        .get("assigned")
        .and_then(Json::as_arr)
        .ok_or("lease response without `assigned`")?
        .iter()
        .map(|k| k.as_str().map(str::to_string).ok_or("non-string assigned key".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((epoch, assigned))
}

fn main() {
    agent::install_chaos_panic_hook();

    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        agent::protocol_error("expected a config line on stdin");
    }
    let config_value = Json::parse(first_line.trim())
        .unwrap_or_else(|e| agent::protocol_error(&format!("bad config line: {e}")));
    let scenario = config_value
        .get("scenario")
        .ok_or("missing `scenario`".to_string())
        .and_then(ScenarioConfig::from_json)
        .unwrap_or_else(|e| agent::protocol_error(&format!("bad scenario: {e}")));
    let registry_port = config_value
        .get("registry_port")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| agent::protocol_error("missing `registry_port`")) as u16;
    let shard_index = config_value
        .get("shard_index")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| agent::protocol_error("missing `shard_index`"));

    let (specs, pools) = agent::build_streams(&scenario);
    let router =
        agent::build_router(&scenario).unwrap_or_else(|e| agent::protocol_error(&e));
    let router = Arc::new(router);

    // Warm everything: any key can be reassigned here the moment a sibling
    // dies, and failover latency must not include an engine spin-up.
    if let Err(e) = agent::warm_streams(&router, &specs, &pools, 0..specs.len()) {
        agent::protocol_error(&e);
    }

    let listener = TcpListener::bind("127.0.0.1:0")
        .unwrap_or_else(|e| agent::protocol_error(&format!("binding data listener: {e}")));
    let data_port = listener.local_addr().expect("local addr").port();

    let shard_name = format!("shard{shard_index}");
    let data_addr = format!("127.0.0.1:{data_port}");
    let registry_addr = format!("127.0.0.1:{registry_port}");
    let keys = Json::arr((0..specs.len()).map(|i| Json::str(i.to_string())));
    let register_frame = Json::obj([
        ("op", Json::str("register")),
        ("shard", Json::str(shard_name.clone())),
        ("addr", Json::str(data_addr)),
        ("keys", keys),
    ]);

    // Register with bounded retry: the registry may still be binding.
    let mut registry = RegistryConn::new(registry_addr);
    let mut backoff =
        Backoff::new(Duration::from_millis(20), Duration::from_millis(500), scenario.seed);
    let view = ShardView::new();
    let mut registered = false;
    for attempt in 0..STARTUP_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(backoff.next_delay());
        }
        match registry.call(&register_frame, Instant::now() + REGISTRY_CALL_BUDGET) {
            Ok(response) => {
                let (epoch, assigned) = lease_view(&response)
                    .unwrap_or_else(|e| agent::protocol_error(&format!("bad register reply: {e}")));
                view.update(epoch, assigned);
                registered = true;
                break;
            }
            Err(_) if attempt + 1 < STARTUP_ATTEMPTS => {}
            Err(e) => agent::protocol_error(&format!("registering with registry: {e}")),
        }
    }
    if !registered {
        agent::protocol_error("registering with registry: attempts exhausted");
    }

    println!(
        "{}",
        Json::obj([("event", Json::str("ready")), ("port", Json::num(data_port as f64))])
            .to_string_compact()
    );

    // Heartbeat loop: renew the lease every `heartbeat_ms`, fold the
    // registry's answer into the live view, and re-register from scratch
    // if the registry evicted us (a long stall, not a crash). Transient
    // registry errors just wait for the next beat — the lease survives
    // until `lease_ttl_ms` without a renewal.
    {
        let view = view.clone();
        let shard_name = shard_name.clone();
        let interval = Duration::from_millis(scenario.heartbeat_ms);
        std::thread::spawn(move || {
            let renew_frame =
                Json::obj([("op", Json::str("renew")), ("shard", Json::str(shard_name))]);
            loop {
                std::thread::sleep(interval);
                let deadline = Instant::now() + REGISTRY_CALL_BUDGET;
                let response = match registry.call(&renew_frame, deadline) {
                    Ok(response) => response,
                    Err(ShardError::Registry(why)) if why == "unknown_shard" => {
                        // Evicted: our keys may already live elsewhere.
                        // Re-register and accept whatever the fresh epoch
                        // assigns us.
                        match registry.call(&register_frame, deadline) {
                            Ok(response) => response,
                            Err(_) => continue,
                        }
                    }
                    Err(_) => continue,
                };
                if let Ok((epoch, assigned)) = lease_view(&response) {
                    view.update(epoch, assigned);
                }
            }
        });
    }

    let specs = Arc::new(specs);
    let pools = Arc::new(pools);
    let deadline = scenario.deadline_ms.map(Duration::from_millis);
    let shed_on_full = scenario.shed_on_full;
    let stats_router = Arc::clone(&router);
    {
        let view = view.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                stream.set_nodelay(true).ok();
                let router = Arc::clone(&router);
                let specs = Arc::clone(&specs);
                let pools = Arc::clone(&pools);
                let view = view.clone();
                std::thread::spawn(move || {
                    agent::serve_connection(stream, router, specs, pools, deadline, Some(view), shed_on_full)
                });
            }
        });
    }

    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let stats = RouterStatsWire::from_stats(&stats_router.stats());
    let line = Json::obj([
        ("event", Json::str("stats")),
        ("shard", Json::num(shard_index as f64)),
        ("rss_kb", max_rss_kb().map_or(Json::Null, |r| Json::num(r as f64))),
        ("router", stats.to_json()),
    ]);
    println!("{}", line.to_string_compact());
}
