//! Scenario benchmark driver: runs the named scenario catalogue through
//! the process-spawning harness and writes one `summary.json` per
//! scenario.
//!
//! Usage:
//!
//! ```text
//! bench_scenarios [--profile fast|full] [--scenario NAME]... \
//!                 [--out-dir DIR] [--list]
//! ```
//!
//! * `--profile` — `fast` (CI smoke scale, default) or `full`,
//! * `--scenario` — run only the named scenario(s); repeatable. Default:
//!   the whole catalogue (`bench::scenarios`),
//! * `--out-dir` — where `<name>.summary.json` files land (default
//!   `bench_out`),
//! * `--list` — print the catalogue and exit.
//!
//! Each scenario spawns one `serve_agent` and one or more `load_agent`
//! release processes (they must sit next to this binary in the target
//! directory — `cargo build --release -p bench` builds all of them).
//! Exit status is non-zero if any scenario fails to run; regression
//! judgment is `bench_compare`'s job.

use bench::harness::{run_scenario, summary_json, Profile};
use bench::scenarios::{all_scenarios, scenario, scenario_names};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: bench_scenarios [--profile fast|full] [--scenario NAME]... [--out-dir DIR] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut profile = Profile::Fast;
    let mut names: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("bench_out");
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => match args.next().as_deref().map(Profile::parse) {
                Some(Ok(p)) => profile = p,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    usage();
                }
                None => usage(),
            },
            "--scenario" => match args.next() {
                Some(name) => names.push(name),
                None => usage(),
            },
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--list" => list = true,
            _ => usage(),
        }
    }

    if list {
        for config in all_scenarios(profile) {
            println!(
                "{:<20} streams={} agents={} duration={}ms",
                config.name,
                config.streams.len(),
                config.agents,
                config.duration_ms
            );
        }
        return;
    }

    let configs = if names.is_empty() {
        all_scenarios(profile)
    } else {
        names
            .iter()
            .map(|name| {
                scenario(name, profile).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scenario `{name}` (known: {})",
                        scenario_names().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("creating {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let mut failures = 0usize;
    for config in &configs {
        print!("{:<20} ", config.name);
        std::io::Write::flush(&mut std::io::stdout()).ok();
        match run_scenario(config, profile) {
            Ok(outcome) => {
                let summary = summary_json(&outcome);
                let path = out_dir.join(format!("{}.summary.json", config.name));
                if let Err(e) = std::fs::write(&path, summary.to_string_pretty() + "\n") {
                    eprintln!("writing {}: {e}", path.display());
                    failures += 1;
                    continue;
                }
                println!(
                    "ok={} expired={} panicked={} lost={} p50={}us p99={}us {:.1} req/s rss={}kB ({:.1}s)",
                    outcome.ok,
                    outcome.expired,
                    outcome.panicked,
                    outcome.lost,
                    outcome.latency.p50().as_micros(),
                    outcome.latency.p99().as_micros(),
                    outcome.throughput_rps,
                    outcome.server_rss_kb.unwrap_or(0),
                    outcome.elapsed_s,
                );
            }
            Err(e) => {
                println!("FAILED: {e}");
                failures += 1;
            }
        }
    }

    println!(
        "{} scenario(s) run, {} failed, summaries in {}",
        configs.len(),
        failures,
        out_dir.display()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
