//! PR-3 precomputed-plan benchmark: per-frame latency of planned vs direct
//! DAS beamforming at three grid sizes (up to the paper's 368 × 128 PICMUS
//! grid on a 128-channel probe), plus served throughput and p50/p99 latency
//! through the `serve` micro-batcher with and without plans.
//!
//! Writes `BENCH_pr3.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr3`; set `BENCH_PR3_FAST=1` (or the `BENCH_FAST=1` umbrella) for
//! a quicker smoke configuration. Planned outputs are asserted **bitwise**
//! identical to the direct path for every measured thread count before any
//! timing is reported.

use beamforming::das::DelayAndSum;
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::Beamformer;
use beamforming::plan::{FrameFormat, PlannedDas};
use serve::service::BeamformEngine;
use serve::{BatchConfig, Server, ServerStats};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random RF frame (beamforming cost is independent of
/// the sample values, so a cheap LCG replaces the full simulator at the
/// paper-scale grid sizes).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn assert_bits_eq(direct: &[f32], planned: &[f32], context: &str) {
    assert_eq!(direct.len(), planned.len(), "{context}: length");
    for (i, (a, b)) in direct.iter().zip(planned.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: sample {i} ({a} vs {b})");
    }
}

fn time_per_frame<F: FnMut(usize)>(frames: usize, repeats: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for r in 0..repeats {
        for i in 0..frames {
            f(r * frames + i);
        }
    }
    start.elapsed().as_secs_f64() * 1e3 / (frames * repeats) as f64
}

struct ServeResult {
    fps: f64,
    stats: ServerStats,
}

fn serve_frames<B: Beamformer + Send + 'static>(
    beamformer: B,
    array: &LinearArray,
    grid: &ImagingGrid,
    frames: &[ChannelData],
    reference: &[IqImage],
) -> ServeResult {
    let config = BatchConfig {
        max_batch: 4,
        linger: Duration::from_micros(200),
        queue_capacity: frames.len().max(1),
        workers: 1,
        ..BatchConfig::default()
    };
    let engine = BeamformEngine::new(beamformer, array.clone(), grid.clone(), 1540.0);
    engine.warm(&FrameFormat::of(&frames[0]));
    let server = Server::new(config, engine);
    let start = Instant::now();
    let handles: Vec<_> = frames.iter().map(|f| server.submit(f.clone()).expect("submit")).collect();
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().expect("wait")).collect();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    for (i, (a, b)) in reference.iter().zip(served.iter()).enumerate() {
        assert_eq!(a, b, "served frame {i} != direct reference");
    }
    ServeResult { fps: frames.len() as f64 / elapsed, stats }
}

fn main() {
    let fast = bench::report::fast_mode(3);
    let threads = runtime::default_threads();
    let array = LinearArray::l11_5v();
    // Covers the paper's 5–45 mm PICMUS depth span at 31.25 MHz.
    let num_samples = 2048;
    let num_frames = if fast { 2 } else { 4 };
    let repeats = if fast { 1 } else { 3 };
    let serve_count = if fast { 8 } else { 24 };
    let das = DelayAndSum::default();

    let grids: [(&str, usize, usize); 3] = [("small", 92, 32), ("medium", 184, 64), ("picmus", 368, 128)];
    let mut entries = String::new();

    for (name, rows, cols) in grids {
        let grid = ImagingGrid::for_array(&array, 5.0e-3, 40.0e-3, rows, cols);
        let frames: Vec<ChannelData> =
            (0..num_frames).map(|i| synthetic_frame(&array, num_samples, 42 + i as u64)).collect();
        let frame_format = FrameFormat::of(&frames[0]);

        let build_start = Instant::now();
        let plan = das.plan(&array, &grid, 1540.0, frame_format).expect("plan");
        let plan_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let plan_mb = plan.memory_bytes() as f64 / (1024.0 * 1024.0);

        // Bitwise identity before any timing, for serial and parallel runs.
        let mut bitwise = true;
        for t in [1, threads] {
            let direct = das.beamform_rf_with_threads(&frames[0], &array, &grid, 1540.0, t).expect("direct");
            let planned = das.beamform_rf_planned_with_threads(&frames[0], &plan, t).expect("planned");
            assert_bits_eq(&direct, &planned, &format!("{name} threads {t}"));
            bitwise &= direct == planned;
        }

        let direct_ms = time_per_frame(num_frames, repeats, |i| {
            let frame = &frames[i % num_frames];
            std::hint::black_box(das.beamform_rf_with_threads(frame, &array, &grid, 1540.0, threads).expect("direct"));
        });
        let planned_ms = time_per_frame(num_frames, repeats, |i| {
            let frame = &frames[i % num_frames];
            std::hint::black_box(das.beamform_rf_planned_with_threads(frame, &plan, threads).expect("planned"));
        });
        let speedup = direct_ms / planned_ms;

        // Served throughput: the same stream through the micro-batcher, with
        // the direct beamformer vs the plan-cached wrapper.
        let serve_stream: Vec<ChannelData> = (0..serve_count).map(|i| frames[i % num_frames].clone()).collect();
        let reference: Vec<IqImage> = serve_stream
            .iter()
            .map(|f| das.beamform(f, &array, &grid, 1540.0).expect("reference"))
            .collect();
        let direct_serve = serve_frames(das.clone(), &array, &grid, &serve_stream, &reference);
        let planned_wrapper = Arc::new(PlannedDas::new(das.clone()));
        let planned_serve = serve_frames(Arc::clone(&planned_wrapper), &array, &grid, &serve_stream, &reference);
        assert_eq!(planned_wrapper.plans_built(), 1, "{name}: one plan must serve the whole stream");

        println!(
            "{name:>7} ({rows}x{cols}): direct {direct_ms:8.2} ms/frame | planned {planned_ms:8.2} ms/frame | \
             {speedup:4.2}x | plan {plan_build_ms:7.1} ms, {plan_mb:6.1} MB | served {:6.1} -> {:6.1} fps \
             (planned p50 {:.2} ms, p99 {:.2} ms)",
            direct_serve.fps,
            planned_serve.fps,
            planned_serve.stats.latency.p50().as_secs_f64() * 1e3,
            planned_serve.stats.latency.p99().as_secs_f64() * 1e3,
        );

        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            r#"    {{
      "grid": "{name}",
      "rows": {rows},
      "cols": {cols},
      "plan_build_ms": {plan_build_ms:.2},
      "plan_entries": {},
      "plan_megabytes": {plan_mb:.2},
      "direct_ms_per_frame": {direct_ms:.3},
      "planned_ms_per_frame": {planned_ms:.3},
      "speedup": {speedup:.2},
      "bitwise_identical": {bitwise},
      "serving": {{
        "direct_fps": {:.2},
        "planned_fps": {:.2},
        "direct_p50_ms": {:.3},
        "direct_p99_ms": {:.3},
        "planned_p50_ms": {:.3},
        "planned_p99_ms": {:.3}
      }}
    }}"#,
            plan.num_entries(),
            direct_serve.fps,
            planned_serve.fps,
            direct_serve.stats.latency.p50().as_secs_f64() * 1e3,
            direct_serve.stats.latency.p99().as_secs_f64() * 1e3,
            planned_serve.stats.latency.p50().as_secs_f64() * 1e3,
            planned_serve.stats.latency.p99().as_secs_f64() * 1e3,
        )
        .expect("format entry");
    }

    let json = format!(
        r#"{{
  "pr": 3,
  "threads": {threads},
  "channels": {},
  "frame_samples": {num_samples},
  "frames_per_measurement": {num_frames},
  "grids": [
{entries}
  ]
}}
"#,
        array.num_elements(),
    );
    std::fs::write("BENCH_pr3.json", json).expect("write BENCH_pr3.json");
    println!("wrote BENCH_pr3.json");
}
