//! Scenario load-generator process: offers traffic to a `serve_agent` over
//! loopback TCP and measures client-side latency.
//!
//! Spawned by `bench::harness::run_scenario`, one or more per scenario.
//! Latency is measured here — wall-clock from writing the request line to
//! reading its response line — so it includes the socket, queueing, batching
//! and compute exactly as a scanner-side client would see them, not just
//! the server's internal dispatch time.
//!
//! Protocol (single-line JSON):
//! * stdin, first line: `{"scenario": <ScenarioConfig>, "port": p,
//!   "agent_index": i}`,
//! * TCP: request lines `{"id":n,"stream":i,"seed":k}`, response lines
//!   `{"id":n,"status":…}` in any order,
//! * stdout, at exit: the [`bench::harness::AgentSummary`] line
//!   (`{"event":"summary", …}`) with warmup-excluded counters, the merged
//!   latency histogram, and this process's max RSS.
//!
//! Two offered-load models ([`bench::harness::LoadModel`]): closed-loop
//! pipelining with a fixed in-flight budget (a permit returns with each
//! response), and open-loop seeded Poisson arrivals
//! ([`runtime::poisson::PoissonArrivals`]) that keep offering whatever the
//! server does — the model that can expose queueing collapse.

use bench::harness::{max_rss_kb, AgentSummary, LoadModel, ScenarioConfig};
use runtime::json::Json;
use serve::LatencyHistogram;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the agent waits after the offered window for stragglers before
/// declaring the remainder lost.
const DRAIN_GRACE: Duration = Duration::from_secs(20);

fn protocol_error(detail: &str) -> ! {
    let line = Json::obj([("event", Json::str("error")), ("detail", Json::str(detail))]);
    println!("{}", line.to_string_compact());
    std::process::exit(1);
}

/// Outcome counters a response thread accumulates.
#[derive(Default)]
struct Tally {
    ok: u64,
    expired: u64,
    panicked: u64,
    errors: u64,
    latency: LatencyHistogram,
}

fn main() {
    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        protocol_error("expected a config line on stdin");
    }
    let config_value = Json::parse(first_line.trim())
        .unwrap_or_else(|e| protocol_error(&format!("bad config line: {e}")));
    let scenario = config_value
        .get("scenario")
        .ok_or("missing `scenario`".to_string())
        .and_then(ScenarioConfig::from_json)
        .unwrap_or_else(|e| protocol_error(&format!("bad scenario: {e}")));
    let port = config_value
        .get("port")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| protocol_error("missing `port`")) as u16;
    let agent_index = config_value
        .get("agent_index")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| protocol_error("missing `agent_index`"));

    let sock = TcpStream::connect(("127.0.0.1", port))
        .unwrap_or_else(|e| protocol_error(&format!("connecting to serve_agent: {e}")));
    sock.set_nodelay(true).ok();
    let reader = BufReader::new(sock.try_clone().expect("clone connection"));
    let mut writer = BufWriter::new(sock.try_clone().expect("clone connection"));

    // Deterministic weighted stream cycle: weights [2,1] → [0,0,1] repeated,
    // so the offered mix matches the weights exactly, not just in
    // expectation.
    let cycle: Vec<usize> = scenario
        .streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| std::iter::repeat(i).take(s.weight as usize))
        .collect();

    let started = Instant::now();
    let warmup_cutoff = started + Duration::from_millis(scenario.warmup_ms);
    let offered_until = started + Duration::from_millis(scenario.duration_ms);

    // id → (send instant, measured?). The response thread removes entries;
    // whatever survives the drain grace is lost.
    let outstanding: Arc<Mutex<HashMap<u64, (Instant, bool)>>> = Arc::default();
    let tally: Arc<Mutex<Tally>> = Arc::default();
    let done_sending = Arc::new(AtomicBool::new(false));

    // Closed-loop permits: prefilled with the in-flight budget, one permit
    // returned per response. Open loop sends on the Poisson schedule and
    // ignores permits.
    let (permit_tx, permit_rx) = mpsc::channel::<()>();
    let mut arrivals = match &scenario.load {
        LoadModel::ClosedLoop { inflight } => {
            for _ in 0..*inflight {
                permit_tx.send(()).expect("prefill permits");
            }
            None
        }
        LoadModel::OpenLoopPoisson { rate_hz } => Some(
            runtime::poisson::PoissonArrivals::new(
                *rate_hz,
                scenario.seed ^ ((agent_index as u64 + 1) << 40),
            )
            .unwrap_or_else(|e| protocol_error(&format!("bad Poisson rate: {e}"))),
        ),
    };

    let response_thread = {
        let outstanding = Arc::clone(&outstanding);
        let tally = Arc::clone(&tally);
        let done_sending = Arc::clone(&done_sending);
        let permit_tx = permit_tx.clone();
        std::thread::spawn(move || {
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let Ok(response) = Json::parse(trimmed) else { break };
                let (Some(id), Some(status)) = (
                    response.get("id").and_then(Json::as_u64),
                    response.get("status").and_then(Json::as_str),
                ) else {
                    break;
                };
                let entry = outstanding.lock().expect("outstanding map").remove(&id);
                let Some((sent_at, measured)) = entry else { continue };
                let _ = permit_tx.send(());
                if measured {
                    let mut tally = tally.lock().expect("tally");
                    match status {
                        "ok" => {
                            tally.ok += 1;
                            tally.latency.record(sent_at.elapsed());
                        }
                        "expired" => tally.expired += 1,
                        "panicked" => tally.panicked += 1,
                        _ => tally.errors += 1,
                    }
                }
                // Once sending has stopped, exit as soon as the map drains
                // so the agent does not sit out the full grace window.
                if done_sending.load(Ordering::Acquire)
                    && outstanding.lock().expect("outstanding map").is_empty()
                {
                    break;
                }
            }
        })
    };

    // Offer window: send requests until `offered_until`.
    let mut sent: u64 = 0;
    let mut measured_sent: u64 = 0;
    loop {
        let now = Instant::now();
        if now >= offered_until {
            break;
        }
        match &mut arrivals {
            None => {
                // Closed loop: block for a permit, but wake up at the
                // window's end even if the server has stalled.
                let budget = offered_until.saturating_duration_since(Instant::now());
                match permit_rx.recv_timeout(budget) {
                    Ok(()) => {}
                    Err(mpsc::RecvTimeoutError::Timeout) => break,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            Some(poisson) => {
                // Open loop: sleep to the next arrival regardless of
                // responses.
                std::thread::sleep(poisson.next_gap());
            }
        }
        let now = Instant::now();
        if now >= offered_until {
            break;
        }
        let id = sent;
        let stream_idx = cycle[(sent as usize) % cycle.len()];
        // Mix, then keep 32 bits: JSON numbers are f64, exact only below
        // 2^53, and the server only uses the seed to index its frame pool.
        let seed =
            (scenario.seed ^ ((agent_index as u64) << 48) ^ id).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 32;
        let measured = now >= warmup_cutoff;
        outstanding.lock().expect("outstanding map").insert(id, (now, measured));
        let line = Json::obj([
            ("id", Json::num(id as f64)),
            ("stream", Json::num(stream_idx as f64)),
            ("seed", Json::num(seed as f64)),
        ])
        .to_string_compact();
        if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
            outstanding.lock().expect("outstanding map").remove(&id);
            break;
        }
        sent += 1;
        if measured {
            measured_sent += 1;
        }
    }
    done_sending.store(true, Ordering::Release);

    // Drain: give in-flight requests a grace window, then count leftovers
    // as lost. Shutting the socket down (not just dropping a clone — the
    // reader holds another) forces EOF on the response thread, which may be
    // blocked in `lines()` if the last response landed before
    // `done_sending` was set.
    let drain_deadline = Instant::now() + DRAIN_GRACE;
    while Instant::now() < drain_deadline {
        if outstanding.lock().expect("outstanding map").is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(writer);
    let _ = sock.shutdown(std::net::Shutdown::Both);
    let _ = response_thread.join();

    let leftovers = outstanding.lock().expect("outstanding map");
    let lost = leftovers.len() as u64;
    let lost_measured = leftovers.values().filter(|(_, measured)| *measured).count() as u64;
    drop(leftovers);

    let tally = tally.lock().expect("tally");
    let summary = AgentSummary {
        agent: agent_index,
        sent,
        // Measured = post-warmup requests with a known outcome; the lost
        // remainder is reported separately (and must be 0 in a healthy run).
        measured: measured_sent - lost_measured,
        ok: tally.ok,
        expired: tally.expired,
        panicked: tally.panicked,
        errors: tally.errors,
        lost,
        latency: tally.latency,
        rss_kb: max_rss_kb(),
        elapsed_s: started.elapsed().as_secs_f64(),
    };
    println!("{}", summary.to_json().to_string_compact());
}
