//! Scenario load-generator process: offers traffic to a `serve_agent` (or,
//! in sharded scenarios, to the registry-coordinated shard fleet through a
//! [`shard::ShardClient`]) and measures client-side latency.
//!
//! Spawned by `bench::harness::run_scenario`, one or more per scenario.
//! Latency is measured here — wall-clock from writing the request to
//! reading its response — so it includes the socket, queueing, batching
//! and compute exactly as a scanner-side client would see them, not just
//! the server's internal dispatch time.
//!
//! Protocol (single-line JSON):
//! * stdin, first line: `{"scenario": <ScenarioConfig>, "agent_index": i,
//!   …}` plus either `"port": p` (direct mode — dial the serve_agent) or
//!   `"registry_port": p` (sharded mode — discover shards via the
//!   registry),
//! * stdout, at exit: the [`bench::harness::AgentSummary`] line
//!   (`{"event":"summary", …}`) with warmup-excluded counters, the merged
//!   latency histogram, tail-window recovery counters, the per-frame
//!   response checksums, and this process's max RSS.
//!
//! Two offered-load models ([`bench::harness::LoadModel`]): closed-loop
//! pipelining with a fixed in-flight budget (a permit returns with each
//! response), and open-loop seeded Poisson arrivals
//! ([`runtime::poisson::PoissonArrivals`]) that keep offering whatever the
//! server does — the model that can expose queueing collapse. Sharded
//! scenarios are closed-loop only (enforced by scenario validation): each
//! of `inflight` worker threads drives one retrying call at a time.
//!
//! Direct mode is hardened against a wedged or vanished server: the
//! initial connect retries with jittered exponential backoff, both socket
//! directions carry timeouts, and the response reader tolerates timeouts
//! instead of blocking forever — a dead server costs the drain grace, not
//! a hang.

use bench::agent::FRAME_POOL;
use bench::harness::{max_rss_kb, AgentSummary, LoadModel, ScenarioConfig, StreamLoad};
use runtime::backoff::Backoff;
use runtime::json::Json;
use serve::LatencyHistogram;
use shard::{ShardClient, ShardClientConfig, ShardError};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the agent waits after the offered window for stragglers before
/// declaring the remainder lost.
const DRAIN_GRACE: Duration = Duration::from_secs(20);

/// Connect attempts against the serve_agent before giving up (the server
/// may still be binding when the harness spawns both sides).
const CONNECT_ATTEMPTS: u32 = 8;

/// Socket read/write budget in direct mode; a healthy loopback peer
/// answers in microseconds, so tripping this means the server is gone.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

fn protocol_error(detail: &str) -> ! {
    let line = Json::obj([("event", Json::str("error")), ("detail", Json::str(detail))]);
    println!("{}", line.to_string_compact());
    std::process::exit(1);
}

/// Outcome counters a response thread accumulates.
#[derive(Default)]
struct Tally {
    ok: u64,
    expired: u64,
    panicked: u64,
    errors: u64,
    tail_measured: u64,
    tail_ok: u64,
    latency: LatencyHistogram,
    checks: BTreeMap<String, String>,
}

impl Tally {
    /// Folds one resolved measured request into the counters.
    fn record(&mut self, status: &str, sent_at: Instant, tail: bool, check: Option<(String, &str)>) {
        match status {
            "ok" => {
                self.ok += 1;
                self.latency.record(sent_at.elapsed());
            }
            "expired" => self.expired += 1,
            "panicked" => self.panicked += 1,
            _ => self.errors += 1,
        }
        if tail {
            self.tail_measured += 1;
            if status == "ok" {
                self.tail_ok += 1;
            }
        }
        if let Some((key, sum)) = check {
            self.checks
                .entry(key)
                .and_modify(|seen| {
                    if seen != sum {
                        *seen = "!conflict".to_string();
                    }
                })
                .or_insert_with(|| sum.to_string());
        }
    }
}

/// The scenario's fixed request-shaping state, shared by both modes.
struct Shaper {
    scenario: ScenarioConfig,
    /// Deterministic weighted stream cycle: weights `[2,1]` → `[0,0,1]`
    /// repeated, so the offered mix matches the weights exactly, not just
    /// in expectation.
    cycle: Vec<usize>,
    started: Instant,
    warmup_cutoff: Instant,
    /// Start of the tail window: the final quarter of the measured span.
    /// Failover scenarios place the shard kill well before it, so the
    /// tail success rate probes post-recovery health.
    tail_cutoff: Instant,
    offered_until: Instant,
    agent_index: usize,
}

impl Shaper {
    fn new(scenario: ScenarioConfig, agent_index: usize) -> Self {
        let cycle: Vec<usize> = scenario
            .streams
            .iter()
            .enumerate()
            .flat_map(|(i, s)| std::iter::repeat(i).take(s.weight as usize))
            .collect();
        let started = Instant::now();
        let measured_span = scenario.duration_ms.saturating_sub(scenario.warmup_ms);
        Self {
            cycle,
            started,
            warmup_cutoff: started + Duration::from_millis(scenario.warmup_ms),
            tail_cutoff: started
                + Duration::from_millis(scenario.warmup_ms + 3 * measured_span / 4),
            offered_until: started + Duration::from_millis(scenario.duration_ms),
            agent_index,
            scenario,
        }
    }

    /// The stream a request with ordinal `n` at instant `now` targets:
    /// walk the weighted cycle from `n`, skipping streams outside their
    /// activity window (validation guarantees an always-active stream, so
    /// this terminates).
    fn pick_stream(&self, n: u64, now: Instant) -> usize {
        let offset_ms = now.duration_since(self.started).as_millis() as u64;
        let len = self.cycle.len();
        for step in 0..len {
            let idx = self.cycle[(n as usize + step) % len];
            let stream: &StreamLoad = &self.scenario.streams[idx];
            if stream.is_active_at(offset_ms) {
                return idx;
            }
        }
        self.cycle[(n as usize) % len]
    }

    /// The wire seed for request `id`: mix, then keep 32 bits — JSON
    /// numbers are f64, exact only below 2^53, and the server only uses
    /// the seed to index its frame pool.
    fn wire_seed(&self, id: u64) -> u64 {
        (self.scenario.seed ^ ((self.agent_index as u64) << 48) ^ id)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> 32
    }
}

fn main() {
    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        protocol_error("expected a config line on stdin");
    }
    let config_value = Json::parse(first_line.trim())
        .unwrap_or_else(|e| protocol_error(&format!("bad config line: {e}")));
    let scenario = config_value
        .get("scenario")
        .ok_or("missing `scenario`".to_string())
        .and_then(ScenarioConfig::from_json)
        .unwrap_or_else(|e| protocol_error(&format!("bad scenario: {e}")));
    let agent_index = config_value
        .get("agent_index")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| protocol_error("missing `agent_index`"));

    let shaper = Shaper::new(scenario, agent_index);
    let summary = match config_value.get("registry_port").and_then(Json::as_u64) {
        Some(registry_port) => run_sharded(&shaper, registry_port as u16),
        None => {
            let port = config_value
                .get("port")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| protocol_error("missing `port` (or `registry_port`)"))
                as u16;
            run_direct(&shaper, port)
        }
    };
    println!("{}", summary.to_json().to_string_compact());
}

/// Direct mode: one hardened loopback connection to the serve_agent.
fn run_direct(shaper: &Shaper, port: u16) -> AgentSummary {
    let scenario = &shaper.scenario;

    // Bounded connect retry: the server process may still be binding.
    let mut backoff = Backoff::new(
        Duration::from_millis(20),
        Duration::from_millis(500),
        scenario.seed ^ ((shaper.agent_index as u64 + 1) << 56),
    );
    let mut sock = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(backoff.next_delay());
        }
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => {
                sock = Some(stream);
                break;
            }
            Err(e) if attempt + 1 == CONNECT_ATTEMPTS => {
                protocol_error(&format!("connecting to serve_agent: {e}"))
            }
            Err(_) => {}
        }
    }
    let sock = sock.expect("connect loop either sets the socket or exits");
    sock.set_nodelay(true).ok();
    // Satellite hardening: a silent server trips a socket timeout instead
    // of pinning this agent forever.
    sock.set_read_timeout(Some(SOCKET_TIMEOUT)).ok();
    sock.set_write_timeout(Some(SOCKET_TIMEOUT)).ok();
    let reader = BufReader::new(sock.try_clone().expect("clone connection"));
    let mut writer = BufWriter::new(sock.try_clone().expect("clone connection"));

    // id → (send instant, measured?, tail?, stream, pool slot). The
    // response thread removes entries; whatever survives the drain grace
    // is lost.
    type Pending = (Instant, bool, bool, usize, u64);
    let outstanding: Arc<Mutex<HashMap<u64, Pending>>> = Arc::default();
    let tally: Arc<Mutex<Tally>> = Arc::default();
    let done_sending = Arc::new(AtomicBool::new(false));

    // Closed-loop permits: prefilled with the in-flight budget, one permit
    // returned per response. Open loop sends on the Poisson schedule and
    // ignores permits.
    let (permit_tx, permit_rx) = mpsc::channel::<()>();
    let mut arrivals = match &scenario.load {
        LoadModel::ClosedLoop { inflight } => {
            for _ in 0..*inflight {
                permit_tx.send(()).expect("prefill permits");
            }
            None
        }
        LoadModel::OpenLoopPoisson { rate_hz } => Some(
            runtime::poisson::PoissonArrivals::new(
                *rate_hz,
                scenario.seed ^ ((shaper.agent_index as u64 + 1) << 40),
            )
            .unwrap_or_else(|e| protocol_error(&format!("bad Poisson rate: {e}"))),
        ),
    };

    let response_thread = {
        let outstanding = Arc::clone(&outstanding);
        let tally = Arc::clone(&tally);
        let done_sending = Arc::clone(&done_sending);
        let permit_tx = permit_tx.clone();
        let mut reader = reader;
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                // Timeout-tolerant read: a socket timeout only ends the
                // loop once sending has stopped and nothing is owed.
                let read = loop {
                    match reader.read_line(&mut line) {
                        Ok(0) => break false,
                        Ok(_) if line.ends_with('\n') => break true,
                        Ok(_) => {} // partial line; keep reading
                        Err(e)
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                        {
                            if done_sending.load(Ordering::Acquire)
                                && outstanding.lock().expect("outstanding map").is_empty()
                            {
                                break false;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break false,
                    }
                };
                if !read {
                    break;
                }
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let Ok(response) = Json::parse(trimmed) else { break };
                let (Some(id), Some(status)) = (
                    response.get("id").and_then(Json::as_u64),
                    response.get("status").and_then(Json::as_str),
                ) else {
                    break;
                };
                let entry = outstanding.lock().expect("outstanding map").remove(&id);
                let Some((sent_at, measured, tail, stream_idx, slot)) = entry else { continue };
                let _ = permit_tx.send(());
                if measured {
                    let check = response
                        .get("sum")
                        .and_then(Json::as_str)
                        .map(|sum| (format!("{stream_idx}:{slot}"), sum));
                    tally.lock().expect("tally").record(status, sent_at, tail, check);
                }
                // Once sending has stopped, exit as soon as the map drains
                // so the agent does not sit out the full grace window.
                if done_sending.load(Ordering::Acquire)
                    && outstanding.lock().expect("outstanding map").is_empty()
                {
                    break;
                }
            }
        })
    };

    // Offer window: send requests until `offered_until`.
    let mut sent: u64 = 0;
    let mut measured_sent: u64 = 0;
    loop {
        let now = Instant::now();
        if now >= shaper.offered_until {
            break;
        }
        match &mut arrivals {
            None => {
                // Closed loop: block for a permit, but wake up at the
                // window's end even if the server has stalled.
                let budget = shaper.offered_until.saturating_duration_since(Instant::now());
                match permit_rx.recv_timeout(budget) {
                    Ok(()) => {}
                    Err(mpsc::RecvTimeoutError::Timeout) => break,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            Some(poisson) => {
                // Open loop: sleep to the next arrival regardless of
                // responses.
                std::thread::sleep(poisson.next_gap());
            }
        }
        let now = Instant::now();
        if now >= shaper.offered_until {
            break;
        }
        let id = sent;
        let stream_idx = shaper.pick_stream(id, now);
        let seed = shaper.wire_seed(id);
        let measured = now >= shaper.warmup_cutoff;
        let tail = now >= shaper.tail_cutoff;
        let slot = seed % FRAME_POOL as u64;
        outstanding
            .lock()
            .expect("outstanding map")
            .insert(id, (now, measured, tail, stream_idx, slot));
        let line = Json::obj([
            ("id", Json::num(id as f64)),
            ("stream", Json::num(stream_idx as f64)),
            ("seed", Json::num(seed as f64)),
        ])
        .to_string_compact();
        if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
            outstanding.lock().expect("outstanding map").remove(&id);
            break;
        }
        sent += 1;
        if measured {
            measured_sent += 1;
        }
    }
    done_sending.store(true, Ordering::Release);

    // Drain: give in-flight requests a grace window, then count leftovers
    // as lost. Shutting the socket down (not just dropping a clone — the
    // reader holds another) forces EOF on the response thread, which may be
    // blocked in `read_line` if the last response landed before
    // `done_sending` was set.
    let drain_deadline = Instant::now() + DRAIN_GRACE;
    while Instant::now() < drain_deadline {
        if outstanding.lock().expect("outstanding map").is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(writer);
    let _ = sock.shutdown(std::net::Shutdown::Both);
    let _ = response_thread.join();

    let leftovers = outstanding.lock().expect("outstanding map");
    let lost = leftovers.len() as u64;
    let lost_measured =
        leftovers.values().filter(|(_, measured, ..)| *measured).count() as u64;
    drop(leftovers);

    let tally = std::mem::take(&mut *tally.lock().expect("tally"));
    AgentSummary {
        agent: shaper.agent_index,
        sent,
        // Measured = post-warmup requests with a known outcome; the lost
        // remainder is reported separately (and must be 0 in a healthy run).
        measured: measured_sent - lost_measured,
        ok: tally.ok,
        expired: tally.expired,
        panicked: tally.panicked,
        errors: tally.errors,
        lost,
        retries: 0,
        failovers: 0,
        tail_measured: tally.tail_measured,
        tail_ok: tally.tail_ok,
        checks: tally.checks,
        latency: tally.latency,
        rss_kb: max_rss_kb(),
        elapsed_s: shaper.started.elapsed().as_secs_f64(),
    }
}

/// Sharded mode: `inflight` worker threads drive retrying, failover-aware
/// calls through one shared [`ShardClient`]. Every call resolves — as a
/// response, a typed shed, or a typed timeout — so `lost` is 0 by
/// construction; losing a request would mean the client hung, which its
/// deadlines forbid.
fn run_sharded(shaper: &Shaper, registry_port: u16) -> AgentSummary {
    let scenario = &shaper.scenario;
    let LoadModel::ClosedLoop { inflight } = scenario.load else {
        protocol_error("sharded scenarios are closed-loop only");
    };
    let deadline_ms = scenario
        .deadline_ms
        .unwrap_or_else(|| protocol_error("sharded scenarios need a deadline"));
    let deadline = Duration::from_millis(deadline_ms);

    let client = Arc::new(ShardClient::new(ShardClientConfig {
        registry_addr: format!("127.0.0.1:{registry_port}"),
        deadline,
        // Several attempts must fit inside one deadline: an attempt that
        // hits a dead shard burns its request_timeout, and failover only
        // happens on the next attempt's re-resolve.
        request_timeout: (deadline / 4).max(Duration::from_millis(25)),
        max_attempts: 32,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        window: inflight * 4,
        seed: scenario.seed ^ ((shaper.agent_index as u64 + 1) << 40),
        routing_ttl: Duration::from_millis(scenario.heartbeat_ms.clamp(10, 50)),
    }));

    let tally: Arc<Mutex<Tally>> = Arc::default();
    let ordinal = Arc::new(AtomicU64::new(0));
    let measured_sent = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..inflight)
        .map(|_| {
            let client = Arc::clone(&client);
            let tally = Arc::clone(&tally);
            let ordinal = Arc::clone(&ordinal);
            let measured_sent = Arc::clone(&measured_sent);
            let shaper_streams = scenario.streams.clone();
            let warmup_cutoff = shaper.warmup_cutoff;
            let tail_cutoff = shaper.tail_cutoff;
            let offered_until = shaper.offered_until;
            let started = shaper.started;
            let cycle = shaper.cycle.clone();
            let scenario_seed = scenario.seed;
            let agent_index = shaper.agent_index;
            std::thread::spawn(move || loop {
                let now = Instant::now();
                if now >= offered_until {
                    break;
                }
                let id = ordinal.fetch_add(1, Ordering::Relaxed);
                let offset_ms = now.duration_since(started).as_millis() as u64;
                let mut stream_idx = cycle[(id as usize) % cycle.len()];
                for step in 0..cycle.len() {
                    let idx = cycle[(id as usize + step) % cycle.len()];
                    if shaper_streams[idx].is_active_at(offset_ms) {
                        stream_idx = idx;
                        break;
                    }
                }
                let seed = (scenario_seed ^ ((agent_index as u64) << 48) ^ id)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    >> 32;
                let measured = now >= warmup_cutoff;
                let tail = now >= tail_cutoff;
                if measured {
                    measured_sent.fetch_add(1, Ordering::Relaxed);
                }
                let payload = Json::obj([
                    ("stream", Json::num(stream_idx as f64)),
                    ("seed", Json::num(seed as f64)),
                ]);
                let outcome = client.call(&stream_idx.to_string(), &payload);
                if !measured {
                    continue;
                }
                let slot = seed % FRAME_POOL as u64;
                let mut tally = tally.lock().expect("tally");
                match outcome {
                    Ok(outcome) => {
                        let status =
                            outcome.response.get("status").and_then(Json::as_str).unwrap_or("error");
                        let check = outcome
                            .response
                            .get("sum")
                            .and_then(Json::as_str)
                            .map(|sum| (format!("{stream_idx}:{slot}"), sum));
                        tally.record(status, now, tail, check);
                    }
                    // A call that exhausted its deadline is the sharded
                    // analogue of a server-side deadline expiry.
                    Err(ShardError::Timeout(_)) => tally.record("expired", now, tail, None),
                    // Sheds and connection/registry failures are typed
                    // errors — counted, never lost.
                    Err(_) => tally.record("error", now, tail, None),
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }

    let stats = client.stats();
    let tally = std::mem::take(&mut *tally.lock().expect("tally"));
    AgentSummary {
        agent: shaper.agent_index,
        sent: ordinal.load(Ordering::Relaxed),
        measured: measured_sent.load(Ordering::Relaxed),
        ok: tally.ok,
        expired: tally.expired,
        panicked: tally.panicked,
        errors: tally.errors,
        lost: 0,
        retries: stats.retries,
        failovers: stats.failovers,
        tail_measured: tally.tail_measured,
        tail_ok: tally.tail_ok,
        checks: tally.checks,
        latency: tally.latency,
        rss_kb: max_rss_kb(),
        elapsed_s: shaper.started.elapsed().as_secs_f64(),
    }
}
