//! Regenerates Table I: contrast metrics (CR / CNR / GCNR) of DAS, MVDR, Tiny-CNN,
//! Tiny-VBF (and FCNN) on the in-silico and in-vitro contrast datasets.

use bench::{evaluation_config_from_env, format_contrast_table, paper_table1_phantom, paper_table1_simulation};
use tiny_vbf::evaluation::{beamformer_suite, contrast_table, train_models};
use ultrasound::picmus::PicmusKind;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models at reduced scale ({} channels, {}x{} grid)…", config.array().num_elements(), config.grid_rows, config.grid_cols);
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    let simulation = contrast_table(&beamformers, &config, PicmusKind::InSilico).expect("in-silico evaluation failed");
    println!("{}", format_contrast_table("Table I — Simulation (in-silico) contrast metrics [measured | paper]", &simulation, &paper_table1_simulation()));

    let phantom = contrast_table(&beamformers, &config, PicmusKind::InVitro).expect("in-vitro evaluation failed");
    println!("{}", format_contrast_table("Table I — Phantom (in-vitro) contrast metrics [measured | paper]", &phantom, &paper_table1_phantom()));
}
