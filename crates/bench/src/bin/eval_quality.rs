//! Image-quality evaluation runner: render every router backend over the
//! calibration phantoms and emit gateable per-rung quality summaries.
//!
//! Usage:
//!
//! ```text
//! eval_quality [--profile fast|full] [--out-dir quality_out]
//! ```
//!
//! Writes into `--out-dir`:
//!
//! * `quality_<backend>.summary.json` — one gate summary per router rung,
//!   `{schema_version, scenario, profile, quality: {cr_db, cnr, gcnr,
//!   fwhm_mm, sqnr_db}}`, consumed by `bench_compare` against the
//!   committed `QUALITY_baseline.json`,
//! * `QUALITY_profile.json` — the full [`evals::QualityProfile`] document,
//! * `QUALITY_calibration.json` — the degrade ladder calibrated from the
//!   measured profile ([`evals::calibrate`]).
//!
//! Exit status: 0 on success, 2 on usage, evaluation or I/O errors. See
//! `docs/BENCHMARKS.md` for the gate workflow.

use bench::harness::SCHEMA_VERSION;
use evals::{calibrate, evaluate, EvalConfig};
use runtime::json::Json;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!("usage: eval_quality [--profile fast|full] [--out-dir DIR]");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("eval_quality: {message}");
    std::process::exit(2);
}

fn write_json(path: &Path, value: &Json) {
    std::fs::write(path, value.to_string_pretty() + "\n")
        .unwrap_or_else(|e| fail(&format!("writing {}: {e}", path.display())));
}

fn main() {
    let mut config = EvalConfig::fast();
    let mut out_dir = PathBuf::from("quality_out");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                config = match args.next().as_deref() {
                    Some("fast") => EvalConfig::fast(),
                    Some("full") => EvalConfig::full(),
                    Some(other) => fail(&format!("unknown profile `{other}` (fast|full)")),
                    None => usage(),
                }
            }
            "--out-dir" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("creating {}: {e}", out_dir.display())));

    eprintln!("eval_quality: rendering all router backends ({} profile)...", config.label);
    let profile = evaluate(&config).unwrap_or_else(|e| fail(&format!("evaluation: {e}")));
    write_json(&out_dir.join("QUALITY_profile.json"), &profile.to_json());

    // One gate summary per rung: `bench_compare` treats each backend as a
    // scenario named `quality_<backend>` so per-rung tolerances compose
    // with the existing scenario-override machinery.
    for rung in &profile.rungs {
        let summary = Json::obj([
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("scenario", Json::str(&format!("quality_{}", rung.backend))),
            ("profile", Json::str(&profile.profile)),
            (
                "quality",
                Json::obj([
                    ("cr_db", Json::num(rung.cr_db)),
                    ("cnr", Json::num(rung.cnr)),
                    ("gcnr", Json::num(rung.gcnr)),
                    ("fwhm_mm", Json::num(rung.fwhm_mm)),
                    // Informational (not gated): `null` encodes the float
                    // rung's infinite SQNR.
                    ("sqnr_db", Json::num(rung.sqnr_db)),
                ]),
            ),
        ]);
        write_json(&out_dir.join(format!("quality_{}.summary.json", rung.backend)), &summary);
        println!(
            "{:<16} CR {:>6.2} dB  CNR {:>5.2}  gCNR {:>5.3}  FWHM {:>5.2} mm  SQNR {:>6.1} dB",
            rung.backend, rung.cr_db, rung.cnr, rung.gcnr, rung.fwhm_mm, rung.sqnr_db
        );
    }

    let calibration = calibrate(&profile).unwrap_or_else(|e| fail(&format!("calibration: {e}")));
    write_json(&out_dir.join("QUALITY_calibration.json"), &calibration.to_json());
    println!(
        "calibrated ladder: [{}]  sqnr floor: {:?}",
        calibration.degrade.ladders[0].join(" > "),
        calibration.degrade.sqnr_floor_db
    );
    println!("wrote {} rung summaries to {}", profile.rungs.len(), out_dir.display());
}
