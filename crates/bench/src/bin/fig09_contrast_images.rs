//! Regenerates Figs. 1(a), 9(a) and 10: B-mode images of the cyst (contrast) datasets
//! for every beamformer, rendered as ASCII intensity maps plus per-cyst contrast values.

use bench::evaluation_config_from_env;
use tiny_vbf::evaluation::{beamformer_suite, bmode_gallery, contrast_table, train_models};
use ultrasound::picmus::PicmusKind;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training models…");
    let models = train_models(&config).expect("training failed");
    let beamformers = beamformer_suite(&models, &config);

    for (kind, label) in [(PicmusKind::InSilico, "Fig. 9(a) — in-silico cysts (13/25/37 mm)"), (PicmusKind::InVitro, "Fig. 10 — in-vitro cysts (15/35 mm)")] {
        println!("=== {label} ===");
        let gallery = bmode_gallery(&beamformers, &config, kind, true).expect("gallery failed");
        for (name, bmode) in &gallery {
            println!("--- {name} ({} dB dynamic range) ---", bmode.dynamic_range());
            println!("{}", bmode.to_ascii(64));
        }
        let table = contrast_table(&beamformers, &config, kind).expect("metrics failed");
        for row in table {
            println!("{:<10} CR {:.2} dB  CNR {:.2}  GCNR {:.2}", row.beamformer, row.metrics.cr_db, row.metrics.cnr, row.metrics.gcnr);
        }
        println!();
    }
}
