//! PR-4 routing benchmark: mixed-stream offered load — 2 probes × 2 grids
//! interleaved round-robin — through one `serve::router::Router`, with and
//! without per-request deadlines, reporting end-to-end throughput plus
//! p50/p99 latency and plan-cache counters **per stream**.
//!
//! Writes `BENCH_pr4.json` into the current directory. Run with
//! `cargo run --release -p bench --bin bench_pr4`; set `BENCH_PR4_FAST=1` (or the `BENCH_FAST=1` umbrella) for
//! a quicker smoke configuration. Before any timing, the no-deadline run is
//! asserted **bitwise identical** to serial per-frame inference and the
//! plan-cache counters are asserted to show zero rebuilds after warm-up.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use beamforming::plan::FrameFormat;
use serve::router::{Router, StreamSpec};
use serve::{BatchConfig, ServeError, ServeResult};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random RF frame (beamforming cost is independent of
/// the sample values, so a cheap LCG replaces the full simulator).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn das_factory(spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
    match spec.backend.as_str() {
        "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
        other => Err(ServeError::Engine(format!("unknown backend {other}"))),
    }
}

struct Scenario {
    name: &'static str,
    deadline: Option<Duration>,
}

struct StreamOutcome {
    label: String,
    requests: u64,
    p50_ms: f64,
    p99_ms: f64,
    plan_hits: u64,
    plan_misses: u64,
    plan_evictions: u64,
}

struct ScenarioOutcome {
    achieved_fps: f64,
    served: u64,
    expired: u64,
    streams: Vec<StreamOutcome>,
}

/// Round-robins every stream's frames through one fresh router and collects
/// global + per-stream outcomes. With `reference = Some(..)` every served
/// image is asserted bitwise identical to serial inference (deadline-free
/// runs only — a timed-out request has no image to compare).
fn run_scenario(
    specs: &[StreamSpec],
    frames: &[Vec<ChannelData>],
    scenario: &Scenario,
    reference: Option<&[Vec<IqImage>]>,
) -> ScenarioOutcome {
    let per_stream = frames[0].len();
    let total = per_stream * specs.len();
    let config = BatchConfig {
        max_batch: 8,
        linger: Duration::from_micros(300),
        queue_capacity: total.max(1),
        deadline: scenario.deadline,
        ..BatchConfig::default()
    };
    let router = Router::new(config, das_factory);
    for (spec, stream) in specs.iter().zip(frames) {
        router.warm(spec, &FrameFormat::of(&stream[0])).expect("warm");
    }
    let warm_misses = router.stats().plan_cache_total().misses;

    let start = Instant::now();
    let mut handles = Vec::with_capacity(total);
    for i in 0..per_stream {
        for (s, spec) in specs.iter().enumerate() {
            handles.push((s, router.submit(spec, frames[s][i].clone()).expect("submit")));
        }
    }
    let mut served = 0u64;
    let mut expired = 0u64;
    for (i, (s, handle)) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(image) => {
                if let Some(reference) = reference {
                    assert_eq!(reference[s][i / specs.len()], image, "routed frame {i} != serial reference");
                }
                served += 1;
            }
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(other) => panic!("unexpected serve error: {other}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = router.shutdown();
    assert_eq!(stats.server.completed, total as u64);
    assert_eq!(stats.server.deadline_expired, expired);
    let cache_total = stats.plan_cache_total();
    assert_eq!(cache_total.misses, warm_misses, "warm-up must leave zero plan rebuilds");
    assert_eq!(cache_total.evictions, 0);

    let streams = stats
        .engines
        .iter()
        .map(|engine| {
            let cache = engine.plan_cache.expect("planned DAS exposes cache stats");
            StreamOutcome {
                label: engine.spec.label(),
                requests: engine.requests,
                p50_ms: engine.latency.p50().as_secs_f64() * 1e3,
                p99_ms: engine.latency.p99().as_secs_f64() * 1e3,
                plan_hits: cache.hits,
                plan_misses: cache.misses,
                plan_evictions: cache.evictions,
            }
        })
        .collect();
    ScenarioOutcome { achieved_fps: served as f64 / elapsed, served, expired, streams }
}

fn main() {
    let fast = bench::report::fast_mode(4);
    let threads = runtime::default_threads();
    let per_stream = if fast { 6 } else { 24 };
    let scale = if fast { 2 } else { 1 };

    // 2 probes × 2 grids: the paper's 128-channel L11-5v and the 32-channel
    // test probe, each reconstructing onto a small and a large grid.
    let probe_big = LinearArray::l11_5v();
    let probe_small = LinearArray::small_test_array();
    let mut specs = Vec::new();
    for (probe, samples) in [(&probe_big, 2048usize), (&probe_small, 1024usize)] {
        for (rows, cols) in [(92usize, 32usize), (184, 64)] {
            specs.push((
                StreamSpec {
                    array: probe.clone(),
                    grid: ImagingGrid::for_array(probe, 5.0e-3, 40.0e-3, rows / scale, cols / scale),
                    sound_speed: 1540.0,
                    backend: "das".into(),
                },
                samples,
            ));
        }
    }
    let frames: Vec<Vec<ChannelData>> = specs
        .iter()
        .enumerate()
        .map(|(s, (spec, samples))| {
            (0..per_stream).map(|i| synthetic_frame(&spec.array, *samples, (s * 1000 + i) as u64)).collect()
        })
        .collect();
    let specs: Vec<StreamSpec> = specs.into_iter().map(|(spec, _)| spec).collect();

    // Serial per-frame reference for the bitwise assertion.
    println!("serial reference for {} streams × {per_stream} frames…", specs.len());
    let das = DelayAndSum::default();
    let reference: Vec<Vec<IqImage>> = specs
        .iter()
        .zip(&frames)
        .map(|(spec, stream)| {
            stream.iter().map(|f| das.beamform(f, &spec.array, &spec.grid, spec.sound_speed).expect("serial")).collect()
        })
        .collect();

    let scenarios = [
        Scenario { name: "no_deadline", deadline: None },
        Scenario { name: "deadline_25ms", deadline: Some(Duration::from_millis(25)) },
    ];

    let mut entries = String::new();
    for scenario in &scenarios {
        let check = if scenario.deadline.is_none() { Some(reference.as_slice()) } else { None };
        let outcome = run_scenario(&specs, &frames, scenario, check);
        println!(
            "{:<14} | {:7.1} frames/sec | {} served, {} expired",
            scenario.name, outcome.achieved_fps, outcome.served, outcome.expired
        );
        let mut stream_entries = String::new();
        for stream in &outcome.streams {
            println!(
                "    {:<22} {:>3} frames | p50 {:8.2} ms | p99 {:8.2} ms | plans {} built / {} hits",
                stream.label, stream.requests, stream.p50_ms, stream.p99_ms, stream.plan_misses, stream.plan_hits
            );
            if !stream_entries.is_empty() {
                stream_entries.push_str(",\n");
            }
            write!(
                stream_entries,
                r#"        {{
          "stream": "{}",
          "requests": {},
          "p50_ms": {:.3},
          "p99_ms": {:.3},
          "plan_hits": {},
          "plan_misses": {},
          "plan_evictions": {}
        }}"#,
                stream.label,
                stream.requests,
                stream.p50_ms,
                stream.p99_ms,
                stream.plan_hits,
                stream.plan_misses,
                stream.plan_evictions
            )
            .expect("format stream entry");
        }
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        write!(
            entries,
            r#"    {{
      "scenario": "{}",
      "deadline_ms": {},
      "achieved_fps": {:.2},
      "served": {},
      "deadline_expired": {},
      "streams": [
{stream_entries}
      ]
    }}"#,
            scenario.name,
            scenario.deadline.map_or("null".to_string(), |d| format!("{:.1}", d.as_secs_f64() * 1e3)),
            outcome.achieved_fps,
            outcome.served,
            outcome.expired,
        )
        .expect("format scenario entry");
    }

    let json = format!(
        r#"{{
  "pr": 4,
  "threads": {threads},
  "streams": {},
  "frames_per_stream": {per_stream},
  "scenarios": [
{entries}
  ]
}}
"#,
        specs.len(),
    );
    std::fs::write("BENCH_pr4.json", json).expect("write BENCH_pr4.json");
    println!("wrote BENCH_pr4.json");
}
