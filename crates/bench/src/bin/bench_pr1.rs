//! PR-1 before/after throughput benchmark: blocked+parallel matmul vs the seed
//! scalar triple loop, and the parallel/hoisted-weights DAS + ToF pipeline vs
//! faithful re-implementations of the seed serial loops.
//!
//! Writes `BENCH_pr1.json` into the current directory with the measured
//! medians so CI (and the PR description) can track the speedups. Run with
//! `cargo run --release -p bench --bin bench_pr1`; set `BENCH_PR1_FAST=1` (or the `BENCH_FAST=1` umbrella) for
//! a quicker smoke configuration.

use beamforming::das::DelayAndSum;
use beamforming::grid::ImagingGrid;
use beamforming::tof::{tof_correct, TofCube};
use neural::tensor::Tensor;
use std::time::Instant;
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};
use usdsp::interp::{sample_at, InterpMethod};

/// Median wall-clock seconds of `iters` runs of `f`.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn pseudo_random_tensor(shape: &[usize], seed: u64) -> Tensor {
    neural::init::normal(shape, 1.0, seed)
}

/// The seed repository's DAS loop (column-outer, per-pixel weight allocation,
/// single-threaded), kept verbatim as the "before" measurement.
fn das_seed_reference(
    das: &DelayAndSum,
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
) -> Vec<f32> {
    let rows = grid.num_rows();
    let cols = grid.num_cols();
    let channels = data.num_channels();
    let fs = data.sampling_frequency();
    let start_time = data.start_time();
    let traces = data.to_channel_traces();
    let element_xs = array.element_positions();
    let mut rf = vec![0.0f32; rows * cols];
    for col in 0..cols {
        let x = grid.x(col);
        for row in 0..rows {
            let z = grid.z(row);
            let weights = das.apodization.weights(array, x, z);
            let t_tx = das.transmit.transmit_delay(x, z, sound_speed);
            let mut acc = 0.0f32;
            for ch in 0..channels {
                let w = weights[ch];
                if w == 0.0 {
                    continue;
                }
                let dx = x - element_xs[ch];
                let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                let idx = (t_tx + t_rx - start_time) * fs;
                acc += w * sample_at(&traces[ch], idx, das.interpolation);
            }
            rf[row * cols + col] = acc;
        }
    }
    rf
}

/// The seed repository's serial ToF-correction loop, kept as "before".
fn tof_seed_reference(
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    tx: PlaneWave,
    sound_speed: f32,
) -> TofCube {
    let rows = grid.num_rows();
    let cols = grid.num_cols();
    let channels = data.num_channels();
    let fs = data.sampling_frequency();
    let start_time = data.start_time();
    let traces = data.to_channel_traces();
    let element_xs = array.element_positions();
    let mut cube = TofCube::zeros(rows, cols, channels);
    for row in 0..rows {
        let z = grid.z(row);
        for col in 0..cols {
            let x = grid.x(col);
            let t_tx = tx.transmit_delay(x, z, sound_speed);
            for ch in 0..channels {
                let dx = x - element_xs[ch];
                let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                let sample_index = (t_tx + t_rx - start_time) * fs;
                *cube.value_mut(row, col, ch) = sample_at(&traces[ch], sample_index, InterpMethod::Linear);
            }
        }
    }
    cube
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-6))
        .fold(0.0f32, f32::max)
}

fn main() {
    let fast = bench::report::fast_mode(1);
    let iters = if fast { 3 } else { 9 };
    let threads = runtime::default_threads();

    // ---- matmul 256×256×256 -------------------------------------------------
    let n = 256;
    let a = pseudo_random_tensor(&[n, n], 1);
    let b = pseudo_random_tensor(&[n, n], 2);
    let t_naive = time_median(iters, || {
        std::hint::black_box(a.matmul_naive(&b));
    });
    let t_blocked = time_median(iters, || {
        std::hint::black_box(a.matmul(&b));
    });
    let check_fast = a.matmul(&b);
    let check_ref = a.matmul_naive(&b);
    let matmul_diff = max_rel_diff(check_fast.as_slice(), check_ref.as_slice());
    let flops = 2.0 * (n as f64).powi(3);
    println!(
        "matmul {n}x{n}: naive {:.2} ms ({:.2} GFLOP/s) -> blocked {:.2} ms ({:.2} GFLOP/s), {:.2}x, max rel diff {:.2e}",
        t_naive * 1e3,
        flops / t_naive / 1e9,
        t_blocked * 1e3,
        flops / t_blocked / 1e9,
        t_naive / t_blocked,
        matmul_diff
    );

    // ---- end-to-end DAS + ToF on a simulated frame --------------------------
    let array = LinearArray::l11_5v().with_num_elements(64);
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.035);
    let phantom = Phantom::builder(0.015, 0.035)
        .seed(11)
        .speckle_density(if fast { 30.0 } else { 120.0 })
        .add_point_target(0.0, 0.02, 5.0)
        .build();
    let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).expect("simulation");
    let (rows, cols) = if fast { (64, 32) } else { (160, 96) };
    let grid = ImagingGrid::for_array(&array, 0.010, 0.020, rows, cols);
    let das = DelayAndSum::with_hann_aperture();

    let das_iters = iters.min(5);
    let t_das_before = time_median(das_iters, || {
        std::hint::black_box(das_seed_reference(&das, &rf, &array, &grid, 1540.0));
    });
    let t_das_after = time_median(das_iters, || {
        std::hint::black_box(das.beamform_rf(&rf, &array, &grid, 1540.0).unwrap());
    });
    let das_before = das_seed_reference(&das, &rf, &array, &grid, 1540.0);
    let das_after = das.beamform_rf(&rf, &array, &grid, 1540.0).unwrap();
    let das_diff = max_rel_diff(&das_before, &das_after);
    println!(
        "DAS {rows}x{cols}x{}ch: seed {:.2} ms -> parallel {:.2} ms, {:.2}x, max rel diff {:.2e}",
        array.num_elements(),
        t_das_before * 1e3,
        t_das_after * 1e3,
        t_das_before / t_das_after,
        das_diff
    );

    let t_tof_before = time_median(das_iters, || {
        std::hint::black_box(tof_seed_reference(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0));
    });
    let t_tof_after = time_median(das_iters, || {
        std::hint::black_box(tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).unwrap());
    });
    let tof_before = tof_seed_reference(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0);
    let tof_after = tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).unwrap();
    let tof_diff = max_rel_diff(tof_before.as_slice(), tof_after.as_slice());
    println!(
        "ToF {rows}x{cols}x{}ch: seed {:.2} ms -> parallel {:.2} ms, {:.2}x, max rel diff {:.2e}",
        array.num_elements(),
        t_tof_before * 1e3,
        t_tof_after * 1e3,
        t_tof_before / t_tof_after,
        tof_diff
    );

    assert!(matmul_diff < 1e-4, "matmul outputs diverged: {matmul_diff}");
    assert!(das_diff < 1e-4, "DAS outputs diverged: {das_diff}");
    assert!(tof_diff < 1e-4, "ToF outputs diverged: {tof_diff}");

    let json = format!(
        r#"{{
  "pr": 1,
  "threads": {threads},
  "matmul_256": {{
    "before_ms": {:.4},
    "after_ms": {:.4},
    "speedup": {:.3},
    "before_gflops": {:.3},
    "after_gflops": {:.3},
    "max_rel_diff": {:.3e}
  }},
  "das_{rows}x{cols}x{}ch": {{
    "before_ms": {:.4},
    "after_ms": {:.4},
    "speedup": {:.3},
    "max_rel_diff": {:.3e}
  }},
  "tof_{rows}x{cols}x{}ch": {{
    "before_ms": {:.4},
    "after_ms": {:.4},
    "speedup": {:.3},
    "max_rel_diff": {:.3e}
  }}
}}
"#,
        t_naive * 1e3,
        t_blocked * 1e3,
        t_naive / t_blocked,
        flops / t_naive / 1e9,
        flops / t_blocked / 1e9,
        matmul_diff,
        array.num_elements(),
        t_das_before * 1e3,
        t_das_after * 1e3,
        t_das_before / t_das_after,
        das_diff,
        array.num_elements(),
        t_tof_before * 1e3,
        t_tof_after * 1e3,
        t_tof_before / t_tof_after,
        tof_diff,
    );
    std::fs::write("BENCH_pr1.json", json).expect("write BENCH_pr1.json");
    println!("wrote BENCH_pr1.json");
}
