//! Regenerates Tables IV and V: resolution and contrast of the quantized Tiny-VBF under
//! every scheme (Float / 24 / 20 / 16 bits / Hybrid-1 / Hybrid-2), for both datasets.

use bench::{evaluation_config_from_env, format_quantized_quality};
use tiny_vbf::evaluation::{quantized_quality_table, train_models};
use ultrasound::picmus::PicmusKind;

fn main() {
    let config = evaluation_config_from_env();
    eprintln!("training Tiny-VBF…");
    let models = train_models(&config).expect("training failed");

    let simulation = quantized_quality_table(&models.tiny_vbf, &config, PicmusKind::InSilico).expect("in-silico evaluation failed");
    println!("{}", format_quantized_quality("Tables IV & V — Simulation (in-silico), quality vs quantization", &simulation));

    let phantom = quantized_quality_table(&models.tiny_vbf, &config, PicmusKind::InVitro).expect("in-vitro evaluation failed");
    println!("{}", format_quantized_quality("Tables IV & V — Phantom (in-vitro), quality vs quantization", &phantom));

    println!("Paper reference (Table IV, simulation): Float/24-bit 0.303/0.45 mm; 20-bit 0.310/0.45; hybrids 0.309/0.45");
    println!("Paper reference (Table V, simulation): Float 14.89/1.75/0.74; Hybrid-2 13.26/1.75/0.72");
}
