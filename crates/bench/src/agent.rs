//! Shared serving datapath of the scenario agent binaries.
//!
//! `serve_agent` (the single-process scenario server) and `shard_agent`
//! (one shard of the registry-coordinated topology) host the exact same
//! stack — stream specs, seeded frame pools, a `serve::router::Router`,
//! and a line-frame TCP data plane. This module is that shared stack, so
//! the two binaries differ only in topology: `serve_agent` listens and
//! serves, `shard_agent` additionally registers with the shard registry,
//! renews its heartbeat lease, and rejects requests for stream keys the
//! registry has (re)assigned elsewhere with `status:"wrong_epoch"`.
//!
//! Keeping one datapath is also what makes the failover acceptance check
//! meaningful: a surviving shard's responses must be bitwise identical to
//! the single-process router's for the same seeds, which holds trivially
//! when both run this very code. Responses carry an FNV-1a checksum of the
//! beamformed image (`"sum"`) so load agents can assert that identity
//! without shipping images over the wire.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use beamforming::plan::{FrameFormat, PlanCache};
use crate::harness::{synthetic_frame, ChaosSpec, ScenarioConfig};
use quantize::QuantScheme;
use runtime::json::Json;
use serve::router::{FaultPolicy, Router, StreamSpec};
use serve::{
    BatchConfig, ChaosBeamformer, ChaosSchedule, DegradeConfig, ServeError, ServeResult,
    TrySubmitError,
};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
use ultrasound::ChannelData;

/// Pre-synthesized frames per stream; requests index the pool by
/// `seed % FRAME_POOL`, keeping per-request work at one memcpy.
pub const FRAME_POOL: usize = 32;

/// Threads resolving response handles per connection. Handles resolve in
/// roughly dispatch order, so a small pool keeps up with the batcher.
pub const COMPLETION_THREADS: usize = 4;

/// How long an accepted data-plane connection may sit with no complete
/// request line before the server closes it as dead. Load agents
/// disconnect when done, so only a wedged or vanished peer ever idles
/// this long — without the cap, each one would leak a connection thread.
pub const CONNECTION_IDLE: Duration = Duration::from_secs(120);

/// Budget for writing one response line before the connection is declared
/// dead (a healthy loopback peer drains in microseconds).
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Prints a fatal protocol error line and exits (agent stdio protocol).
pub fn protocol_error(detail: &str) -> ! {
    let line = Json::obj([("event", Json::str("error")), ("detail", Json::str(detail))]);
    println!("{}", line.to_string_compact());
    std::process::exit(1);
}

/// Silences backtraces of injected chaos panics (they unwind with a
/// `chaos:` payload and are contained at the router's dispatch boundary)
/// so scenario stderr stays readable. Real panics keep the default hook.
pub fn install_chaos_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));
}

/// Builds the beamformer for a backend label. `chaos:` prefixes wrap the
/// inner backend in a fault-injecting [`ChaosBeamformer`] driven by the
/// scenario's schedule; quantized Tiny-VBF labels share one TOF plan cache
/// across schemes, as in `bench_pr5`.
pub fn build_backend(
    label: &str,
    spec: &StreamSpec,
    chaos: &Option<ChaosSpec>,
    shared_tof: &Arc<PlanCache>,
) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
    if let Some(inner) = label.strip_prefix("chaos:") {
        let Some(chaos) = chaos else {
            return Err(ServeError::Engine(format!("backend `{label}` needs a chaos schedule")));
        };
        let mut schedule = ChaosSchedule::seeded(chaos.seed);
        if chaos.panic_one_in > 0 {
            schedule = schedule.panic_one_in(chaos.panic_one_in);
        }
        if chaos.delay_one_in > 0 {
            schedule =
                schedule.delay_one_in(chaos.delay_one_in, Duration::from_millis(chaos.delay_ms));
        }
        let inner = build_backend(inner, spec, &None, shared_tof)?;
        return Ok(Arc::new(ChaosBeamformer::new(ArcBeamformer(inner), schedule)));
    }
    match label {
        "das" => Ok(Arc::new(DelayAndSum::default())),
        "das-planned" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
        _ => match QuantScheme::all().iter().find(|s| s.backend_label() == label) {
            Some(scheme) => {
                let config =
                    TinyVbfConfig::small().for_frame(spec.array.num_elements(), spec.grid.num_cols());
                let model = TinyVbf::new(&config)
                    .map_err(|e| ServeError::Engine(format!("building Tiny-VBF: {e}")))?;
                Ok(Arc::new(QuantizedTinyVbfBeamformer::with_tof_cache(
                    QuantizedTinyVbf::from_model(&model, *scheme),
                    Arc::clone(shared_tof),
                )))
            }
            None => Err(ServeError::Engine(format!("unknown backend `{label}`"))),
        },
    }
}

/// Adapter: [`ChaosBeamformer`] wraps a concrete `Beamformer` by value;
/// this lets it wrap the `Arc<dyn Beamformer>` the factory produces.
struct ArcBeamformer(Arc<dyn Beamformer + Send + Sync>);

impl Beamformer for ArcBeamformer {
    fn beamform(
        &self,
        frame: &ChannelData,
        array: &ultrasound::LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> beamforming::BeamformResult<IqImage> {
        self.0.beamform(frame, array, grid, sound_speed)
    }

    fn prepare(
        &self,
        array: &ultrasound::LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: &FrameFormat,
    ) {
        self.0.prepare(array, grid, sound_speed, frame);
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Maps a resolved request to its wire status.
pub fn status_of(result: &ServeResult<IqImage>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ServeError::DeadlineExceeded) => "expired",
        Err(ServeError::EnginePanicked { .. }) | Err(ServeError::WorkerDied) => "panicked",
        Err(_) => "error",
    }
}

/// FNV-1a over the image's interleaved `f32` bit patterns — the bitwise
/// determinism probe responses carry as `"sum"`. Two images checksum equal
/// iff every sample is bit-identical (modulo 64-bit FNV collisions, which
/// the failover acceptance test tolerates at ~2⁻⁶⁴).
pub fn image_checksum(image: &IqImage) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for value in image.to_interleaved() {
        for byte in value.to_bits().to_le_bytes() {
            hash = (hash ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// One spec + seeded frame pool per scenario stream. Pools are derived
/// from the scenario seed alone, so every process serving this scenario —
/// single-process server or any shard — holds bit-identical frames.
pub fn build_streams(config: &ScenarioConfig) -> (Vec<StreamSpec>, Vec<Vec<ChannelData>>) {
    let mut specs = Vec::with_capacity(config.streams.len());
    let mut pools = Vec::with_capacity(config.streams.len());
    for (index, stream) in config.streams.iter().enumerate() {
        let array = config.stream_array(index);
        let (rows, cols) = config.stream_grid_shape(index);
        let grid = ImagingGrid::for_array(&array, 5.0e-3, 15.0e-3, rows, cols);
        specs.push(StreamSpec {
            array: array.clone(),
            grid,
            sound_speed: 1540.0,
            backend: stream.backend.clone(),
        });
        let pool: Vec<ChannelData> = (0..FRAME_POOL)
            .map(|i| {
                let seed = config
                    .seed
                    .wrapping_add((index as u64) << 32)
                    .wrapping_add(i as u64);
                synthetic_frame(&array, config.num_samples, seed)
            })
            .collect();
        pools.push(pool);
    }
    (specs, pools)
}

/// Builds the scenario's router: chaos-aware backend factory, the
/// scenario's batch shape, the degradation ladder when configured, and the
/// idle-engine TTL ([`FaultPolicy::engine_ttl`]) when the scenario churns
/// streams.
pub fn build_router(config: &ScenarioConfig) -> Result<Router, String> {
    let chaos = config.chaos.clone();
    let shared_tof = Arc::new(PlanCache::new(4));
    let factory =
        move |spec: &StreamSpec| build_backend(&spec.backend, spec, &chaos, &shared_tof);
    let batch_config = BatchConfig {
        max_batch: config.max_batch,
        linger: Duration::from_micros(config.linger_us),
        queue_capacity: config.queue_capacity.unwrap_or(1024),
        ..BatchConfig::default()
    };
    let threads = (runtime::default_threads() / batch_config.workers.max(1)).max(1);
    let policy = FaultPolicy {
        engine_ttl: config.engine_ttl_ms.map(Duration::from_millis),
        ..FaultPolicy::default()
    };
    let degrade = config.degrade_ladder.as_ref().map(|ladder| {
        // Fast-reacting policy sized to second-scale scenarios: decide
        // every 8 requests, shift after one clean/dirty window.
        DegradeConfig {
            window: 8,
            cooldown_windows: 1,
            downshift_expiry_rate: 0.25,
            upshift_expiry_rate: 0.02,
            ..DegradeConfig::with_ladder(ladder.clone())
        }
    });
    Router::with_policies(batch_config, factory, threads, policy, degrade)
        .map_err(|e| format!("invalid router config: {e}"))
}

/// Warms (engine spawn + plan build) the given streams so the measured
/// window starts from a hot server.
pub fn warm_streams(
    router: &Router,
    specs: &[StreamSpec],
    pools: &[Vec<ChannelData>],
    indices: impl Iterator<Item = usize>,
) -> Result<(), String> {
    for index in indices {
        router
            .warm(&specs[index], &FrameFormat::of(&pools[index][0]))
            .map_err(|e| format!("warming `{}`: {e}", specs[index].backend))?;
    }
    Ok(())
}

/// The shard server's live view of its registry lease, shared between the
/// heartbeat thread (which writes it after every renew) and the data-plane
/// connections (which consult it per request).
#[derive(Clone)]
pub struct ShardView {
    /// Stream keys the registry currently assigns to this shard.
    pub assigned: Arc<Mutex<HashSet<String>>>,
    /// Epoch of the last renew/register — echoed on `wrong_epoch` replies.
    pub epoch: Arc<AtomicU64>,
}

impl ShardView {
    /// An empty view (nothing assigned, epoch 0).
    pub fn new() -> Self {
        Self { assigned: Arc::new(Mutex::new(HashSet::new())), epoch: Arc::new(AtomicU64::new(0)) }
    }

    /// Replaces the assigned-key set and epoch after a register/renew.
    pub fn update(&self, epoch: u64, assigned: impl IntoIterator<Item = String>) {
        *self.assigned.lock().expect("shard view") = assigned.into_iter().collect();
        self.epoch.store(epoch, Ordering::Release);
    }
}

impl Default for ShardView {
    fn default() -> Self {
        Self::new()
    }
}

/// Serves one load-agent connection until it disconnects or idles out: a
/// reader thread submits, [`COMPLETION_THREADS`] waiters resolve handles
/// and write responses (with the image checksum on success) through a
/// shared writer.
///
/// With a `shard_view`, requests whose `key` the registry no longer
/// assigns to this shard are answered `status:"wrong_epoch"` instead of
/// being served — the client's signal to refresh its routing table and
/// fail over.
///
/// With `shed_on_full`, submissions that find the router's queue at
/// capacity are refused immediately with `status:"shed"` (a typed,
/// accounted outcome) instead of blocking the reader thread — the fan-in
/// scenario's backpressure contract: overload must surface as data, not
/// as a hung socket.
pub fn serve_connection(
    stream: TcpStream,
    router: Arc<Router>,
    specs: Arc<Vec<StreamSpec>>,
    pools: Arc<Vec<Vec<ChannelData>>>,
    deadline: Option<Duration>,
    shard_view: Option<ShardView>,
    shed_on_full: bool,
) {
    // Satellite hardening: both socket directions are time-bounded, so a
    // dead or silent peer can never pin this connection's threads forever.
    let _ = stream.set_read_timeout(Some(CONNECTION_IDLE));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let reader = BufReader::new(stream.try_clone().expect("clone connection"));
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    let (tx, rx) = mpsc::channel::<(u64, serve::ResponseHandle<IqImage>)>();
    let rx = Arc::new(Mutex::new(rx));

    let waiters: Vec<_> = (0..COMPLETION_THREADS)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || loop {
                let next = rx.lock().expect("completion queue").recv();
                let Ok((id, handle)) = next else { break };
                let result = handle.wait();
                let mut pairs = vec![
                    ("id".to_string(), Json::num(id as f64)),
                    ("status".to_string(), Json::str(status_of(&result))),
                ];
                if let Ok(image) = &result {
                    pairs.push(("sum".to_string(), Json::str(image_checksum(image))));
                }
                let line = Json::Obj(pairs).to_string_compact();
                let mut writer = writer.lock().expect("response writer");
                if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
                    break; // agent went away; drain remaining handles silently
                }
            })
        })
        .collect();

    let mut lines = TimeoutLines { reader };
    while let Some(line) = lines.next_line() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(request) = Json::parse(trimmed) else { break };
        let (Some(id), Some(stream_idx), Some(seed)) = (
            request.get("id").and_then(Json::as_u64),
            request.get("stream").and_then(Json::as_usize),
            request.get("seed").and_then(Json::as_u64),
        ) else {
            break;
        };
        if stream_idx >= specs.len() {
            break;
        }
        if let Some(view) = &shard_view {
            let key = request.get("key").and_then(Json::as_str).unwrap_or("");
            let assigned = view.assigned.lock().expect("shard view").contains(key);
            if !assigned {
                // This shard no longer owns the key (or never did): tell
                // the client which world we live in and let it re-route.
                let line = Json::obj([
                    ("id", Json::num(id as f64)),
                    ("status", Json::str("wrong_epoch")),
                    ("epoch", Json::num(view.epoch.load(Ordering::Acquire) as f64)),
                ])
                .to_string_compact();
                let mut writer = writer.lock().expect("response writer");
                if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
                    break;
                }
                continue;
            }
        }
        let frame = pools[stream_idx][seed as usize % FRAME_POOL].clone();
        let submitted = match (deadline, shed_on_full) {
            (Some(d), false) => router.submit_with_deadline(&specs[stream_idx], frame, d),
            (None, false) => router.submit(&specs[stream_idx], frame),
            (Some(d), true) => router.try_submit_with_deadline(&specs[stream_idx], frame, d),
            (None, true) => router.try_submit(&specs[stream_idx], frame),
        };
        match submitted {
            Ok(handle) => {
                if tx.send((id, handle)).is_err() {
                    break;
                }
            }
            Err(e) => {
                // Queue full (shed mode) or shutting down: answer directly
                // so the agent can account for the request instead of
                // counting it lost.
                let status = match e {
                    TrySubmitError::Full(_) => "shed",
                    TrySubmitError::ShuttingDown(_) => "error",
                };
                let line = Json::obj([("id", Json::num(id as f64)), ("status", Json::str(status))])
                    .to_string_compact();
                let mut writer = writer.lock().expect("response writer");
                if writeln!(writer, "{line}").and_then(|_| writer.flush()).is_err() {
                    break;
                }
            }
        }
    }
    drop(tx);
    for waiter in waiters {
        let _ = waiter.join();
    }
}

/// `BufReader::read_line` with the socket timeout folded in: a timeout
/// with a partial line buffered keeps reading (the peer is mid-write); a
/// timeout on a line boundary means a fully idle peer — give up.
struct TimeoutLines {
    reader: BufReader<TcpStream>,
}

impl TimeoutLines {
    fn next_line(&mut self) -> Option<String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return None, // EOF
                Ok(_) => {
                    if line.ends_with('\n') {
                        return Some(line);
                    }
                    // A read can return before the newline; keep going.
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if line.is_empty() {
                        return None; // idle past CONNECTION_IDLE: dead peer
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }
}
