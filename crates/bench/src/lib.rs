//! Shared infrastructure for the table/figure regeneration binaries and the Criterion
//! benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1_contrast` | Table I (contrast, simulation + phantom) |
//! | `table2_resolution` | Table II (axial/lateral resolution) |
//! | `table3_schemes` | Table III (hybrid quantization bit widths) |
//! | `table4_5_quantized_quality` | Tables IV and V (quality vs quantization) |
//! | `table6_resources` | Table VI + Fig. 1(b) (FPGA resource utilization) |
//! | `gops_inference_time` | Section IV GOPs/frame and CPU inference-time comparison |
//! | `fig09_contrast_images` | Figs. 1(a), 9(a), 10 (B-mode cyst images) |
//! | `fig09b_lateral_profile` | Fig. 9(b) (lateral variation across a cyst) |
//! | `fig11_resolution_images` | Figs. 11 and 13 (B-mode point-target images) |
//! | `fig12_psf_insilico` | Fig. 12 (lateral PSFs, in-silico) |
//! | `fig14_psf_invitro` | Fig. 14 (lateral PSFs, in-vitro) |
//! | `fig15_quantized_images` | Fig. 15 (B-mode under quantization) |
//!
//! Each binary honours the `TINY_VBF_EVAL` environment variable: `test` selects the
//! seconds-scale smoke configuration, anything else (or unset) the reduced evaluation
//! configuration described in `DESIGN.md`.

pub mod agent;
pub mod compare;
pub mod harness;
pub mod report;
pub mod scenarios;

pub use report::*;
