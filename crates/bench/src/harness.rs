//! Process-spawning scenario benchmark harness.
//!
//! Every perf claim before this subsystem came from a one-off in-process
//! binary (`bench_pr1`–`bench_pr6`) with its own ad-hoc JSON schema — six
//! snapshots, no trajectory, nothing failing CI on a regression. The
//! harness replaces that with one declarative model:
//!
//! * [`ScenarioConfig`] — a scenario described as data: probe/grid shape,
//!   the stream mix (backend labels + weights), the offered-load model
//!   (closed-loop pipelining or open-loop Poisson arrivals via
//!   [`runtime::poisson`]), duration/warmup, deadlines, chaos injection
//!   (`serve::chaos`) and an optional degradation ladder,
//! * [`run_scenario`] — spawns **separate OS processes**: one `serve_agent`
//!   hosting the `serve::router::Router` behind a loopback TCP socket, and
//!   one or more `load_agent`s offering load and measuring client-side
//!   latency. Agents speak single-line JSON over stdio (control) and TCP
//!   (data); the harness merges their [`serve::LatencyHistogram`]s and
//!   success/expiry/panic counters and samples each process's max RSS from
//!   `/proc/self/status`,
//! * [`summary_json`] — one machine-readable `summary.json` per scenario
//!   under a stable versioned schema ([`SCHEMA_VERSION`]), the input to the
//!   `bench_compare` regression gate (see [`crate::compare`]).
//!
//! The protocol frames are deliberately tiny: a load-agent request carries
//! only `{id, stream, seed}` — the server synthesizes the RF frame from the
//! seed with the same deterministic LCG the per-PR benches used
//! ([`synthetic_frame`]), so the wire measures the serving datapath rather
//! than frame shipping, and any two runs of a scenario offer bit-identical
//! frames.

use runtime::json::Json;
use serve::LatencyHistogram;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

/// Version stamped into every `summary.json`; bump when the schema changes
/// shape (adding fields is backward compatible and does not bump it).
pub const SCHEMA_VERSION: u64 = 1;

/// How long the harness waits for one protocol line from an agent before
/// declaring the scenario hung.
const AGENT_LINE_TIMEOUT: Duration = Duration::from_secs(120);

/// Benchmark profile: `fast` is the CI smoke shape (seconds per scenario),
/// `full` the measurement shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small grids, short durations — the CI smoke-and-gate profile.
    Fast,
    /// Larger grids and durations for real measurements.
    Full,
}

impl Profile {
    /// Parses `"fast"` / `"full"`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "fast" => Ok(Self::Fast),
            "full" => Ok(Self::Full),
            other => Err(format!("unknown profile `{other}` (expected `fast` or `full`)")),
        }
    }

    /// The profile's name as written into reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Fast => "fast",
            Self::Full => "full",
        }
    }
}

/// One stream of a scenario's traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamLoad {
    /// Backend label the stream submits under. Labels the serve agent
    /// understands: `"das"`, `"das-planned"`, `"mvdr-planned"`,
    /// `"tiny-vbf"`, the quantized `"tiny-vbf-*"` scheme labels, and
    /// `"chaos:<inner>"` which wraps `<inner>` in a
    /// [`serve::ChaosBeamformer`] driven by [`ScenarioConfig::chaos`].
    pub backend: String,
    /// Relative share of offered requests routed to this stream.
    pub weight: u32,
    /// Receive-channel count override (defaults to
    /// [`ScenarioConfig::channels`]) — heterogeneous-probe scenarios.
    pub channels: Option<usize>,
    /// `(rows, cols)` grid override (defaults to the scenario grid).
    pub grid: Option<(usize, usize)>,
    /// Mid-run churn: the stream is only offered from this many ms into
    /// the run (`None` = from the start). Engines for late streams spin up
    /// under traffic rather than during warmup.
    pub active_from_ms: Option<u64>,
    /// Mid-run churn: the stream stops being offered after this many ms
    /// into the run (`None` = until the end). Combined with
    /// [`ScenarioConfig::engine_ttl_ms`], a retired stream's idle engine
    /// gets evicted while the rest of the mix keeps serving.
    pub active_until_ms: Option<u64>,
}

impl StreamLoad {
    /// A stream with weight 1, the scenario-default geometry, active for
    /// the whole run.
    pub fn new(backend: impl Into<String>) -> Self {
        Self {
            backend: backend.into(),
            weight: 1,
            channels: None,
            grid: None,
            active_from_ms: None,
            active_until_ms: None,
        }
    }

    /// Whether the stream is offered at `offset_ms` into the run.
    pub fn is_active_at(&self, offset_ms: u64) -> bool {
        offset_ms >= self.active_from_ms.unwrap_or(0)
            && offset_ms < self.active_until_ms.unwrap_or(u64::MAX)
    }
}

/// How load agents offer traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Closed loop: at most `inflight` requests outstanding per agent; a
    /// response frees the slot for the next request. Self-throttling —
    /// measures capacity, hides queueing collapse.
    ClosedLoop {
        /// Outstanding-request budget per agent (≥ 1).
        inflight: usize,
    },
    /// Open loop: requests sent at seeded Poisson arrival instants
    /// regardless of responses ([`runtime::poisson::PoissonArrivals`]).
    /// Exposes queueing collapse under overload.
    OpenLoopPoisson {
        /// Offered arrival rate per agent, in requests/second.
        rate_hz: f64,
    },
}

/// Deterministic fault-injection knobs applied to `"chaos:*"` backends
/// (forwarded to [`serve::ChaosSchedule::seeded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Inject a panic every `n`-th call (0 disables).
    pub panic_one_in: u64,
    /// Inject an added latency every `n`-th call (0 disables).
    pub delay_one_in: u64,
    /// The injected latency, in milliseconds.
    pub delay_ms: u64,
}

/// A declaratively-defined benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Scenario name (also the summary file stem): `[a-z0-9_]+`.
    pub name: String,
    /// Default receive-channel count of the synthetic probe.
    pub channels: usize,
    /// Default imaging-grid rows.
    pub grid_rows: usize,
    /// Default imaging-grid columns.
    pub grid_cols: usize,
    /// RF samples per channel in every synthetic frame.
    pub num_samples: usize,
    /// The traffic mix (at least one stream).
    pub streams: Vec<StreamLoad>,
    /// The offered-load model.
    pub load: LoadModel,
    /// Measured run length per agent (after warmup), in milliseconds.
    pub duration_ms: u64,
    /// Warmup span per agent: requests sent before this cutoff are served
    /// but excluded from the merged measurements.
    pub warmup_ms: u64,
    /// Per-request dispatch deadline (milliseconds); `None` disables.
    pub deadline_ms: Option<u64>,
    /// Number of load-agent processes.
    pub agents: usize,
    /// Scheduler `max_batch` of the serve agent's router.
    pub max_batch: usize,
    /// Scheduler linger of the serve agent's router, in microseconds.
    pub linger_us: u64,
    /// Fault-injection schedule for `"chaos:*"` backends.
    pub chaos: Option<ChaosSpec>,
    /// Optional degradation ladder (backend labels, best quality first);
    /// the serve agent builds the router with
    /// [`serve::DegradeConfig::with_ladder`] over it.
    pub degrade_ladder: Option<Vec<String>>,
    /// Base seed for frame synthesis and load scheduling; every derived
    /// per-agent seed is a pure function of this.
    pub seed: u64,
    /// Shard-server processes behind a registry (`0` = the single-process
    /// topology: one `serve_agent`, agents dial it directly). Sharded
    /// scenarios require a closed-loop load model and a per-call deadline.
    pub shards: usize,
    /// Heartbeat-lease TTL of the shard registry, in milliseconds.
    pub lease_ttl_ms: u64,
    /// Shard heartbeat (lease-renew) period, in milliseconds; must leave
    /// headroom under the TTL so one delayed renew does not evict a
    /// healthy shard.
    pub heartbeat_ms: u64,
    /// Chaos: SIGKILL the highest-indexed shard this many ms after the
    /// load agents start (requires at least two shards).
    pub kill_shard_at_ms: Option<u64>,
    /// Idle-engine TTL of the router(s) ([`serve::router::FaultPolicy`]),
    /// in milliseconds; `None` keeps engines forever. Drives the mid-run
    /// churn scenario's eviction half.
    pub engine_ttl_ms: Option<u64>,
    /// Router submission-queue capacity override; `None` keeps the serving
    /// default (1024). Small values make queue overflow reachable at bench
    /// scale, which is what the fan-in scenario measures.
    pub queue_capacity: Option<usize>,
    /// Shed instead of blocking when the submission queue is full: the
    /// server answers `status:"shed"` immediately (a typed, accounted
    /// refusal) rather than exerting backpressure through the socket.
    pub shed_on_full: bool,
}

impl ScenarioConfig {
    /// A closed-loop single-stream scenario with placeholder geometry —
    /// the starting point the named scenarios specialize.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            channels: 32,
            grid_rows: 16,
            grid_cols: 8,
            num_samples: 256,
            streams: vec![StreamLoad::new("das-planned")],
            load: LoadModel::ClosedLoop { inflight: 4 },
            duration_ms: 800,
            warmup_ms: 200,
            deadline_ms: None,
            agents: 1,
            max_batch: 8,
            linger_us: 200,
            chaos: None,
            degrade_ladder: None,
            seed: 2026,
            shards: 0,
            lease_ttl_ms: 250,
            heartbeat_ms: 60,
            kill_shard_at_ms: None,
            engine_ttl_ms: None,
            queue_capacity: None,
            shed_on_full: false,
        }
    }

    /// Validates the configuration, returning the first problem found.
    /// Rejected combinations include a zero duration, an empty stream set,
    /// zero-weight mixes, non-positive Poisson rates, and chaos labels
    /// without a chaos schedule.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(format!("scenario name `{}` must be non-empty [a-z0-9_]+", self.name));
        }
        if self.channels < 2 {
            return Err("probe needs at least 2 channels".into());
        }
        if self.grid_rows == 0 || self.grid_cols == 0 {
            return Err("grid must have at least one row and column".into());
        }
        if self.num_samples == 0 {
            return Err("frames need at least one RF sample".into());
        }
        if self.streams.is_empty() {
            return Err("scenario needs at least one stream (empty backend set)".into());
        }
        if self.streams.iter().all(|s| s.weight == 0) {
            return Err("at least one stream must have a non-zero weight".into());
        }
        if !self
            .streams
            .iter()
            .any(|s| s.weight > 0 && s.active_from_ms.is_none() && s.active_until_ms.is_none())
        {
            return Err(
                "at least one weighted stream must be active for the whole run \
                 (no activity window), or the offered mix can go empty"
                    .into(),
            );
        }
        for stream in &self.streams {
            if let (Some(from), Some(until)) = (stream.active_from_ms, stream.active_until_ms) {
                if from >= until {
                    return Err(format!(
                        "stream `{}` activity window [{from}, {until}) is empty",
                        stream.backend
                    ));
                }
            }
            if stream.backend.is_empty() {
                return Err("stream backend label must be non-empty".into());
            }
            if stream.channels.is_some_and(|c| c < 2) {
                return Err("per-stream channel override needs at least 2 channels".into());
            }
            if stream.grid.is_some_and(|(r, c)| r == 0 || c == 0) {
                return Err("per-stream grid override must be non-empty".into());
            }
            if stream.backend.starts_with("chaos:") && self.chaos.is_none() {
                return Err(format!(
                    "stream `{}` injects chaos but the scenario has no chaos schedule",
                    stream.backend
                ));
            }
        }
        if self.duration_ms == 0 {
            return Err("scenario duration must be non-zero".into());
        }
        if self.warmup_ms >= self.duration_ms {
            return Err("warmup must be shorter than the scenario duration".into());
        }
        if self.deadline_ms == Some(0) {
            return Err("a zero deadline would expire every request".into());
        }
        if self.agents == 0 {
            return Err("scenario needs at least one load agent".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        match &self.load {
            LoadModel::ClosedLoop { inflight } => {
                if *inflight == 0 {
                    return Err("closed-loop inflight budget must be at least 1".into());
                }
            }
            LoadModel::OpenLoopPoisson { rate_hz } => {
                if !rate_hz.is_finite() || *rate_hz <= 0.0 {
                    return Err(format!("Poisson rate must be finite and positive, got {rate_hz}"));
                }
            }
        }
        if let Some(ladder) = &self.degrade_ladder {
            if ladder.len() < 2 {
                return Err("a degradation ladder needs at least two rungs".into());
            }
            if ladder.iter().any(|l| l.starts_with("chaos:")) && self.chaos.is_none() {
                return Err("ladder injects chaos but the scenario has no chaos schedule".into());
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.panic_one_in == 0 && chaos.delay_one_in == 0 {
                return Err("chaos schedule enables neither panics nor delays".into());
            }
        }
        if self.engine_ttl_ms == Some(0) {
            return Err("a zero engine TTL would evict every engine instantly".into());
        }
        if self.queue_capacity == Some(0) {
            return Err("a zero queue capacity would shed or block every request".into());
        }
        if self.shards > 0 {
            if !matches!(self.load, LoadModel::ClosedLoop { .. }) {
                return Err("sharded scenarios require a closed-loop load model".into());
            }
            if self.deadline_ms.is_none() {
                return Err(
                    "sharded scenarios need a deadline (it bounds the client's retry loop)".into(),
                );
            }
            if self.lease_ttl_ms == 0 {
                return Err("lease TTL must be non-zero".into());
            }
            if self.heartbeat_ms == 0 || self.heartbeat_ms.saturating_mul(2) > self.lease_ttl_ms {
                return Err(format!(
                    "heartbeat ({} ms) must be non-zero and at most half the lease TTL ({} ms)",
                    self.heartbeat_ms, self.lease_ttl_ms
                ));
            }
        }
        if let Some(kill_at) = self.kill_shard_at_ms {
            if self.shards < 2 {
                return Err("killing a shard needs at least two shards (someone must survive)".into());
            }
            if kill_at >= self.duration_ms {
                return Err("kill_shard_at_ms must fall inside the offered window".into());
            }
        }
        Ok(())
    }

    /// The probe geometry of stream `index` (the scenario default with the
    /// stream's overrides applied).
    pub fn stream_array(&self, index: usize) -> LinearArray {
        let channels = self.streams[index].channels.unwrap_or(self.channels);
        LinearArray::small_test_array().with_num_elements(channels)
    }

    /// The `(rows, cols)` grid of stream `index`.
    pub fn stream_grid_shape(&self, index: usize) -> (usize, usize) {
        self.streams[index].grid.unwrap_or((self.grid_rows, self.grid_cols))
    }

    /// Encodes the scenario for the agent config line (and the `config`
    /// echo inside `summary.json`).
    pub fn to_json(&self) -> Json {
        let streams = self.streams.iter().map(|s| {
            let mut pairs = vec![
                ("backend".to_string(), Json::str(s.backend.clone())),
                ("weight".to_string(), Json::num(s.weight as f64)),
            ];
            if let Some(channels) = s.channels {
                pairs.push(("channels".to_string(), Json::num(channels as f64)));
            }
            if let Some((rows, cols)) = s.grid {
                pairs.push((
                    "grid".to_string(),
                    Json::arr([Json::num(rows as f64), Json::num(cols as f64)]),
                ));
            }
            if let Some(from) = s.active_from_ms {
                pairs.push(("active_from_ms".to_string(), Json::num(from as f64)));
            }
            if let Some(until) = s.active_until_ms {
                pairs.push(("active_until_ms".to_string(), Json::num(until as f64)));
            }
            Json::Obj(pairs)
        });
        let load = match &self.load {
            LoadModel::ClosedLoop { inflight } => Json::obj([
                ("model", Json::str("closed_loop")),
                ("inflight", Json::num(*inflight as f64)),
            ]),
            LoadModel::OpenLoopPoisson { rate_hz } => Json::obj([
                ("model", Json::str("open_loop_poisson")),
                ("rate_hz", Json::num(*rate_hz)),
            ]),
        };
        let mut pairs = vec![
            ("name".to_string(), Json::str(self.name.clone())),
            ("channels".to_string(), Json::num(self.channels as f64)),
            ("grid_rows".to_string(), Json::num(self.grid_rows as f64)),
            ("grid_cols".to_string(), Json::num(self.grid_cols as f64)),
            ("num_samples".to_string(), Json::num(self.num_samples as f64)),
            ("streams".to_string(), Json::arr(streams)),
            ("load".to_string(), load),
            ("duration_ms".to_string(), Json::num(self.duration_ms as f64)),
            ("warmup_ms".to_string(), Json::num(self.warmup_ms as f64)),
            (
                "deadline_ms".to_string(),
                self.deadline_ms.map_or(Json::Null, |d| Json::num(d as f64)),
            ),
            ("agents".to_string(), Json::num(self.agents as f64)),
            ("max_batch".to_string(), Json::num(self.max_batch as f64)),
            ("linger_us".to_string(), Json::num(self.linger_us as f64)),
            // Seeds are full-range u64; JSON numbers are f64 and lose
            // precision above 2^53, so seeds cross the wire as strings.
            ("seed".to_string(), Json::str(self.seed.to_string())),
            ("shards".to_string(), Json::num(self.shards as f64)),
            ("lease_ttl_ms".to_string(), Json::num(self.lease_ttl_ms as f64)),
            ("heartbeat_ms".to_string(), Json::num(self.heartbeat_ms as f64)),
        ];
        if let Some(kill_at) = self.kill_shard_at_ms {
            pairs.push(("kill_shard_at_ms".to_string(), Json::num(kill_at as f64)));
        }
        if let Some(ttl) = self.engine_ttl_ms {
            pairs.push(("engine_ttl_ms".to_string(), Json::num(ttl as f64)));
        }
        if let Some(capacity) = self.queue_capacity {
            pairs.push(("queue_capacity".to_string(), Json::num(capacity as f64)));
        }
        if self.shed_on_full {
            pairs.push(("shed_on_full".to_string(), Json::Bool(true)));
        }
        if let Some(chaos) = &self.chaos {
            pairs.push((
                "chaos".to_string(),
                Json::obj([
                    ("seed", Json::str(chaos.seed.to_string())),
                    ("panic_one_in", Json::num(chaos.panic_one_in as f64)),
                    ("delay_one_in", Json::num(chaos.delay_one_in as f64)),
                    ("delay_ms", Json::num(chaos.delay_ms as f64)),
                ]),
            ));
        }
        if let Some(ladder) = &self.degrade_ladder {
            pairs.push((
                "degrade_ladder".to_string(),
                Json::arr(ladder.iter().map(|l| Json::str(l.clone()))),
            ));
        }
        Json::Obj(pairs)
    }

    /// Decodes [`ScenarioConfig::to_json`] output and re-validates it.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        fn field<'a>(value: &'a Json, name: &str) -> Result<&'a Json, String> {
            value.get(name).ok_or_else(|| format!("scenario config: missing field `{name}`"))
        }
        fn usize_field(value: &Json, name: &str) -> Result<usize, String> {
            field(value, name)?
                .as_usize()
                .ok_or_else(|| format!("scenario config: field `{name}` must be an unsigned integer"))
        }
        fn u64_field(value: &Json, name: &str) -> Result<u64, String> {
            field(value, name)?
                .as_u64()
                .ok_or_else(|| format!("scenario config: field `{name}` must be an unsigned integer"))
        }
        fn seed_field(value: &Json, name: &str) -> Result<u64, String> {
            field(value, name)?
                .as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("scenario config: field `{name}` must be a decimal seed string"))
        }
        let streams = field(value, "streams")?
            .as_arr()
            .ok_or("scenario config: `streams` must be an array")?
            .iter()
            .map(|s| {
                Ok(StreamLoad {
                    backend: s
                        .get("backend")
                        .and_then(Json::as_str)
                        .ok_or("scenario config: stream without backend")?
                        .to_string(),
                    weight: u64_field(s, "weight")? as u32,
                    channels: match s.get("channels") {
                        Some(c) => Some(
                            c.as_usize().ok_or("scenario config: stream channels must be an integer")?,
                        ),
                        None => None,
                    },
                    grid: match s.get("grid").and_then(Json::as_arr) {
                        Some([rows, cols]) => Some((
                            rows.as_usize().ok_or("scenario config: grid rows must be an integer")?,
                            cols.as_usize().ok_or("scenario config: grid cols must be an integer")?,
                        )),
                        Some(_) => return Err("scenario config: grid override must be [rows, cols]".into()),
                        None => None,
                    },
                    active_from_ms: s.get("active_from_ms").and_then(Json::as_u64),
                    active_until_ms: s.get("active_until_ms").and_then(Json::as_u64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let load_value = field(value, "load")?;
        let load = match load_value.get("model").and_then(Json::as_str) {
            Some("closed_loop") => LoadModel::ClosedLoop { inflight: usize_field(load_value, "inflight")? },
            Some("open_loop_poisson") => LoadModel::OpenLoopPoisson {
                rate_hz: load_value
                    .get("rate_hz")
                    .and_then(Json::as_f64)
                    .ok_or("scenario config: Poisson load without rate_hz")?,
            },
            other => return Err(format!("scenario config: unknown load model {other:?}")),
        };
        let chaos = match value.get("chaos") {
            Some(c) if !c.is_null() => Some(ChaosSpec {
                seed: seed_field(c, "seed")?,
                panic_one_in: u64_field(c, "panic_one_in")?,
                delay_one_in: u64_field(c, "delay_one_in")?,
                delay_ms: u64_field(c, "delay_ms")?,
            }),
            _ => None,
        };
        let degrade_ladder = match value.get("degrade_ladder") {
            Some(l) if !l.is_null() => Some(
                l.as_arr()
                    .ok_or("scenario config: degrade_ladder must be an array")?
                    .iter()
                    .map(|r| {
                        r.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "scenario config: ladder rung must be a string".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            _ => None,
        };
        let config = Self {
            name: field(value, "name")?
                .as_str()
                .ok_or("scenario config: `name` must be a string")?
                .to_string(),
            channels: usize_field(value, "channels")?,
            grid_rows: usize_field(value, "grid_rows")?,
            grid_cols: usize_field(value, "grid_cols")?,
            num_samples: usize_field(value, "num_samples")?,
            streams,
            load,
            duration_ms: u64_field(value, "duration_ms")?,
            warmup_ms: u64_field(value, "warmup_ms")?,
            deadline_ms: match value.get("deadline_ms") {
                Some(Json::Null) | None => None,
                Some(d) => {
                    Some(d.as_u64().ok_or("scenario config: deadline_ms must be an integer or null")?)
                }
            },
            agents: usize_field(value, "agents")?,
            max_batch: usize_field(value, "max_batch")?,
            linger_us: u64_field(value, "linger_us")?,
            chaos,
            degrade_ladder,
            seed: seed_field(value, "seed")?,
            // Sharding fields default for pre-shard documents.
            shards: value.get("shards").and_then(Json::as_usize).unwrap_or(0),
            lease_ttl_ms: value.get("lease_ttl_ms").and_then(Json::as_u64).unwrap_or(250),
            heartbeat_ms: value.get("heartbeat_ms").and_then(Json::as_u64).unwrap_or(60),
            kill_shard_at_ms: value.get("kill_shard_at_ms").and_then(Json::as_u64),
            engine_ttl_ms: value.get("engine_ttl_ms").and_then(Json::as_u64),
            queue_capacity: value.get("queue_capacity").and_then(Json::as_usize),
            shed_on_full: value.get("shed_on_full").and_then(Json::as_bool).unwrap_or(false),
        };
        config.validate()?;
        Ok(config)
    }
}

/// Deterministic pseudo-random RF frame — the same LCG every per-PR bench
/// binary used, now shared: serving cost is independent of sample values,
/// so a cheap generator replaces the full simulator, and seeding makes the
/// offered frames bit-identical across runs and processes.
pub fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

/// Max resident-set size of the calling process in kilobytes, sampled from
/// the `VmHWM` line of `/proc/self/status`. `None` where the probe is
/// unavailable (non-Linux hosts).
pub fn max_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Per-agent measurement block parsed from a load agent's summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSummary {
    /// Agent index within the scenario.
    pub agent: usize,
    /// Requests sent in total, including warmup.
    pub sent: u64,
    /// Post-warmup requests (the measured set).
    pub measured: u64,
    /// Measured requests served successfully.
    pub ok: u64,
    /// Measured requests expired at their deadline.
    pub expired: u64,
    /// Measured requests lost to a contained engine panic.
    pub panicked: u64,
    /// Measured requests failing any other way (factory errors,
    /// quarantine, backpressure).
    pub errors: u64,
    /// Requests never answered before the drain grace expired (must be 0
    /// in a healthy run — the server resolves every accepted request).
    pub lost: u64,
    /// Retry attempts beyond each call's first (sharded mode; 0 when the
    /// agent dials the server directly).
    pub retries: u64,
    /// Calls that switched shards mid-flight (sharded mode).
    pub failovers: u64,
    /// Measured requests sent in the tail window (the final quarter of
    /// the measured span) — the post-recovery probe of failover scenarios.
    pub tail_measured: u64,
    /// Tail-window requests that succeeded.
    pub tail_ok: u64,
    /// Response checksum per `"stream:poolslot"` — the bitwise-determinism
    /// probe. A key whose checksum disagreed across responses maps to
    /// `"!conflict"`.
    pub checks: std::collections::BTreeMap<String, String>,
    /// Client-side submit→response latency of measured requests.
    pub latency: LatencyHistogram,
    /// Max RSS of the agent process, when the probe is available.
    pub rss_kb: Option<u64>,
    /// Wall-clock the agent spent offering + draining, in seconds.
    pub elapsed_s: f64,
}

impl AgentSummary {
    /// Encodes the agent's summary line payload.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("event", Json::str("summary")),
            ("agent", Json::num(self.agent as f64)),
            ("sent", Json::num(self.sent as f64)),
            ("measured", Json::num(self.measured as f64)),
            ("ok", Json::num(self.ok as f64)),
            ("expired", Json::num(self.expired as f64)),
            ("panicked", Json::num(self.panicked as f64)),
            ("errors", Json::num(self.errors as f64)),
            ("lost", Json::num(self.lost as f64)),
            ("retries", Json::num(self.retries as f64)),
            ("failovers", Json::num(self.failovers as f64)),
            ("tail_measured", Json::num(self.tail_measured as f64)),
            ("tail_ok", Json::num(self.tail_ok as f64)),
            (
                "checks",
                Json::Obj(
                    self.checks
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                        .collect(),
                ),
            ),
            ("latency", serve::wire::latency_to_json(&self.latency)),
            ("rss_kb", self.rss_kb.map_or(Json::Null, |r| Json::num(r as f64))),
            ("elapsed_s", Json::num(self.elapsed_s)),
        ])
    }

    /// Decodes [`AgentSummary::to_json`] output.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        fn counter(value: &Json, name: &str) -> Result<u64, String> {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("agent summary: missing counter `{name}`"))
        }
        Ok(Self {
            agent: value
                .get("agent")
                .and_then(Json::as_usize)
                .ok_or("agent summary: missing `agent`")?,
            sent: counter(value, "sent")?,
            measured: counter(value, "measured")?,
            ok: counter(value, "ok")?,
            expired: counter(value, "expired")?,
            panicked: counter(value, "panicked")?,
            errors: counter(value, "errors")?,
            lost: counter(value, "lost")?,
            retries: value.get("retries").and_then(Json::as_u64).unwrap_or(0),
            failovers: value.get("failovers").and_then(Json::as_u64).unwrap_or(0),
            tail_measured: value.get("tail_measured").and_then(Json::as_u64).unwrap_or(0),
            tail_ok: value.get("tail_ok").and_then(Json::as_u64).unwrap_or(0),
            checks: value
                .get("checks")
                .and_then(Json::as_obj)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                        .collect()
                })
                .unwrap_or_default(),
            latency: serve::wire::latency_from_json(
                value.get("latency").ok_or("agent summary: missing `latency`")?,
            )?,
            rss_kb: value.get("rss_kb").and_then(Json::as_u64),
            elapsed_s: value
                .get("elapsed_s")
                .and_then(Json::as_f64)
                .ok_or("agent summary: missing `elapsed_s`")?,
        })
    }
}

/// One shard process's endgame, as collected by the sharded scenario
/// runner.
#[derive(Debug, Clone)]
pub struct ShardProcessStats {
    /// Shard index within the scenario.
    pub shard: usize,
    /// Whether the chaos timer SIGKILLed this shard mid-window.
    pub killed: bool,
    /// Max RSS of the shard process (kB); `None` for a killed shard.
    pub rss_kb: Option<u64>,
    /// The shard's router counters; `None` for a killed shard (its stats
    /// died with it — which is the point of the exercise).
    pub router: Option<serve::RouterStatsWire>,
}

/// The merged outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario as run.
    pub config: ScenarioConfig,
    /// Profile the scenario was instantiated for.
    pub profile: String,
    /// Per-agent raw summaries, by agent index.
    pub agent_summaries: Vec<AgentSummary>,
    /// Lossless merge of every agent's latency histogram.
    pub latency: LatencyHistogram,
    /// Sum of the agents' `sent` counters.
    pub sent: u64,
    /// Sum of the agents' measured (post-warmup) request counters.
    pub measured: u64,
    /// Measured successes across agents.
    pub ok: u64,
    /// Measured deadline expiries across agents.
    pub expired: u64,
    /// Measured contained-panic failures across agents.
    pub panicked: u64,
    /// Other measured failures across agents.
    pub errors: u64,
    /// Requests unanswered at drain time across agents.
    pub lost: u64,
    /// Client-side retry attempts across agents (sharded runs).
    pub retries: u64,
    /// Client-side shard failovers across agents (sharded runs).
    pub failovers: u64,
    /// Measured requests offered in the tail window across agents.
    pub tail_measured: u64,
    /// Tail-window successes across agents.
    pub tail_ok: u64,
    /// Merged response checksums (`"stream:poolslot"` → FNV hash);
    /// disagreements across agents collapse to `"!conflict"`.
    pub checks: std::collections::BTreeMap<String, String>,
    /// Measured successes per second of measured window.
    pub throughput_rps: f64,
    /// Max RSS of the server process (kB), when the probe is available.
    pub server_rss_kb: Option<u64>,
    /// Largest load-agent max RSS (kB), when the probe is available.
    pub load_agent_rss_kb: Option<u64>,
    /// The server's own router counters, shipped over the stats line. In
    /// sharded runs this is the surviving shards' merge (counters summed,
    /// histograms merged, engine labels prefixed `s<shard>/`).
    pub router: serve::RouterStatsWire,
    /// Per-shard process stats (empty for single-process runs).
    pub shards: Vec<ShardProcessStats>,
    /// The registry's counters (sharded runs only): epoch, evictions,
    /// per-op counts.
    pub registry: Option<Json>,
    /// Wall-clock of the whole scenario (spawn → server exit), in seconds.
    pub elapsed_s: f64,
}

impl ScenarioOutcome {
    /// Measured success rate (`ok / measured`, 1.0 for an empty window so
    /// an idle control scenario does not read as an outage).
    pub fn success_rate(&self) -> f64 {
        if self.measured == 0 {
            1.0
        } else {
            self.ok as f64 / self.measured as f64
        }
    }

    /// Success rate over the tail window alone (the final quarter of the
    /// measured span). For a shard-kill scenario this is the *recovered*
    /// rate: the kill lands mid-window, so a topology that fails over
    /// shows a healthy tail even though the blackout dents the overall
    /// rate.
    pub fn tail_success_rate(&self) -> f64 {
        if self.tail_measured == 0 {
            1.0
        } else {
            self.tail_ok as f64 / self.tail_measured as f64
        }
    }
}

/// Resolves a sibling agent binary (`serve_agent`, `load_agent`): the
/// directory of the current executable, or its parent (tests run from
/// `target/<profile>/deps/`).
pub fn agent_bin_path(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let mut candidates = vec![dir.join(name)];
    if let Some(parent) = dir.parent() {
        candidates.push(parent.join(name));
    }
    candidates
        .iter()
        .find(|p| p.is_file())
        .cloned()
        .ok_or_else(|| format!("agent binary `{name}` not found next to {}", exe.display()))
}

/// A child's stdout pumped line-by-line through a channel, so every
/// protocol read can time out instead of hanging the harness on a wedged
/// agent.
struct LinePump {
    rx: mpsc::Receiver<std::io::Result<String>>,
}

impl LinePump {
    fn new(stdout: std::process::ChildStdout) -> Self {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                let failed = line.is_err();
                if tx.send(line).is_err() || failed {
                    break;
                }
            }
        });
        Self { rx }
    }

    fn next_line(&self, what: &str) -> Result<String, String> {
        match self.rx.recv_timeout(AGENT_LINE_TIMEOUT) {
            Ok(Ok(line)) => Ok(line),
            Ok(Err(e)) => Err(format!("reading {what}: {e}")),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(format!("timed out waiting for {what}")),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(format!("agent exited before sending {what}"))
            }
        }
    }

    /// Reads lines until one parses as a JSON object with `"event": what`.
    fn next_event(&self, what: &str) -> Result<Json, String> {
        loop {
            let line = self.next_line(what)?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let value = Json::parse(trimmed)
                .map_err(|e| format!("bad protocol line while waiting for {what}: {e} ({trimmed})"))?;
            match value.get("event").and_then(Json::as_str) {
                Some(event) if event == what => return Ok(value),
                Some("error") => {
                    let detail =
                        value.get("detail").and_then(Json::as_str).unwrap_or("unknown agent error");
                    return Err(format!("agent reported an error: {detail}"));
                }
                _ => continue,
            }
        }
    }
}

fn spawn_agent(path: &PathBuf, config_line: &str) -> Result<(Child, LinePump), String> {
    let mut child = Command::new(path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", path.display()))?;
    {
        let stdin = child.stdin.as_mut().ok_or("agent stdin not piped")?;
        stdin
            .write_all(config_line.as_bytes())
            .and_then(|_| stdin.write_all(b"\n"))
            .and_then(|_| stdin.flush())
            .map_err(|e| format!("writing agent config: {e}"))?;
    }
    let stdout = child.stdout.take().ok_or("agent stdout not piped")?;
    Ok((child, LinePump::new(stdout)))
}

fn reap(mut child: Child, what: &str) -> Result<(), String> {
    match child.wait() {
        Ok(status) if status.success() => Ok(()),
        Ok(status) => Err(format!("{what} exited with {status}")),
        Err(e) => Err(format!("waiting for {what}: {e}")),
    }
}

/// Load-agent summaries folded into scenario-wide totals.
struct MergedLoad {
    summaries: Vec<AgentSummary>,
    latency: LatencyHistogram,
    sent: u64,
    measured: u64,
    ok: u64,
    expired: u64,
    panicked: u64,
    errors: u64,
    lost: u64,
    retries: u64,
    failovers: u64,
    tail_measured: u64,
    tail_ok: u64,
    checks: std::collections::BTreeMap<String, String>,
    load_agent_rss_kb: Option<u64>,
}

fn merge_load(mut summaries: Vec<AgentSummary>) -> MergedLoad {
    summaries.sort_by_key(|s| s.agent);
    let mut merged = MergedLoad {
        summaries: Vec::new(),
        latency: LatencyHistogram::default(),
        sent: 0,
        measured: 0,
        ok: 0,
        expired: 0,
        panicked: 0,
        errors: 0,
        lost: 0,
        retries: 0,
        failovers: 0,
        tail_measured: 0,
        tail_ok: 0,
        checks: std::collections::BTreeMap::new(),
        load_agent_rss_kb: summaries.iter().filter_map(|s| s.rss_kb).max(),
    };
    for summary in &summaries {
        merged.latency.merge(&summary.latency);
        merged.sent += summary.sent;
        merged.measured += summary.measured;
        merged.ok += summary.ok;
        merged.expired += summary.expired;
        merged.panicked += summary.panicked;
        merged.errors += summary.errors;
        merged.lost += summary.lost;
        merged.retries += summary.retries;
        merged.failovers += summary.failovers;
        merged.tail_measured += summary.tail_measured;
        merged.tail_ok += summary.tail_ok;
        // Checksums are keyed by (stream, pool slot), which pins the input
        // frame bit-for-bit — every agent (and every serving process) must
        // therefore agree on the output.
        for (key, sum) in &summary.checks {
            match merged.checks.get(key) {
                None => {
                    merged.checks.insert(key.clone(), sum.clone());
                }
                Some(existing) if existing != sum => {
                    merged.checks.insert(key.clone(), "!conflict".to_string());
                }
                Some(_) => {}
            }
        }
    }
    merged.summaries = summaries;
    merged
}

/// Merges the surviving shards' router stats into one [`RouterStatsWire`]:
/// counters summed, latency histograms merged losslessly, engine and
/// degrade entries concatenated under `s<shard>/`-prefixed stream labels
/// so the per-shard breakdown survives the merge.
fn merge_router_stats(shards: &[ShardProcessStats]) -> serve::RouterStatsWire {
    let mut server: serve::ServerStats = Default::default();
    let mut engines = Vec::new();
    let mut degrade = Vec::new();
    let mut resilience: serve::ResilienceStats = Default::default();
    for stats in shards {
        let Some(wire) = &stats.router else { continue };
        server.submitted += wire.server.submitted;
        server.completed += wire.server.completed;
        server.batches += wire.server.batches;
        server.max_batch_observed = server.max_batch_observed.max(wire.server.max_batch_observed);
        server.deadline_expired += wire.server.deadline_expired;
        server.workers_respawned += wire.server.workers_respawned;
        server.latency.merge(&wire.server.latency);
        for engine in &wire.engines {
            let mut engine = engine.clone();
            engine.stream = format!("s{}/{}", stats.shard, engine.stream);
            engines.push(engine);
        }
        for entry in &wire.degrade {
            let mut entry = entry.clone();
            entry.stream = format!("s{}/{}", stats.shard, entry.stream);
            degrade.push(entry);
        }
        resilience.panics += wire.resilience.panics;
        resilience.retries += wire.resilience.retries;
        resilience.quarantined += wire.resilience.quarantined;
        resilience.quarantines += wire.resilience.quarantines;
        resilience.engines_evicted += wire.resilience.engines_evicted;
        resilience.workers_respawned += wire.resilience.workers_respawned;
    }
    serve::RouterStatsWire { server, engines, degrade, resilience }
}

/// Runs one scenario end-to-end. Single-process topology
/// (`config.shards == 0`): spawns the `serve_agent` and `config.agents`
/// load agents dialing it directly. Sharded topology: spawns the
/// `shard_registry`, `config.shards` shard servers and load agents that
/// route through `shard::ShardClient` — plus, when configured, a chaos
/// timer that SIGKILLs one shard mid-window. Either way, merges the
/// agents' measurements and collects server-side stats and RSS.
pub fn run_scenario(config: &ScenarioConfig, profile: Profile) -> Result<ScenarioOutcome, String> {
    config.validate()?;
    if config.shards > 0 {
        return run_sharded_scenario(config, profile);
    }
    let serve_bin = agent_bin_path("serve_agent")?;
    let load_bin = agent_bin_path("load_agent")?;
    let started = Instant::now();

    let config_json = config.to_json();
    let server_line = Json::obj([("scenario", config_json.clone())]).to_string_compact();
    let (mut server, server_pump) = spawn_agent(&serve_bin, &server_line)?;

    // Everything after the server is up must tear it down on error, or a
    // failed scenario leaks a listening process.
    let result = (|| {
        let ready = server_pump.next_event("ready")?;
        let port =
            ready.get("port").and_then(Json::as_u64).ok_or("ready line without a port")? as u16;

        let mut agents = Vec::with_capacity(config.agents);
        for agent_index in 0..config.agents {
            let line = Json::obj([
                ("scenario", config_json.clone()),
                ("port", Json::num(port as f64)),
                ("agent_index", Json::num(agent_index as f64)),
            ])
            .to_string_compact();
            agents.push(spawn_agent(&load_bin, &line)?);
        }

        let mut summaries = Vec::with_capacity(config.agents);
        for (child, pump) in agents {
            let summary = AgentSummary::from_json(&pump.next_event("summary")?)?;
            reap(child, "load_agent")?;
            summaries.push(summary);
        }
        summaries.sort_by_key(|s| s.agent);

        // Ask the server for its stats and let it exit.
        if let Some(stdin) = server.stdin.as_mut() {
            let _ = stdin.write_all(b"shutdown\n").and_then(|_| stdin.flush());
        }
        let stats_line = server_pump.next_event("stats")?;
        let router = serve::RouterStatsWire::from_json(
            stats_line.get("router").ok_or("stats line without router stats")?,
        )?;
        let server_rss_kb = stats_line.get("rss_kb").and_then(Json::as_u64);
        Ok((summaries, router, server_rss_kb))
    })();

    let (summaries, router, server_rss_kb) = match result {
        Ok(parts) => parts,
        Err(e) => {
            let _ = server.kill();
            let _ = server.wait();
            return Err(e);
        }
    };
    reap(server, "serve_agent")?;

    let merged = merge_load(summaries);
    let measured_window_s = (config.duration_ms - config.warmup_ms) as f64 / 1e3;
    Ok(outcome_from(config, profile, merged, router, server_rss_kb, measured_window_s, Vec::new(), None, started))
}

/// Assembles the outcome struct shared by both topologies.
#[allow(clippy::too_many_arguments)]
fn outcome_from(
    config: &ScenarioConfig,
    profile: Profile,
    merged: MergedLoad,
    router: serve::RouterStatsWire,
    server_rss_kb: Option<u64>,
    measured_window_s: f64,
    shards: Vec<ShardProcessStats>,
    registry: Option<Json>,
    started: Instant,
) -> ScenarioOutcome {
    ScenarioOutcome {
        config: config.clone(),
        profile: profile.name().to_string(),
        agent_summaries: merged.summaries,
        latency: merged.latency,
        sent: merged.sent,
        measured: merged.measured,
        ok: merged.ok,
        expired: merged.expired,
        panicked: merged.panicked,
        errors: merged.errors,
        lost: merged.lost,
        retries: merged.retries,
        failovers: merged.failovers,
        tail_measured: merged.tail_measured,
        tail_ok: merged.tail_ok,
        checks: merged.checks,
        throughput_rps: merged.ok as f64 / measured_window_s,
        server_rss_kb,
        load_agent_rss_kb: merged.load_agent_rss_kb,
        router,
        shards,
        registry,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// The sharded topology runner (see [`run_scenario`]). Spawn order
/// matters: the registry first (shards need its port), then every shard —
/// each waited for until it reports `ready`, i.e. *registered* — so the
/// routing table is complete before the first load agent dials in.
fn run_sharded_scenario(config: &ScenarioConfig, profile: Profile) -> Result<ScenarioOutcome, String> {
    let registry_bin = agent_bin_path("shard_registry")?;
    let shard_bin = agent_bin_path("shard_agent")?;
    let load_bin = agent_bin_path("load_agent")?;
    let started = Instant::now();
    let config_json = config.to_json();

    let registry_line =
        Json::obj([("lease_ttl_ms", Json::num(config.lease_ttl_ms as f64))]).to_string_compact();
    let (mut registry, registry_pump) = spawn_agent(&registry_bin, &registry_line)?;

    let mut shards: Vec<(Child, LinePump)> = Vec::new();
    let mut loads: Vec<(Child, LinePump)> = Vec::new();
    // The chaos timer holds only the victim's pid; on an error exit the
    // harness kills all children itself, and this flag keeps a late timer
    // from firing at a by-then-recycled pid.
    let disarm = Arc::new(AtomicBool::new(false));

    let result = (|| {
        let ready = registry_pump.next_event("ready")?;
        let registry_port =
            ready.get("port").and_then(Json::as_u64).ok_or("registry ready line without a port")?;

        for shard_index in 0..config.shards {
            let line = Json::obj([
                ("scenario", config_json.clone()),
                ("registry_port", Json::num(registry_port as f64)),
                ("shard_index", Json::num(shard_index as f64)),
            ])
            .to_string_compact();
            let (child, pump) = spawn_agent(&shard_bin, &line)?;
            pump.next_event("ready")?;
            shards.push((child, pump));
        }

        for agent_index in 0..config.agents {
            let line = Json::obj([
                ("scenario", config_json.clone()),
                ("registry_port", Json::num(registry_port as f64)),
                ("agent_index", Json::num(agent_index as f64)),
            ])
            .to_string_compact();
            loads.push(spawn_agent(&load_bin, &line)?);
        }

        let victim = config.shards - 1;
        if let Some(kill_at) = config.kill_shard_at_ms {
            let pid = shards[victim].0.id();
            let disarm = Arc::clone(&disarm);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(kill_at));
                if !disarm.load(std::sync::atomic::Ordering::Relaxed) {
                    // SIGKILL, not SIGTERM: the scenario models a crash, so
                    // the shard must get no chance to deregister cleanly.
                    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
                }
            });
        }

        let mut summaries = Vec::with_capacity(config.agents);
        for (child, pump) in loads.drain(..) {
            let summary = AgentSummary::from_json(&pump.next_event("summary")?)?;
            reap(child, "load_agent")?;
            summaries.push(summary);
        }

        let killed = config.kill_shard_at_ms.map(|_| victim);
        let mut shard_stats = Vec::with_capacity(config.shards);
        for (shard_index, (mut child, pump)) in shards.drain(..).enumerate() {
            if Some(shard_index) == killed {
                let _ = child.kill(); // no-op once the chaos timer has fired
                let _ = child.wait();
                shard_stats.push(ShardProcessStats {
                    shard: shard_index,
                    killed: true,
                    rss_kb: None,
                    router: None,
                });
                continue;
            }
            if let Some(stdin) = child.stdin.as_mut() {
                let _ = stdin.write_all(b"shutdown\n").and_then(|_| stdin.flush());
            }
            let stats_line = pump.next_event("stats")?;
            let router = serve::RouterStatsWire::from_json(
                stats_line.get("router").ok_or("shard stats line without router stats")?,
            )?;
            let rss_kb = stats_line.get("rss_kb").and_then(Json::as_u64);
            reap(child, "shard_agent")?;
            shard_stats.push(ShardProcessStats {
                shard: shard_index,
                killed: false,
                rss_kb,
                router: Some(router),
            });
        }

        if let Some(stdin) = registry.stdin.as_mut() {
            let _ = stdin.write_all(b"shutdown\n").and_then(|_| stdin.flush());
        }
        let registry_stats = registry_pump
            .next_event("stats")?
            .get("registry")
            .cloned()
            .ok_or("registry stats line without a registry object")?;
        Ok((summaries, shard_stats, registry_stats))
    })();

    let (summaries, shard_stats, registry_stats) = match result {
        Ok(parts) => parts,
        Err(e) => {
            disarm.store(true, std::sync::atomic::Ordering::Relaxed);
            for (mut child, _) in shards.drain(..).chain(loads.drain(..)) {
                let _ = child.kill();
                let _ = child.wait();
            }
            let _ = registry.kill();
            let _ = registry.wait();
            return Err(e);
        }
    };
    reap(registry, "shard_registry")?;

    let merged = merge_load(summaries);
    let router = merge_router_stats(&shard_stats);
    let server_rss_kb = shard_stats.iter().filter_map(|s| s.rss_kb).max();
    let measured_window_s = (config.duration_ms - config.warmup_ms) as f64 / 1e3;
    Ok(outcome_from(
        config,
        profile,
        merged,
        router,
        server_rss_kb,
        measured_window_s,
        shard_stats,
        Some(registry_stats),
        started,
    ))
}

/// Builds the stable `summary.json` document for one scenario outcome.
pub fn summary_json(outcome: &ScenarioOutcome) -> Json {
    let latency_us = Json::obj([
        ("p50", Json::num(outcome.latency.p50().as_micros() as f64)),
        ("p99", Json::num(outcome.latency.p99().as_micros() as f64)),
        ("mean", Json::num(outcome.latency.mean().as_micros() as f64)),
        ("count", Json::num(outcome.latency.count() as f64)),
    ]);
    let mut pairs: Vec<(String, Json)> = vec![
        ("schema_version".to_string(), Json::num(SCHEMA_VERSION as f64)),
        ("scenario".to_string(), Json::str(outcome.config.name.clone())),
        ("profile".to_string(), Json::str(outcome.profile.clone())),
        (
            "processes".to_string(),
            Json::obj([
                (
                    "server",
                    Json::num(if outcome.config.shards > 0 {
                        outcome.config.shards as f64
                    } else {
                        1.0
                    }),
                ),
                ("registry", Json::num(if outcome.config.shards > 0 { 1.0 } else { 0.0 })),
                ("load_agents", Json::num(outcome.config.agents as f64)),
            ]),
        ),
        ("config".to_string(), outcome.config.to_json()),
        (
            "requests".to_string(),
            Json::obj([
                ("sent", Json::num(outcome.sent as f64)),
                ("measured", Json::num(outcome.measured as f64)),
                ("ok", Json::num(outcome.ok as f64)),
                ("expired", Json::num(outcome.expired as f64)),
                ("panicked", Json::num(outcome.panicked as f64)),
                ("errors", Json::num(outcome.errors as f64)),
                ("lost", Json::num(outcome.lost as f64)),
            ]),
        ),
        (
            "client".to_string(),
            Json::obj([
                ("retries", Json::num(outcome.retries as f64)),
                ("failovers", Json::num(outcome.failovers as f64)),
            ]),
        ),
        (
            "tail".to_string(),
            Json::obj([
                ("measured", Json::num(outcome.tail_measured as f64)),
                ("ok", Json::num(outcome.tail_ok as f64)),
                ("success_rate", Json::num(outcome.tail_success_rate())),
            ]),
        ),
        (
            "checks".to_string(),
            Json::Obj(
                outcome.checks.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect(),
            ),
        ),
        ("latency_us".to_string(), latency_us),
        ("latency_histogram".to_string(), serve::wire::latency_to_json(&outcome.latency)),
        ("throughput_rps".to_string(), Json::num(outcome.throughput_rps)),
        ("success_rate".to_string(), Json::num(outcome.success_rate())),
        (
            "rss_kb".to_string(),
            Json::obj([
                ("server_max", outcome.server_rss_kb.map_or(Json::Null, |r| Json::num(r as f64))),
                (
                    "load_agent_max",
                    outcome.load_agent_rss_kb.map_or(Json::Null, |r| Json::num(r as f64)),
                ),
            ]),
        ),
        ("server".to_string(), outcome.router.to_json()),
    ];
    if !outcome.shards.is_empty() {
        pairs.push((
            "shards".to_string(),
            Json::arr(outcome.shards.iter().map(|s| {
                Json::obj([
                    ("shard", Json::num(s.shard as f64)),
                    ("killed", Json::Bool(s.killed)),
                    ("rss_kb", s.rss_kb.map_or(Json::Null, |r| Json::num(r as f64))),
                    ("router", s.router.as_ref().map_or(Json::Null, |r| r.to_json())),
                ])
            })),
        ));
    }
    if let Some(registry) = &outcome.registry {
        pairs.push(("registry".to_string(), registry.clone()));
    }
    pairs.push(("elapsed_s".to_string(), Json::num(outcome.elapsed_s)));
    Json::Obj(pairs)
}

/// Flattens the gate-relevant metrics out of a `summary.json` document —
/// the shared vocabulary of `BENCH_baseline.json`, `ci_tolerances.json`
/// and the `bench_compare` gate.
pub fn summary_metrics(summary: &Json) -> Vec<(String, f64)> {
    let mut metrics = Vec::new();
    let mut push = |name: &str, value: Option<f64>| {
        if let Some(v) = value {
            metrics.push((name.to_string(), v));
        }
    };
    let latency = summary.get("latency_us");
    push("p50_us", latency.and_then(|l| l.get("p50")).and_then(Json::as_f64));
    push("p99_us", latency.and_then(|l| l.get("p99")).and_then(Json::as_f64));
    push("mean_us", latency.and_then(|l| l.get("mean")).and_then(Json::as_f64));
    push("throughput_rps", summary.get("throughput_rps").and_then(Json::as_f64));
    push("success_rate", summary.get("success_rate").and_then(Json::as_f64));
    let requests = summary.get("requests");
    push("expired", requests.and_then(|r| r.get("expired")).and_then(Json::as_f64));
    push("panicked", requests.and_then(|r| r.get("panicked")).and_then(Json::as_f64));
    push("errors", requests.and_then(|r| r.get("errors")).and_then(Json::as_f64));
    push("lost", requests.and_then(|r| r.get("lost")).and_then(Json::as_f64));
    push(
        "server_rss_kb",
        summary.get("rss_kb").and_then(|r| r.get("server_max")).and_then(Json::as_f64),
    );
    let client = summary.get("client");
    push("retries", client.and_then(|c| c.get("retries")).and_then(Json::as_f64));
    push("failovers", client.and_then(|c| c.get("failovers")).and_then(Json::as_f64));
    push(
        "tail_success_rate",
        summary.get("tail").and_then(|t| t.get("success_rate")).and_then(Json::as_f64),
    );
    // Image-quality summaries (eval_quality) carry their gate metrics under
    // a `quality` object; flatten them into the shared vocabulary.
    let quality = summary.get("quality");
    push("cr_db", quality.and_then(|q| q.get("cr_db")).and_then(Json::as_f64));
    push("cnr", quality.and_then(|q| q.get("cnr")).and_then(Json::as_f64));
    push("gcnr", quality.and_then(|q| q.get("gcnr")).and_then(Json::as_f64));
    push("fwhm_mm", quality.and_then(|q| q.get("fwhm_mm")).and_then(Json::as_f64));
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_validates_and_round_trips() {
        let mut config = ScenarioConfig::named("round_trip");
        config.streams = vec![
            StreamLoad::new("das"),
            StreamLoad { weight: 3, channels: Some(16), grid: Some((24, 12)), ..StreamLoad::new("das-planned") },
            StreamLoad::new("chaos:das-planned"),
        ];
        config.chaos = Some(ChaosSpec { seed: 7, panic_one_in: 16, delay_one_in: 2, delay_ms: 5 });
        config.degrade_ladder = Some(vec!["chaos:das-planned".into(), "das-planned".into()]);
        config.deadline_ms = Some(25);
        config.load = LoadModel::OpenLoopPoisson { rate_hz: 123.5 };
        config.validate().expect("valid");
        let parsed = ScenarioConfig::from_json(&config.to_json()).expect("round trip");
        assert_eq!(parsed, config);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = ScenarioConfig::named("ok");
        base.validate().expect("base config is valid");
        let mut broken: Vec<(&str, ScenarioConfig)> = Vec::new();
        let mut with = |label, f: &dyn Fn(&mut ScenarioConfig)| {
            let mut c = base.clone();
            f(&mut c);
            broken.push((label, c));
        };
        with("zero duration", &|c| c.duration_ms = 0);
        with("warmup >= duration", &|c| c.warmup_ms = c.duration_ms);
        with("empty streams", &|c| c.streams.clear());
        with("all weights zero", &|c| c.streams[0].weight = 0);
        with("zero agents", &|c| c.agents = 0);
        with("zero max_batch", &|c| c.max_batch = 0);
        with("zero deadline", &|c| c.deadline_ms = Some(0));
        with("bad name", &|c| c.name = "No Spaces Allowed".into());
        with("zero inflight", &|c| c.load = LoadModel::ClosedLoop { inflight: 0 });
        with("zero rate", &|c| c.load = LoadModel::OpenLoopPoisson { rate_hz: 0.0 });
        with("nan rate", &|c| c.load = LoadModel::OpenLoopPoisson { rate_hz: f64::NAN });
        with("chaos label without schedule", &|c| c.streams[0].backend = "chaos:das".into());
        with("one-rung ladder", &|c| c.degrade_ladder = Some(vec!["das".into()]));
        with("zero engine ttl", &|c| c.engine_ttl_ms = Some(0));
        with("empty activity window", &|c| {
            c.streams.push(StreamLoad {
                active_from_ms: Some(300),
                active_until_ms: Some(300),
                ..StreamLoad::new("das")
            });
        });
        with("no always-active stream", &|c| {
            c.streams[0].active_from_ms = Some(100);
        });
        with("sharded without deadline", &|c| {
            c.shards = 2;
            c.deadline_ms = None;
        });
        with("sharded open loop", &|c| {
            c.shards = 2;
            c.deadline_ms = Some(200);
            c.load = LoadModel::OpenLoopPoisson { rate_hz: 50.0 };
        });
        with("heartbeat too close to ttl", &|c| {
            c.shards = 2;
            c.deadline_ms = Some(200);
            c.lease_ttl_ms = 100;
            c.heartbeat_ms = 80;
        });
        with("kill with one shard", &|c| {
            c.shards = 1;
            c.deadline_ms = Some(200);
            c.kill_shard_at_ms = Some(100);
        });
        with("kill outside the window", &|c| {
            c.shards = 2;
            c.deadline_ms = Some(200);
            c.kill_shard_at_ms = Some(c.duration_ms);
        });
        for (label, config) in broken {
            assert!(config.validate().is_err(), "{label} must be rejected");
        }
    }

    #[test]
    fn sharded_and_churn_configs_round_trip() {
        let mut config = ScenarioConfig::named("sharded_round_trip");
        config.streams = vec![
            StreamLoad::new("das-planned"),
            StreamLoad {
                active_from_ms: Some(200),
                active_until_ms: Some(600),
                ..StreamLoad::new("das")
            },
        ];
        config.shards = 2;
        config.deadline_ms = Some(400);
        config.lease_ttl_ms = 300;
        config.heartbeat_ms = 90;
        config.kill_shard_at_ms = Some(500);
        config.engine_ttl_ms = Some(150);
        config.validate().expect("valid");
        let parsed = ScenarioConfig::from_json(&config.to_json()).expect("round trip");
        assert_eq!(parsed, config);
    }

    #[test]
    fn stream_activity_windows_clip_the_offer() {
        let stream = StreamLoad {
            active_from_ms: Some(100),
            active_until_ms: Some(200),
            ..StreamLoad::new("das")
        };
        assert!(!stream.is_active_at(99));
        assert!(stream.is_active_at(100));
        assert!(stream.is_active_at(199));
        assert!(!stream.is_active_at(200));
        assert!(StreamLoad::new("das").is_active_at(0));
    }

    #[test]
    fn agent_summary_round_trips() {
        let mut latency = LatencyHistogram::default();
        for i in 0..50u64 {
            latency.record(Duration::from_micros(100 + i * 97));
        }
        let summary = AgentSummary {
            agent: 3,
            sent: 120,
            measured: 100,
            ok: 90,
            expired: 6,
            panicked: 3,
            errors: 1,
            lost: 0,
            retries: 4,
            failovers: 2,
            tail_measured: 25,
            tail_ok: 24,
            checks: [("0:3".to_string(), "00ff00ff00ff00ff".to_string())].into_iter().collect(),
            latency,
            rss_kb: Some(12345),
            elapsed_s: 1.25,
        };
        let parsed = AgentSummary::from_json(&summary.to_json()).expect("round trip");
        assert_eq!(parsed, summary);
    }

    #[test]
    fn synthetic_frames_are_deterministic() {
        let array = LinearArray::small_test_array();
        let a = synthetic_frame(&array, 128, 42);
        let b = synthetic_frame(&array, 128, 42);
        let c = synthetic_frame(&array, 128, 43);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = max_rss_kb().expect("VmHWM must parse on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn summary_metrics_cover_the_gate_vocabulary() {
        let outcome = ScenarioOutcome {
            config: ScenarioConfig::named("metrics"),
            profile: "fast".into(),
            agent_summaries: Vec::new(),
            latency: LatencyHistogram::default(),
            sent: 10,
            measured: 8,
            ok: 7,
            expired: 1,
            panicked: 0,
            errors: 0,
            lost: 0,
            retries: 3,
            failovers: 1,
            tail_measured: 2,
            tail_ok: 2,
            checks: std::collections::BTreeMap::new(),
            throughput_rps: 11.7,
            server_rss_kb: Some(4096),
            load_agent_rss_kb: Some(2048),
            router: serve::RouterStatsWire {
                server: Default::default(),
                engines: Vec::new(),
                degrade: Vec::new(),
                resilience: Default::default(),
            },
            shards: Vec::new(),
            registry: None,
            elapsed_s: 0.9,
        };
        let summary = summary_json(&outcome);
        assert_eq!(summary.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        let metrics = summary_metrics(&summary);
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "p50_us",
            "p99_us",
            "mean_us",
            "throughput_rps",
            "success_rate",
            "expired",
            "panicked",
            "lost",
            "retries",
            "failovers",
            "tail_success_rate",
            "server_rss_kb",
        ] {
            assert!(names.contains(&expected), "metric {expected} missing from {names:?}");
        }
        let lookup = |n: &str| metrics.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(lookup("success_rate"), 7.0 / 8.0);
        assert_eq!(lookup("tail_success_rate"), 1.0);
        assert_eq!(lookup("retries"), 3.0);
        assert_eq!(lookup("server_rss_kb"), 4096.0);
    }

    #[test]
    fn summary_metrics_flatten_quality_summaries() {
        // eval_quality summaries carry only a `quality` object; the gate
        // vocabulary must pick its four metrics up (and nothing else).
        let summary = Json::obj([
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("scenario", Json::str("quality_tiny-vbf-fx16")),
            ("profile", Json::str("fast")),
            (
                "quality",
                Json::obj([
                    ("cr_db", Json::num(11.5)),
                    ("cnr", Json::num(1.4)),
                    ("gcnr", Json::num(0.87)),
                    ("fwhm_mm", Json::num(0.62)),
                    ("sqnr_db", Json::num(64.0)),
                ]),
            ),
        ]);
        let metrics = summary_metrics(&summary);
        assert_eq!(
            metrics,
            vec![
                ("cr_db".to_string(), 11.5),
                ("cnr".to_string(), 1.4),
                ("gcnr".to_string(), 0.87),
                ("fwhm_mm".to_string(), 0.62),
            ]
        );
    }
}
