//! End-to-end quality evaluation: render every router backend over the
//! fast-profile phantom scenes, check the emitted profile's shape and determinism,
//! and calibrate a degrade ladder from it.

use evals::{calibrate, evaluate, EvalConfig, QualityProfile};
use runtime::json::Json;

#[test]
fn fast_evaluation_covers_all_six_backends_and_calibrates() {
    let profile = evaluate(&EvalConfig::fast()).expect("fast evaluation must succeed");

    // One rung per router backend, in catalogue order.
    let backends: Vec<&str> = profile.rungs.iter().map(|r| r.backend.as_str()).collect();
    assert_eq!(
        backends,
        vec![
            "tiny-vbf-fp",
            "tiny-vbf-fx24",
            "tiny-vbf-fx20",
            "tiny-vbf-fx16",
            "tiny-vbf-w8a20",
            "tiny-vbf-w8a16"
        ]
    );
    for rung in &profile.rungs {
        assert!(rung.cr_db.is_finite(), "{}: CR {:?}", rung.backend, rung.cr_db);
        assert!(rung.cnr.is_finite(), "{}: CNR {:?}", rung.backend, rung.cnr);
        assert!(
            (0.0..=1.0).contains(&rung.gcnr),
            "{}: gCNR {:?} outside [0, 1]",
            rung.backend,
            rung.gcnr
        );
    }
    // The float rung is exact: infinite SQNR; every quantized rung measures
    // a finite one.
    assert!(profile.rung("tiny-vbf-fp").unwrap().sqnr_db.is_infinite());
    for backend in ["tiny-vbf-fx24", "tiny-vbf-fx20", "tiny-vbf-fx16", "tiny-vbf-w8a20", "tiny-vbf-w8a16"]
    {
        let sqnr = profile.rung(backend).unwrap().sqnr_db;
        assert!(sqnr.is_finite() && sqnr > 0.0, "{backend}: SQNR {sqnr}");
    }

    // Wire form round-trips.
    let text = profile.to_json().to_string_pretty();
    let back = QualityProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, profile);

    // Calibration: a valid ladder over all six backends whose ordering
    // matches the measured quality scores, descending.
    let calibration = calibrate(&profile).expect("calibration from a measured profile");
    assert_eq!(calibration.degrade.ladders[0].len(), 6);
    assert!(calibration.degrade.validate().is_ok());
    let scores: Vec<f64> = calibration.costs.iter().map(|c| c.quality_score).collect();
    assert!(
        scores.windows(2).all(|w| w[0] >= w[1]),
        "ladder ordering must match measured quality: {scores:?}"
    );
    assert_eq!(calibration.costs[0].quality_cost, 0.0, "the head rung costs nothing");
    // The measured SQNR floor sits below every rung's own measurement, so a
    // freshly calibrated ladder never immediately trips its own floor.
    if let Some(floor) = calibration.degrade.sqnr_floor_db {
        for rung in &profile.rungs {
            assert!(rung.sqnr_db > floor, "{}: measured {} <= floor {floor}", rung.backend, rung.sqnr_db);
        }
    }
}

#[test]
fn evaluation_is_deterministic_for_a_fixed_seed() {
    let a = evaluate(&EvalConfig::fast()).unwrap();
    let b = evaluate(&EvalConfig::fast()).unwrap();
    assert_eq!(a, b, "same config, same seed: the profile must be bit-identical");
}
