//! Golden-image regression: every rung's rendered phantom frame is bitwise
//! pinned. A seeded, untrained Tiny-VBF model (weight init is fully
//! deterministic in the config seed) renders one tiny contrast scene
//! through each router backend — float plus the five integer rungs — and
//! the raw interleaved IQ pixels must match the committed goldens bit for
//! bit. Any change to the integer inference path (requantization order,
//! rounding mode, accumulator width) shows up here before it shows up as a
//! drifting quality metric.
//!
//! To bless new goldens after an *intentional* numerics change:
//! `BLESS_GOLDENS=1 cargo test -p evals --test golden_images`.

use beamforming::pipeline::Beamformer;
use beamforming::plan::PlanCache;
use quantize::QuantScheme;
use std::path::PathBuf;
use std::sync::Arc;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::evaluation::EvaluationConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
use ultrasound::picmus::PicmusKind;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("goldens")
}

/// One 8-hex-digit `f32::to_bits` word per line: bit-exact, diffable, and
/// byte-order independent.
fn encode(pixels: &[f32]) -> String {
    let mut out = String::with_capacity(pixels.len() * 9);
    for p in pixels {
        out.push_str(&format!("{:08x}\n", p.to_bits()));
    }
    out
}

#[test]
fn rendered_frames_match_committed_goldens_bit_for_bit() {
    // Tinier than the eval pass's fast profile: goldens pin numerics, not
    // image quality, so the grid only needs enough pixels to exercise the
    // whole pipeline.
    let eval = EvaluationConfig { grid_rows: 24, grid_cols: 16, ..EvaluationConfig::test_size() };
    let array = eval.array();
    let grid = eval.grid();
    let frame = eval.contrast_frame(PicmusKind::InSilico).expect("contrast scene");

    // Untrained but fully seeded: TinyVbf::new derives every weight from
    // the config seed, so the quantized rungs below are reproducible
    // without a (slow) training pass.
    let model_config = TinyVbfConfig::paper().for_frame(array.num_elements(), grid.num_cols());
    let model = TinyVbf::new(&model_config).expect("seeded model");

    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    let tof_plans = Arc::new(PlanCache::new(8));
    let mut blessed = Vec::new();
    for scheme in QuantScheme::all() {
        let backend = QuantizedTinyVbfBeamformer::with_tof_cache(
            QuantizedTinyVbf::from_model(&model, scheme),
            Arc::clone(&tof_plans),
        );
        let iq = backend
            .beamform(&frame.channel_data, &frame.array, &grid, eval.sound_speed)
            .expect("beamform");
        let rendered = encode(&iq.to_interleaved());

        let path = goldens_dir().join(format!("{}.hex", scheme.backend_label()));
        if bless {
            std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
            std::fs::write(&path, &rendered).expect("write golden");
            blessed.push(scheme.backend_label());
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with BLESS_GOLDENS=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            rendered,
            golden,
            "rung {} drifted from its golden image — if the numerics change \
             is intentional, re-bless with BLESS_GOLDENS=1",
            scheme.backend_label()
        );
    }
    assert!(!bless, "goldens blessed for {blessed:?} — rerun without BLESS_GOLDENS to verify");
}
