//! The evaluation pass: render every router backend over deterministic
//! phantom scenes and reduce each rung's images to the paper's metrics.

use crate::profile::{QualityProfile, RungQuality};
use beamforming::grid::ImagingGrid;
use beamforming::pipeline::Beamformer;
use beamforming::plan::PlanCache;
use quantize::QuantScheme;
use std::sync::Arc;
use tiny_vbf::config::TinyVbfConfig;
use tiny_vbf::evaluation::EvaluationConfig;
use tiny_vbf::model::TinyVbf;
use tiny_vbf::quantized::{QuantizedTinyVbf, QuantizedTinyVbfBeamformer};
use tiny_vbf::training::{build_training_set, train_tiny_vbf, TrainerConfig};
use tiny_vbf::{TinyVbfError, TinyVbfResult};
use ultrasound::dataset::TrainingSetConfig;
use ultrasound::picmus::{PicmusFrame, PicmusKind};
use ultrasound::LinearArray;
use usmetrics::region::CircularRoi;
use usmetrics::{contrast_metrics, resolution_metrics, ContrastMetrics, ResolutionMetrics};

/// Scale and seed of one evaluation run.
///
/// Wraps a [`EvaluationConfig`] (scene geometry, training schedule, seed)
/// with a profile label that travels into the emitted
/// [`QualityProfile`].
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Profile label recorded in the output (`fast` / `full`).
    pub label: String,
    /// Scene geometry, probe scale, seed and training schedule.
    pub eval: EvaluationConfig,
}

impl EvalConfig {
    /// CI-sized run: the core harness's test-size geometry with a training
    /// schedule just long enough that every rung's point-spread function
    /// actually localizes (a near-untrained model's lateral profile never
    /// drops below half maximum, which would leave FWHM undefined). Runs in
    /// a couple of seconds.
    pub fn fast() -> Self {
        let eval =
            EvaluationConfig { training_frames: 3, epochs: 24, ..EvaluationConfig::test_size() };
        Self { label: "fast".into(), eval }
    }

    /// Measurement-sized run: the reduced-scale geometry of the table
    /// regeneration harness (minutes), same deepened training schedule as
    /// [`EvalConfig::fast`].
    pub fn full() -> Self {
        let eval = EvaluationConfig { epochs: 24, ..EvaluationConfig::reduced() };
        Self { label: "full".into(), eval }
    }
}

/// Trains the Tiny-VBF model the rungs quantize, on MVDR targets at the
/// config's scale — the same pieces as `tiny_vbf::evaluation::train_models`
/// minus the CNN/FCNN baselines this pass never renders.
fn train_eval_model(
    eval: &EvaluationConfig,
    array: &LinearArray,
    grid: &ImagingGrid,
) -> TinyVbfResult<TinyVbf> {
    let frames = TrainingSetConfig {
        array: array.clone(),
        max_depth: eval.max_depth,
        speckle_density: 300.0 * eval.scale,
        max_cysts: 2,
        max_points: 3,
        degradation_probability: 0.25,
        seed: eval.seed,
        ..TrainingSetConfig::default()
    }
    .generate(eval.training_frames)?;
    let examples = build_training_set(&frames, array, grid, eval.sound_speed, &eval.mvdr)?;
    let model_config = TinyVbfConfig::paper().for_frame(array.num_elements(), grid.num_cols());
    let mut model = TinyVbf::new(&model_config)?;
    train_tiny_vbf(&mut model, &examples, &TrainerConfig::quick(eval.epochs));
    Ok(model)
}

/// Cysts of `frame` fully inside the grid's depth view.
fn cysts_in_view(frame: &PicmusFrame, grid: &ImagingGrid) -> Vec<CircularRoi> {
    frame
        .cysts()
        .iter()
        .filter(|c| c.cz - c.radius > grid.z(0) && c.cz + c.radius < grid.z(grid.num_rows() - 1))
        .map(|c| CircularRoi::new(c.cx, c.cz, c.radius))
        .collect()
}

/// Near-axis point targets of `frame` inside the grid's depth view.
fn central_targets_in_view(frame: &PicmusFrame, grid: &ImagingGrid) -> Vec<(f32, f32)> {
    frame
        .point_targets()
        .iter()
        .filter(|p| {
            p.x.abs() < 0.5e-3 && p.z > grid.z(0) + 1e-3 && p.z < grid.z(grid.num_rows() - 1) - 1e-3
        })
        .map(|p| (p.x, p.z))
        .collect()
}

/// Renders every router backend (float + the five Table III fixed-point
/// rungs) over the evaluation scenes and measures each rung's image
/// quality.
///
/// Scenes: the PICMUS-style contrast phantom in both in-silico and
/// in-vitro acquisition (anechoic cysts in speckle, the in-vitro variant
/// passed through `ultrasound::invitro`'s degradation model) and the
/// in-silico resolution phantom (point-target lattice). Each rung renders
/// through [`QuantizedTinyVbfBeamformer`] — the exact adapter the router
/// serves with — and all six share one ToF [`PlanCache`], mirroring the
/// serving configuration where one plan build feeds every engine.
///
/// # Errors
///
/// Propagates simulator/beamforming/metric errors, and reports
/// [`TinyVbfError::InvalidConfig`] when the configured scenes leave no cyst
/// or no point target inside the grid view (a profile measured on nothing
/// must not gate anything).
pub fn evaluate(config: &EvalConfig) -> TinyVbfResult<QualityProfile> {
    let eval = &config.eval;
    let array = eval.array();
    let grid = eval.grid();
    let model = train_eval_model(eval, &array, &grid)?;

    let contrast_scenes =
        [eval.contrast_frame(PicmusKind::InSilico)?, eval.contrast_frame(PicmusKind::InVitro)?];
    let resolution_scene = eval.resolution_frame(PicmusKind::InSilico)?;
    let targets = central_targets_in_view(&resolution_scene, &grid);
    if targets.is_empty() {
        return Err(TinyVbfError::InvalidConfig(
            "no central point target falls inside the evaluation grid".into(),
        ));
    }
    if contrast_scenes.iter().any(|f| cysts_in_view(f, &grid).is_empty()) {
        return Err(TinyVbfError::InvalidConfig(
            "a contrast scene has no cyst inside the evaluation grid".into(),
        ));
    }

    let tof_plans = Arc::new(PlanCache::new(8));
    let mut rungs = Vec::new();
    for scheme in QuantScheme::all() {
        let scheme_name = scheme.name;
        let backend_label = scheme.backend_label();
        let backend = QuantizedTinyVbfBeamformer::with_tof_cache(
            QuantizedTinyVbf::from_model(&model, scheme),
            Arc::clone(&tof_plans),
        );

        let mut per_cyst = Vec::new();
        for frame in &contrast_scenes {
            let iq = backend.beamform(&frame.channel_data, &frame.array, &grid, eval.sound_speed)?;
            let envelope = iq.envelope();
            for cyst in cysts_in_view(frame, &grid) {
                per_cyst.push(contrast_metrics(&envelope, &grid, cyst)?);
            }
        }
        let contrast = ContrastMetrics::mean_of(&per_cyst)
            .expect("cyst list checked non-empty before the rung loop");

        let iq = backend.beamform(
            &resolution_scene.channel_data,
            &resolution_scene.array,
            &grid,
            eval.sound_speed,
        )?;
        let envelope = iq.envelope();
        // A rung whose image has lost a target's peak yields a metric error
        // for that target; the mean covers whichever targets survived. A
        // rung that resolves *no* target reports NaN — visible in the
        // profile rather than silently absent.
        let per_target: Vec<ResolutionMetrics> = targets
            .iter()
            .filter_map(|&(x, z)| resolution_metrics(&envelope, &grid, x, z).ok())
            .collect();
        let resolution = ResolutionMetrics::mean_of(&per_target)
            .unwrap_or(ResolutionMetrics { axial_mm: f32::NAN, lateral_mm: f32::NAN });

        rungs.push(RungQuality {
            backend: backend_label.to_string(),
            scheme: scheme_name.to_string(),
            cr_db: f64::from(contrast.cr_db),
            cnr: f64::from(contrast.cnr),
            gcnr: f64::from(contrast.gcnr),
            axial_mm: f64::from(resolution.axial_mm),
            lateral_mm: f64::from(resolution.lateral_mm),
            fwhm_mm: f64::from((resolution.axial_mm + resolution.lateral_mm) / 2.0),
            sqnr_db: backend.quality_stats().sqnr_db(),
        });
    }

    Ok(QualityProfile {
        profile: config.label.clone(),
        seed: eval.seed,
        channels: array.num_elements(),
        grid_rows: grid.num_rows(),
        grid_cols: grid.num_cols(),
        rungs,
    })
}
