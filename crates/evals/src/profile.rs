//! The [`QualityProfile`] document: measured per-rung image quality with a
//! stable JSON schema.
//!
//! This is the contract between the offline evaluation pass, the committed
//! `QUALITY_baseline.json` gate, and the calibration consumer — field names
//! and nesting are part of the schema and only change with
//! [`PROFILE_SCHEMA_VERSION`].

use runtime::json::Json;

/// Schema version of the [`QualityProfile`] wire form.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Measured image quality of one router backend rung.
///
/// Contrast metrics are means over every evaluated cyst of the contrast
/// scenes (in-silico and in-vitro); resolution metrics are means over the
/// central point targets of the resolution scene. `sqnr_db` is read from
/// the serving adapter's own quality counters after rendering —
/// `f64::INFINITY` for the exact float backend (serialized as JSON `null`,
/// parsed back to `+inf`).
#[derive(Debug, Clone, PartialEq)]
pub struct RungQuality {
    /// Router backend label (e.g. `tiny-vbf-fx16`).
    pub backend: String,
    /// Paper scheme name (e.g. `16 bits`).
    pub scheme: String,
    /// Contrast ratio in dB, higher is better.
    pub cr_db: f64,
    /// Contrast-to-noise ratio, higher is better.
    pub cnr: f64,
    /// Generalized CNR in `[0, 1]`, higher is better.
    pub gcnr: f64,
    /// Axial full-width-half-maximum in mm, lower is better.
    pub axial_mm: f64,
    /// Lateral full-width-half-maximum in mm, lower is better.
    pub lateral_mm: f64,
    /// Condensed FWHM scalar (mean of axial and lateral), the gate metric.
    pub fwhm_mm: f64,
    /// Measured signal-to-quantization-noise ratio in dB.
    pub sqnr_db: f64,
}

impl RungQuality {
    fn to_json(&self) -> Json {
        Json::obj([
            ("backend", Json::str(&self.backend)),
            ("scheme", Json::str(&self.scheme)),
            ("cr_db", Json::num(self.cr_db)),
            ("cnr", Json::num(self.cnr)),
            ("gcnr", Json::num(self.gcnr)),
            ("axial_mm", Json::num(self.axial_mm)),
            ("lateral_mm", Json::num(self.lateral_mm)),
            ("fwhm_mm", Json::num(self.fwhm_mm)),
            // `Json::num` maps non-finite to `null`; the float rung's
            // infinite SQNR round-trips through that path.
            ("sqnr_db", Json::num(self.sqnr_db)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let field = |key: &str| -> Result<f64, String> {
            match value.get(key) {
                // Absent or null numeric fields read back as +inf (the only
                // non-finite value the serializer can have dropped).
                None => Err(format!("rung is missing `{key}`")),
                Some(v) if v.is_null() => Ok(f64::INFINITY),
                Some(v) => v.as_f64().ok_or_else(|| format!("rung `{key}` must be a number")),
            }
        };
        Ok(Self {
            backend: value
                .get("backend")
                .and_then(Json::as_str)
                .ok_or("rung is missing `backend`")?
                .to_string(),
            scheme: value
                .get("scheme")
                .and_then(Json::as_str)
                .ok_or("rung is missing `scheme`")?
                .to_string(),
            cr_db: field("cr_db")?,
            cnr: field("cnr")?,
            gcnr: field("gcnr")?,
            axial_mm: field("axial_mm")?,
            lateral_mm: field("lateral_mm")?,
            fwhm_mm: field("fwhm_mm")?,
            sqnr_db: field("sqnr_db")?,
        })
    }
}

/// The full evaluation result: one [`RungQuality`] per router backend, in
/// ladder-catalogue order (`QuantScheme::all()`), plus the scene geometry
/// that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityProfile {
    /// Evaluation profile label (`fast` / `full`).
    pub profile: String,
    /// Base RNG seed every scene and the trained model derive from.
    pub seed: u64,
    /// Probe channel count of the evaluation scenes.
    pub channels: usize,
    /// Reconstruction-grid rows.
    pub grid_rows: usize,
    /// Reconstruction-grid columns.
    pub grid_cols: usize,
    /// Per-rung measurements, one per router backend.
    pub rungs: Vec<RungQuality>,
}

impl QualityProfile {
    /// The stable wire form (see module docs).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::num(PROFILE_SCHEMA_VERSION as f64)),
            ("kind", Json::str("quality_profile")),
            ("profile", Json::str(&self.profile)),
            ("seed", Json::num(self.seed as f64)),
            ("channels", Json::num(self.channels as f64)),
            (
                "grid",
                Json::obj([
                    ("rows", Json::num(self.grid_rows as f64)),
                    ("cols", Json::num(self.grid_cols as f64)),
                ]),
            ),
            ("rungs", Json::arr(self.rungs.iter().map(RungQuality::to_json))),
        ])
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped field, or a schema
    /// version this library does not understand.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        match value.get("schema_version").and_then(Json::as_u64) {
            Some(PROFILE_SCHEMA_VERSION) => {}
            Some(other) => {
                return Err(format!(
                    "quality profile schema v{other} does not match this library (v{PROFILE_SCHEMA_VERSION})"
                ))
            }
            None => return Err("quality profile is missing `schema_version`".into()),
        }
        let grid = value.get("grid").ok_or("quality profile is missing `grid`")?;
        let rungs = value
            .get("rungs")
            .and_then(Json::as_arr)
            .ok_or("quality profile is missing `rungs`")?
            .iter()
            .map(RungQuality::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            profile: value
                .get("profile")
                .and_then(Json::as_str)
                .ok_or("quality profile is missing `profile`")?
                .to_string(),
            seed: value.get("seed").and_then(Json::as_u64).ok_or("quality profile is missing `seed`")?,
            channels: value
                .get("channels")
                .and_then(Json::as_usize)
                .ok_or("quality profile is missing `channels`")?,
            grid_rows: grid.get("rows").and_then(Json::as_usize).ok_or("grid is missing `rows`")?,
            grid_cols: grid.get("cols").and_then(Json::as_usize).ok_or("grid is missing `cols`")?,
            rungs,
        })
    }

    /// The rung measured for `backend`, if any.
    pub fn rung(&self, backend: &str) -> Option<&RungQuality> {
        self.rungs.iter().find(|r| r.backend == backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_profile() -> QualityProfile {
        let rung = |backend: &str, scheme: &str, q: f64, sqnr: f64| RungQuality {
            backend: backend.into(),
            scheme: scheme.into(),
            cr_db: 10.0 * q,
            cnr: 1.5 * q,
            gcnr: 0.9 * q,
            axial_mm: 0.8 / q,
            lateral_mm: 1.2 / q,
            fwhm_mm: 1.0 / q,
            sqnr_db: sqnr,
        };
        QualityProfile {
            profile: "tiny".into(),
            seed: 7,
            channels: 16,
            grid_rows: 40,
            grid_cols: 16,
            rungs: vec![
                rung("tiny-vbf-fp", "Float", 1.0, f64::INFINITY),
                rung("tiny-vbf-fx24", "24 bits", 0.99, 113.0),
                rung("tiny-vbf-fx16", "16 bits", 0.80, 64.0),
            ],
        }
    }

    #[test]
    fn wire_form_round_trips_including_infinite_sqnr() {
        let profile = sample_profile();
        let text = profile.to_json().to_string_pretty();
        let back = QualityProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, profile);
        assert!(back.rung("tiny-vbf-fp").unwrap().sqnr_db.is_infinite());
    }

    #[test]
    fn schema_is_stable() {
        // Field names are a wire contract: renaming one must fail this test.
        let json = sample_profile().to_json();
        assert_eq!(json.get("schema_version").and_then(Json::as_u64), Some(PROFILE_SCHEMA_VERSION));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("quality_profile"));
        let rung = &json.get("rungs").and_then(Json::as_arr).unwrap()[0];
        for key in
            ["backend", "scheme", "cr_db", "cnr", "gcnr", "axial_mm", "lateral_mm", "fwhm_mm", "sqnr_db"]
        {
            assert!(rung.get(key).is_some(), "rung field `{key}` missing from the wire form");
        }
    }

    #[test]
    fn version_and_field_errors_are_typed() {
        let mut json = sample_profile().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::num(99.0);
        }
        assert!(QualityProfile::from_json(&json).unwrap_err().contains("schema v99"));
        assert!(QualityProfile::from_json(&Json::obj([("schema_version", Json::num(1.0))]))
            .unwrap_err()
            .contains("missing"));
    }
}
