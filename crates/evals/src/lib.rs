//! Offline image-quality evaluation and degrade-ladder calibration.
//!
//! The serving stack's graceful-degradation ladder (`serve::degrade`)
//! trades image precision for latency, but until this crate it picked its
//! rung ordering and quality floor from the SQNR *proxy* alone. The paper's
//! Tables I–V judge beamformers the way sonographers do — contrast
//! (CR/CNR/gCNR) on anechoic-cyst phantoms and axial/lateral FWHM on point
//! targets — so this crate closes the loop with ground truth:
//!
//! 1. [`evaluate`] renders deterministic cyst/point-target phantom scenes
//!    (the PICMUS-style in-silico and in-vitro acquisitions of
//!    `ultrasound::picmus`, which build on `ultrasound::phantom` and the
//!    `ultrasound::invitro` degradation model) through **every router
//!    backend** — float plus all five Table III fixed-point rungs — via the
//!    same [`QuantizedTinyVbfBeamformer`] adapter the router serves with,
//!    sharing one ToF plan cache across the rungs exactly like serving
//!    does. Each rung's image is reduced to CR/CNR/gCNR and FWHM by
//!    `crates/metrics`, and its measured SQNR is read from the serving
//!    adapter's own quality counters.
//! 2. The result is a [`QualityProfile`] — a stable-schema JSON document
//!    mapping each rung to its measured image degradation. The
//!    `eval_quality` bench binary emits it plus one gate summary per rung,
//!    and CI diffs those against the committed `QUALITY_baseline.json`.
//! 3. [`calibrate`] condenses the profile into per-rung quality scores and
//!    hands them to [`serve::DegradeConfig::from_quality_profile`], so the
//!    ladder ordering, `sqnr_floor_db` and per-rung quality cost come from
//!    measured image quality instead of hand-picked constants.
//!
//! Everything is seed-deterministic: the same [`EvalConfig`] produces the
//! same frames, the same trained model, and bit-identical rung images
//! (asserted per rung by `tests/golden_images.rs`).
//!
//! [`QuantizedTinyVbfBeamformer`]: tiny_vbf::quantized::QuantizedTinyVbfBeamformer

#![deny(missing_docs)]

mod calibrate;
mod evaluate;
mod profile;

pub use calibrate::{calibrate, quality_scores, Calibration, RungCost};
pub use evaluate::{evaluate, EvalConfig};
pub use profile::{QualityProfile, RungQuality, PROFILE_SCHEMA_VERSION};
