//! The calibration pass: condense a [`QualityProfile`] into per-rung
//! quality scores and derive a measured [`DegradeConfig`] from them.

use crate::profile::QualityProfile;
use runtime::json::Json;
use serve::{DegradeConfig, RungMeasurement, ServeError, ServeResult};

/// One rung's condensed score and its quality cost relative to the best
/// measured rung — the "price list" the degrade ladder trades against
/// latency.
#[derive(Debug, Clone, PartialEq)]
pub struct RungCost {
    /// Router backend label.
    pub backend: String,
    /// Condensed quality score in `[0, 1]`, higher is better.
    pub quality_score: f64,
    /// `best_score − quality_score`: how much measured image quality a
    /// downshift to this rung gives up. Zero for the ladder head.
    pub quality_cost: f64,
}

/// A calibrated degradation policy plus the measurements that justify it.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The derived policy: ladder ordered by measured quality, SQNR floor
    /// set from the worst rung's measured SQNR.
    pub degrade: DegradeConfig,
    /// Per-rung scores and costs, in ladder order (best first).
    pub costs: Vec<RungCost>,
}

impl Calibration {
    /// JSON artifact written next to the profile (`QUALITY_calibration.json`):
    /// the ladder, the floor, and the per-rung price list.
    pub fn to_json(&self) -> Json {
        let ladder = &self.degrade.ladders[0];
        Json::obj([
            ("kind", Json::str("quality_calibration")),
            ("ladder", Json::arr(ladder.iter().map(Json::str))),
            (
                "sqnr_floor_db",
                self.degrade.sqnr_floor_db.map_or(Json::Null, Json::num),
            ),
            (
                "rungs",
                Json::arr(self.costs.iter().map(|c| {
                    Json::obj([
                        ("backend", Json::str(&c.backend)),
                        ("quality_score", Json::num(c.quality_score)),
                        ("quality_cost", Json::num(c.quality_cost)),
                    ])
                })),
            ),
        ])
    }
}

/// Condenses each rung's metrics into one comparable score in `[0, 1]`.
///
/// Each metric is normalized against the best value any rung achieved —
/// `value / best` for the higher-is-better contrast metrics (CR/CNR/gCNR),
/// `best / value` for the lower-is-better FWHM — and the score is the mean
/// of the available normalized terms. A metric that is non-finite or
/// non-positive for a rung contributes `0` (worst) for that rung; a metric
/// whose *best* value is degenerate (no rung measured it meaningfully) is
/// dropped from every rung's mean so it cannot skew the ordering. Returns
/// `(backend, score)` in profile order.
pub fn quality_scores(profile: &QualityProfile) -> Vec<(String, f64)> {
    let best = |get: fn(&crate::RungQuality) -> f64| {
        profile
            .rungs
            .iter()
            .map(get)
            .filter(|v| v.is_finite() && *v > 0.0)
            .fold(f64::NAN, f64::max)
    };
    // (accessor, higher_is_better, best value across rungs)
    let metrics: [(fn(&crate::RungQuality) -> f64, bool); 4] = [
        (|r| r.cr_db, true),
        (|r| r.cnr, true),
        (|r| r.gcnr, true),
        (|r| r.fwhm_mm, false),
    ];
    let anchors: Vec<(fn(&crate::RungQuality) -> f64, bool, f64)> = metrics
        .iter()
        .map(|&(get, higher)| {
            let anchor = if higher {
                best(get)
            } else {
                profile
                    .rungs
                    .iter()
                    .map(get)
                    .filter(|v| v.is_finite() && *v > 0.0)
                    .fold(f64::NAN, f64::min)
            };
            (get, higher, anchor)
        })
        .filter(|(_, _, anchor)| anchor.is_finite() && *anchor > 0.0)
        .collect();

    profile
        .rungs
        .iter()
        .map(|rung| {
            let score = if anchors.is_empty() {
                0.0
            } else {
                anchors
                    .iter()
                    .map(|&(get, higher, anchor)| {
                        let value = get(rung);
                        if !value.is_finite() || value <= 0.0 {
                            return 0.0;
                        }
                        let term = if higher { value / anchor } else { anchor / value };
                        term.clamp(0.0, 1.0)
                    })
                    .sum::<f64>()
                    / anchors.len() as f64
            };
            (rung.backend.clone(), score)
        })
        .collect()
}

/// Derives a calibrated [`DegradeConfig`] and per-rung price list from a
/// measured profile.
///
/// The ladder ordering comes from [`quality_scores`] (descending, stable),
/// the SQNR floor from the worst finite measured SQNR — both via
/// [`DegradeConfig::from_quality_profile`], so the policy `serve` runs is
/// exactly the one the measurements justify.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] when fewer than two rungs were measured,
/// no metric survived normalization (every score zero — a profile measured
/// on nothing must not produce a policy), or the measurements repeat a
/// backend label.
pub fn calibrate(profile: &QualityProfile) -> ServeResult<Calibration> {
    let scores = quality_scores(profile);
    if scores.iter().all(|(_, score)| *score == 0.0) {
        return Err(ServeError::InvalidConfig(
            "quality profile carries no usable metric; refusing to calibrate from nothing".into(),
        ));
    }
    let measurements: Vec<RungMeasurement> = scores
        .iter()
        .zip(&profile.rungs)
        .map(|((backend, score), rung)| RungMeasurement {
            backend: backend.clone(),
            quality_score: *score,
            sqnr_db: rung.sqnr_db,
        })
        .collect();
    let degrade = DegradeConfig::from_quality_profile(&measurements)?;

    let best_score = scores.iter().map(|(_, s)| *s).fold(f64::NEG_INFINITY, f64::max);
    let costs = degrade.ladders[0]
        .iter()
        .map(|backend| {
            let score = scores
                .iter()
                .find(|(b, _)| b == backend)
                .map(|(_, s)| *s)
                .expect("ladder labels come from the score list");
            RungCost { backend: backend.clone(), quality_score: score, quality_cost: best_score - score }
        })
        .collect();
    Ok(Calibration { degrade, costs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RungQuality;

    fn rung(backend: &str, q: f64, sqnr: f64) -> RungQuality {
        RungQuality {
            backend: backend.into(),
            scheme: backend.into(),
            cr_db: 10.0 * q,
            cnr: 1.5 * q,
            gcnr: (0.9 * q).min(1.0),
            axial_mm: 0.8 / q,
            lateral_mm: 1.2 / q,
            fwhm_mm: 1.0 / q,
            sqnr_db: sqnr,
        }
    }

    fn profile(rungs: Vec<RungQuality>) -> QualityProfile {
        QualityProfile { profile: "tiny".into(), seed: 7, channels: 16, grid_rows: 40, grid_cols: 16, rungs }
    }

    #[test]
    fn ladder_ordering_matches_measured_quality() {
        // Shuffled input: the middle rung measures best, the first worst.
        let p = profile(vec![
            rung("tiny-vbf-fx16", 0.6, 64.0),
            rung("tiny-vbf-fp", 1.0, f64::INFINITY),
            rung("tiny-vbf-fx24", 0.95, 113.0),
        ]);
        let calibration = calibrate(&p).unwrap();
        assert_eq!(
            calibration.degrade.ladders,
            vec![vec![
                "tiny-vbf-fp".to_string(),
                "tiny-vbf-fx24".to_string(),
                "tiny-vbf-fx16".to_string()
            ]]
        );
        // The ladder order must equal the score order, descending.
        let scores: Vec<f64> = calibration.costs.iter().map(|c| c.quality_score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "scores not descending: {scores:?}");
        // Head costs nothing; costs grow down the ladder.
        assert_eq!(calibration.costs[0].quality_cost, 0.0);
        assert!(calibration.costs[2].quality_cost > calibration.costs[1].quality_cost);
        // Floor: worst finite SQNR (64 dB) minus the 3 dB margin.
        assert_eq!(calibration.degrade.sqnr_floor_db, Some(61.0));
        assert!(calibration.degrade.validate().is_ok());
    }

    #[test]
    fn nan_metrics_read_as_worst_not_as_poison() {
        let mut broken = rung("tiny-vbf-fx16", 0.9, 64.0);
        broken.fwhm_mm = f64::NAN;
        broken.cr_db = f64::NAN;
        let p = profile(vec![rung("tiny-vbf-fp", 1.0, f64::INFINITY), broken]);
        let calibration = calibrate(&p).unwrap();
        // The rung with poisoned metrics scores strictly worse and lands
        // below the healthy rung.
        assert_eq!(calibration.degrade.ladders[0][1], "tiny-vbf-fx16");
        assert!(calibration.costs[1].quality_score < calibration.costs[0].quality_score);
    }

    #[test]
    fn degenerate_profiles_are_rejected() {
        // One rung: not a ladder.
        assert!(calibrate(&profile(vec![rung("a", 1.0, 60.0)])).is_err());
        // All metrics unusable: nothing measured, nothing calibrated.
        let mut dead_a = rung("a", 1.0, 60.0);
        let mut dead_b = rung("b", 1.0, 60.0);
        for r in [&mut dead_a, &mut dead_b] {
            r.cr_db = f64::NAN;
            r.cnr = -1.0;
            r.gcnr = 0.0;
            r.fwhm_mm = f64::INFINITY;
        }
        assert!(calibrate(&profile(vec![dead_a, dead_b])).is_err());
    }

    #[test]
    fn calibration_artifact_serializes_ladder_floor_and_costs() {
        let p = profile(vec![
            rung("tiny-vbf-fp", 1.0, f64::INFINITY),
            rung("tiny-vbf-fx16", 0.7, 64.0),
        ]);
        let json = calibrate(&p).unwrap().to_json();
        assert_eq!(json.get("kind").and_then(runtime::json::Json::as_str), Some("quality_calibration"));
        assert_eq!(json.get("ladder").and_then(runtime::json::Json::as_arr).unwrap().len(), 2);
        assert_eq!(json.get("sqnr_floor_db").and_then(runtime::json::Json::as_f64), Some(61.0));
        assert_eq!(json.get("rungs").and_then(runtime::json::Json::as_arr).unwrap().len(), 2);
    }
}
