//! Real integer kernels for fixed-point Tiny-VBF inference.
//!
//! [`crate::quantized`] historically *simulated* fixed point: every value
//! stayed `f32` and was rounded onto its grid after each op, which made a
//! quantized rung cost **more** than float. This module is the shipped
//! datapath instead: activations live as `i32` codes on the scheme's
//! mac/intermediate grid, weights are pre-converted to integer codes (and,
//! when they fit `i16`, pre-packed into the pair layout of
//! `runtime::simd::madd_block`), and every dense layer runs an **exact**
//! integer matrix multiply:
//!
//! * products accumulate in `i64` (or chunked `i32` via the 16-lane i16 madd
//!   kernel when the runtime magnitudes allow it — the chunk bound
//!   `2 · pairs · max|a| · max|w| ≤ i32::MAX` guarantees the i32 tile cannot
//!   overflow, and the tile spills into `i64` between chunks),
//! * the bias is pre-shifted onto the product grid exactly,
//! * one round-half-away-from-zero shift + saturate
//!   ([`FixedFormat::requantize_i64`]) lands the result back on the
//!   activation grid — the integer equivalent of the old `q_mac`.
//!
//! Nonlinear boundaries (layer norm, softmax, tanh) convert codes to `f32`
//! (exact: every code of a ≤24-bit format fits the f32 mantissa), run the
//! float op, and round back onto the destination grid — exactly where an
//! FPGA datapath would place its lookup/normalization units. ReLU and the
//! residual adds stay integer (`max(code, 0)` and saturating code addition).
//! The attention score scale (`1/sqrt(head_dim)`, irrational) requantizes
//! through `f64`, which represents every ≤2^53 accumulator exactly, so the
//! result is deterministic on every platform.
//!
//! Everything here is pure integer (or exact-float) arithmetic, so outputs
//! are bitwise identical across thread counts and `runtime::simd` dispatch
//! tiers by construction.

use crate::model::TinyVbfWeights;
use neural::activation::softmax_rows;
use neural::tensor::Tensor;
use quantize::{FixedFormat, QuantScheme, TensorRole};
use runtime::simd;

/// A row-major matrix of fixed-point codes on some [`FixedFormat`] grid.
#[derive(Debug, Clone)]
pub(crate) struct IntTensor {
    codes: Vec<i32>,
    rows: usize,
    cols: usize,
}

impl IntTensor {
    fn zeros(rows: usize, cols: usize) -> Self {
        Self { codes: vec![0; rows * cols], rows, cols }
    }

    /// Quantizes an `f32` tensor onto `fmt` (round-to-nearest, saturating) —
    /// the integer form of `quantize_for_role`. Bitwise identical to
    /// [`FixedFormat::to_code`] per element: the step is a power of two, so
    /// dividing by `resolution()` and multiplying by its exact reciprocal are
    /// the same correctly-rounded operation, and `simd::quantize_codes`
    /// asserts identity with that scalar form across its dispatch tiers.
    fn from_f32(t: &Tensor, fmt: FixedFormat) -> Self {
        let mut codes = vec![0i32; t.rows() * t.cols()];
        simd::quantize_codes(
            t.as_slice(),
            1.0 / fmt.resolution(),
            fmt.max_raw() as i32,
            fmt.min_raw() as i32,
            &mut codes,
        );
        Self { codes, rows: t.rows(), cols: t.cols() }
    }

    /// The exact `f32` values of the codes (every code of a ≤24-bit format is
    /// exactly representable). One multiply per element by the hoisted step.
    fn to_f32(&self, fmt: FixedFormat) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        simd::codes_to_f32(&self.codes, fmt.resolution(), out.as_mut_slice());
        out
    }

    fn slice_cols(&self, start: usize, width: usize) -> Self {
        let mut out = Self::zeros(self.rows, width);
        for r in 0..self.rows {
            let src = &self.codes[r * self.cols + start..r * self.cols + start + width];
            out.codes[r * width..(r + 1) * width].copy_from_slice(src);
        }
        out
    }

    fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.codes[c * self.rows + r] = self.codes[r * self.cols + c];
            }
        }
        out
    }

    fn set_cols(&mut self, start: usize, src: &Self) {
        debug_assert_eq!(self.rows, src.rows);
        for r in 0..self.rows {
            let dst = &mut self.codes[r * self.cols + start..r * self.cols + start + src.cols];
            dst.copy_from_slice(&src.codes[r * src.cols..(r + 1) * src.cols]);
        }
    }

    fn relu(mut self) -> Self {
        for c in self.codes.iter_mut() {
            *c = (*c).max(0);
        }
        self
    }
}

fn max_abs(codes: &[i32]) -> u32 {
    codes.iter().map(|c| c.unsigned_abs()).max().unwrap_or(0)
}

/// Packs a `k × m` code matrix into the `(k+1)/2 × m` i16-pair panel the madd
/// kernel consumes. Caller guarantees every |code| < 32768.
fn pack_pairs(codes: &[i32], k: usize, m: usize) -> Vec<i32> {
    let np = k.div_ceil(2);
    let mut pairs = vec![0i32; np * m];
    for p in 0..np {
        for j in 0..m {
            let lo = codes[(2 * p) * m + j];
            let hi = if 2 * p + 1 < k { codes[(2 * p + 1) * m + j] } else { 0 };
            pairs[p * m + j] = simd::pack_i16_pair(lo, hi);
        }
    }
    pairs
}

/// Exact integer matmul: `a` is `n × k`, `b` is `k × m`, both as codes; the
/// result is the exact `i64` product-sum matrix (on the *product* grid — the
/// caller requantizes). Picks the i16-madd fast path when the runtime
/// magnitudes fit, with chunking so the i32 tile provably cannot overflow.
fn int_matmul(a: &[i32], n: usize, k: usize, b: &[i32], m: usize, b_max: u32, b_pairs: Option<&[i32]>) -> Vec<i64> {
    let mut acc = vec![0i64; n * m];
    if k == 0 || m == 0 {
        return acc;
    }
    let a_max = max_abs(a);
    let prod = a_max as i64 * b_max as i64;
    // One madd step adds two products to a lane, so `chunk` pair-rows add at
    // most `2 * chunk * prod` — keep that under i32::MAX. This bound also
    // excludes the lone wrapping case of the AVX2 madd (both products equal
    // to (-32768)^2), since max|a| = 32768 already fails `< 32768`.
    let chunk = if prod > 0 { (i32::MAX as i64 / (2 * prod)) as usize } else { usize::MAX };
    let np = k.div_ceil(2);
    // Narrow outputs (attention heads, the model_dim-wide encoder): the
    // panel kernel would round-trip its tiny accumulator tile through memory
    // on every pair-row, so run register-resident dot products against the
    // transposed pair layout instead. `madd_dot`'s per-lane bound: each of
    // the 8 lanes absorbs ceil(np/8) dual-products.
    let dot_ok = 2 * (np.div_ceil(8) as i64).saturating_mul(prod) < i32::MAX as i64;
    if m <= 8 && np >= 8 && a_max < 32768 && b_max < 32768 && dot_ok {
        let mut bt_pairs = vec![0i32; m * np];
        for j in 0..m {
            for p in 0..np {
                let lo = b[(2 * p) * m + j];
                let hi = if 2 * p + 1 < k { b[(2 * p + 1) * m + j] } else { 0 };
                bt_pairs[j * np + p] = simd::pack_i16_pair(lo, hi);
            }
        }
        let mut a_pairs = vec![0i32; np];
        for r in 0..n {
            let arow = &a[r * k..(r + 1) * k];
            for (p, ap) in a_pairs.iter_mut().enumerate() {
                let lo = arow[2 * p];
                let hi = if 2 * p + 1 < k { arow[2 * p + 1] } else { 0 };
                *ap = simd::pack_i16_pair(lo, hi);
            }
            for j in 0..m {
                acc[r * m + j] = simd::madd_dot(&a_pairs, &bt_pairs[j * np..(j + 1) * np]);
            }
        }
    } else if a_max < 32768 && b_max < 32768 && chunk > 0 {
        let packed;
        let pairs = match b_pairs {
            Some(p) => p,
            None => {
                packed = pack_pairs(b, k, m);
                &packed
            }
        };
        let mut a_pairs = vec![0i32; np];
        let mut tile = vec![0i32; m];
        for r in 0..n {
            let arow = &a[r * k..(r + 1) * k];
            for (p, ap) in a_pairs.iter_mut().enumerate() {
                let lo = arow[2 * p];
                let hi = if 2 * p + 1 < k { arow[2 * p + 1] } else { 0 };
                *ap = simd::pack_i16_pair(lo, hi);
            }
            let out_row = &mut acc[r * m..(r + 1) * m];
            let mut p0 = 0;
            while p0 < np {
                let p1 = (p0 + chunk).min(np);
                tile.fill(0);
                simd::madd_block(&mut tile, &a_pairs[p0..p1], &pairs[p0 * m..p1 * m]);
                simd::accumulate_i32_into_i64(out_row, &tile);
                p0 = p1;
            }
        }
    } else {
        for r in 0..n {
            simd::i64_mac_row(&mut acc[r * m..(r + 1) * m], &a[r * k..(r + 1) * k], b);
        }
    }
    acc
}

/// A dense layer with integer weights: codes on the weight grid, the optional
/// i16-pair panel, and the bias pre-shifted onto the product grid.
#[derive(Debug, Clone)]
struct IntDense {
    codes: Vec<i32>,
    pairs: Option<Vec<i32>>,
    w_max: u32,
    w_frac: u32,
    k: usize,
    m: usize,
    bias_prod: Vec<i64>,
    /// Product-grid bias as i32 when every code fits — enables the fused
    /// i32-tile forward that skips the i64 accumulator entirely.
    bias_i32: Option<Vec<i32>>,
    /// Largest |bias_prod| code, part of the i32-tile overflow bound.
    bias_abs: i64,
}

impl IntDense {
    fn build(weight: &Tensor, bias: Option<&Tensor>, wf: FixedFormat, act: FixedFormat) -> Self {
        let (k, m) = (weight.rows(), weight.cols());
        let codes: Vec<i32> = weight.as_slice().iter().map(|&v| wf.to_code(v)).collect();
        let w_max = max_abs(&codes);
        let pairs = (w_max < 32768).then(|| pack_pairs(&codes, k, m));
        // Bias codes live on the weight grid (frac wf); the product grid has
        // frac act+wf, so the exact lift is a left shift by act's frac bits.
        let bias_prod: Vec<i64> = match bias {
            Some(b) => b.as_slice().iter().map(|&v| wf.to_raw(v) << act.frac_bits()).collect(),
            None => vec![0i64; m],
        };
        let bias_abs = bias_prod.iter().map(|b| b.abs()).max().unwrap_or(0);
        let bias_i32 = (bias_abs <= i32::MAX as i64).then(|| bias_prod.iter().map(|&b| b as i32).collect());
        Self { codes, pairs, w_max, w_frac: wf.frac_bits(), k, m, bias_prod, bias_i32, bias_abs }
    }

    /// `requantize(a × W + bias)`: exact integer MAC, bias add on the product
    /// grid, one rounding shift back to the activation grid.
    ///
    /// Fast path: when the worst-case partial sum `|bias| + 2·np·prod` fits in
    /// i32, the madd tile seeded with the bias holds the exact product-grid
    /// value, and the whole epilogue (bias add, rounding shift, saturation)
    /// runs 8-wide straight off the tile — no i64 accumulator is ever
    /// materialized. Bitwise identical to the i64 route because both compute
    /// the same exact integer before the same round-half-away + clamp.
    fn forward(&self, a: &IntTensor, act: FixedFormat) -> IntTensor {
        debug_assert_eq!(a.cols, self.k);
        let mut out = IntTensor::zeros(a.rows, self.m);
        let np = self.k.div_ceil(2);
        if let (Some(pairs), Some(bias)) = (self.pairs.as_deref(), self.bias_i32.as_deref()) {
            let a_max = max_abs(&a.codes);
            let prod = a_max as i64 * self.w_max as i64;
            if a_max < 32768 && 2 * np as i64 * prod + self.bias_abs < i32::MAX as i64 {
                let (min_raw, max_raw) = (act.min_raw() as i32, act.max_raw() as i32);
                let mut a_pairs = vec![0i32; np];
                let mut tile = vec![0i32; self.m];
                for r in 0..a.rows {
                    let arow = &a.codes[r * self.k..(r + 1) * self.k];
                    for (p, ap) in a_pairs.iter_mut().enumerate() {
                        let lo = arow[2 * p];
                        let hi = if 2 * p + 1 < self.k { arow[2 * p + 1] } else { 0 };
                        *ap = simd::pack_i16_pair(lo, hi);
                    }
                    tile.copy_from_slice(bias);
                    simd::madd_block(&mut tile, &a_pairs, pairs);
                    simd::shift_round_saturate_i32(
                        &tile,
                        self.w_frac,
                        min_raw,
                        max_raw,
                        &mut out.codes[r * self.m..(r + 1) * self.m],
                    );
                }
                return out;
            }
        }
        let acc = int_matmul(&a.codes, a.rows, self.k, &self.codes, self.m, self.w_max, self.pairs.as_deref());
        let from_frac = act.frac_bits() + self.w_frac;
        for r in 0..a.rows {
            for j in 0..self.m {
                let v = acc[r * self.m + j] + self.bias_prod[j];
                out.codes[r * self.m + j] = act.requantize_i64(v, from_frac);
            }
        }
        out
    }
}

/// Integer weights for one transformer block (the norm gammas/betas stay f32
/// in [`TinyVbfWeights`]; layer norm is a float-boundary op).
///
/// The q/k/v projections are fused into one `model_dim × 3·model_dim` dense:
/// every output column's MAC sum is independent, so the fused matmul produces
/// codes bitwise identical to three separate projections while paying the
/// per-row kernel overhead once.
#[derive(Debug, Clone)]
struct IntBlock {
    wqkv: IntDense,
    wo: IntDense,
    mlp_in: IntDense,
    mlp_out: IntDense,
}

/// The integer-datapath model: every dense layer's weights as codes, plus the
/// grid/geometry constants the kernels need.
#[derive(Debug, Clone)]
pub(crate) struct IntModel {
    act: FixedFormat,
    soft: FixedFormat,
    /// Positional codes on the weight grid with that grid's frac bits.
    pos: Option<(Vec<i32>, u32, usize, usize)>,
    encoder: IntDense,
    blocks: Vec<IntBlock>,
    decoder_in: IntDense,
    decoder_out: IntDense,
    num_heads: usize,
    head_dim: usize,
    /// `1/sqrt(head_dim)` exactly as the float path computes it.
    scale: f32,
    /// When `scale` is exactly `2^-k` (head_dim a power of four), the score
    /// scaling is a pure extra right-shift of `k` — the integer fast path
    /// that covers the paper config (`head_dim = 4`, shift 1).
    score_shift: Option<u32>,
    /// `exp` lookup over score-code deltas: `exp_lut[d] = exp(-d · step)` for
    /// every possible non-negative code delta on the activation grid — the
    /// softmax exponentials an FPGA datapath would serve from a lookup unit.
    /// Bitwise identical to the float boundary because `x - row_max` on exact
    /// code values is exactly `(c - cmax) · step` (the difference of exactly
    /// representable values is representable, hence the f32 subtraction is
    /// exact). Built only when the table stays cache-friendly (coarse grids
    /// like the deployment rungs fx16/w8a16); finer grids keep libm `exp`.
    exp_lut: Option<Vec<f32>>,
}

/// Cap on the exp-LUT length: 2^17 entries (512 KiB) covers every 16-bit
/// activation grid; wider grids would need megabytes and fall back to `exp`.
const EXP_LUT_MAX_LEN: usize = 1 << 17;

/// `Some(k)` when `scale == 2^-k` exactly (positive power-of-two reciprocal).
fn power_of_two_shift(scale: f32) -> Option<u32> {
    let bits = scale.to_bits();
    let mantissa = bits & 0x007F_FFFF;
    let exponent = (bits >> 23) & 0xFF;
    if scale > 0.0 && mantissa == 0 && exponent <= 127 { Some(127 - exponent) } else { None }
}

impl IntModel {
    /// Builds the integer model from already weight-quantized f32 weights.
    /// Returns `None` for the float scheme (no grids to run on).
    pub(crate) fn build(weights: &TinyVbfWeights, scheme: &QuantScheme) -> Option<Self> {
        let wf = scheme.format_for(TensorRole::Weight)?;
        let act = scheme.format_for(TensorRole::MacResult)?;
        let inter = scheme.format_for(TensorRole::Intermediate)?;
        let soft = scheme.format_for(TensorRole::Softmax)?;
        // The integer datapath keeps activations on one grid between ops;
        // every Table III scheme satisfies this (mac == intermediate).
        debug_assert_eq!(act, inter, "integer datapath assumes mac grid == intermediate grid");
        let config = &weights.config;
        let head_dim = config.model_dim / config.num_heads;
        let dense = |w: &Tensor, b: Option<&Tensor>| IntDense::build(w, b, wf, act);
        Some(Self {
            act,
            soft,
            pos: weights.positional.as_ref().map(|p| {
                let codes = p.as_slice().iter().map(|&v| wf.to_code(v)).collect();
                (codes, wf.frac_bits(), p.rows(), p.cols())
            }),
            encoder: dense(&weights.encoder_weight, Some(&weights.encoder_bias)),
            blocks: weights
                .blocks
                .iter()
                .map(|b| {
                    let dim = b.wq.cols();
                    let mut qkv = Tensor::zeros(&[b.wq.rows(), 3 * dim]);
                    for r in 0..b.wq.rows() {
                        for c in 0..dim {
                            *qkv.at_mut(r, c) = b.wq.at(r, c);
                            *qkv.at_mut(r, dim + c) = b.wk.at(r, c);
                            *qkv.at_mut(r, 2 * dim + c) = b.wv.at(r, c);
                        }
                    }
                    IntBlock {
                        wqkv: dense(&qkv, None),
                        wo: dense(&b.wo, None),
                        mlp_in: dense(&b.mlp_in_weight, Some(&b.mlp_in_bias)),
                        mlp_out: dense(&b.mlp_out_weight, Some(&b.mlp_out_bias)),
                    }
                })
                .collect(),
            decoder_in: dense(&weights.decoder_in_weight, Some(&weights.decoder_in_bias)),
            decoder_out: dense(&weights.decoder_out_weight, Some(&weights.decoder_out_bias)),
            num_heads: config.num_heads,
            head_dim,
            scale: 1.0 / (head_dim as f32).sqrt(),
            score_shift: power_of_two_shift(1.0 / (head_dim as f32).sqrt()),
            exp_lut: {
                let span = (act.max_raw() - act.min_raw()) as usize + 1;
                (span <= EXP_LUT_MAX_LEN).then(|| {
                    let step = act.resolution();
                    (0..span).map(|d| (-(d as f32) * step).exp()).collect()
                })
            },
        })
    }

    /// Saturating residual add of two code matrices on the activation grid
    /// (the integer `q_inter(x.add(y))`: code sums that stay on-grid round to
    /// themselves, so only the clamp remains).
    fn add_saturating(&self, x: &IntTensor, y: &IntTensor) -> IntTensor {
        debug_assert!(x.rows == y.rows && x.cols == y.cols);
        let mut out = IntTensor::zeros(x.rows, x.cols);
        for ((o, &a), &b) in out.codes.iter_mut().zip(&x.codes).zip(&y.codes) {
            *o = self.act.requantize_i64(a as i64 + b as i64, self.act.frac_bits());
        }
        out
    }

    /// Float-boundary layer norm: exact codes → f32, the float model's exact
    /// normalization expression, then back onto the activation grid.
    fn layer_norm(&self, x: &IntTensor, gamma: &Tensor, beta: &Tensor) -> IntTensor {
        let input = x.to_f32(self.act);
        let (rows, cols) = (input.rows(), input.cols());
        let mut out = Tensor::zeros(&[rows, cols]);
        for r in 0..rows {
            let mean: f32 = (0..cols).map(|c| input.at(r, c)).sum::<f32>() / cols as f32;
            let var: f32 = (0..cols).map(|c| (input.at(r, c) - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            for c in 0..cols {
                *out.at_mut(r, c) = (input.at(r, c) - mean) * inv_std * gamma.at(0, c) + beta.at(0, c);
            }
        }
        IntTensor::from_f32(&out, self.act)
    }

    /// Score codes on the activation grid: `round(q·kᵀ · scale)` per element.
    ///
    /// With a power-of-two scale the rounding is one integer shift, and when
    /// the runtime magnitudes bound the head MAC inside i32 the whole stage
    /// runs fused off the madd tile — matmul and requantize 8-wide with no
    /// i64 accumulator. Falls back to the exact i64 accumulator plus either
    /// the same rounding shift or the f64 rounded multiply (the accumulator
    /// is exact on the 2·fa product grid and ≤ 2^53, so f64 holds it
    /// exactly). All routes produce identical codes.
    fn score_codes(&self, qh: &IntTensor, kh_t: &IntTensor, tokens: usize, fa: u32, factor: f64) -> Vec<i32> {
        let mut codes = vec![0i32; tokens * tokens];
        let (min_raw, max_raw) = (self.act.min_raw(), self.act.max_raw());
        let k_max = max_abs(&kh_t.codes);
        if let Some(extra) = self.score_shift {
            let np = self.head_dim.div_ceil(2);
            let q_max = max_abs(&qh.codes);
            let prod = q_max as i64 * k_max as i64;
            if q_max < 32768 && k_max < 32768 && 2 * np as i64 * prod < i32::MAX as i64 {
                let bt = pack_pairs(&kh_t.codes, self.head_dim, tokens);
                let mut a_pairs = vec![0i32; np];
                let mut tile = vec![0i32; tokens];
                for r in 0..tokens {
                    let arow = &qh.codes[r * self.head_dim..(r + 1) * self.head_dim];
                    for (p, ap) in a_pairs.iter_mut().enumerate() {
                        let lo = arow[2 * p];
                        let hi = if 2 * p + 1 < self.head_dim { arow[2 * p + 1] } else { 0 };
                        *ap = simd::pack_i16_pair(lo, hi);
                    }
                    tile.fill(0);
                    simd::madd_block(&mut tile, &a_pairs, &bt);
                    simd::shift_round_saturate_i32(
                        &tile,
                        fa + extra,
                        min_raw as i32,
                        max_raw as i32,
                        &mut codes[r * tokens..(r + 1) * tokens],
                    );
                }
                return codes;
            }
            let acc = int_matmul(&qh.codes, tokens, self.head_dim, &kh_t.codes, tokens, k_max, None);
            for (o, &a) in codes.iter_mut().zip(&acc) {
                *o = self.act.requantize_i64(a, 2 * fa + extra);
            }
        } else {
            let acc = int_matmul(&qh.codes, tokens, self.head_dim, &kh_t.codes, tokens, k_max, None);
            for (o, &a) in codes.iter_mut().zip(&acc) {
                let code = (a as f64 * factor).round() as i64;
                *o = code.clamp(min_raw, max_raw) as i32;
            }
        }
        codes
    }

    fn attention(&self, input: &IntTensor, ib: &IntBlock) -> IntTensor {
        let tokens = input.rows;
        let model_dim = ib.wqkv.m / 3;
        let qkv = ib.wqkv.forward(input, self.act);
        let mut concat = IntTensor::zeros(tokens, model_dim);
        let fa = self.act.frac_bits();
        // score code = round(acc · scale · 2^(fa − 2fa)): the accumulator is
        // exact on the 2fa product grid, f64 holds it exactly (≤ 2^53), and
        // one rounded multiply lands it on the activation grid.
        let factor = f64::from(self.scale) * (-(fa as f64)).exp2();
        let step = self.act.resolution();
        for h in 0..self.num_heads {
            let start = h * self.head_dim;
            let qh = qkv.slice_cols(start, self.head_dim);
            let kh_t = qkv.slice_cols(model_dim + start, self.head_dim).transpose();
            let vh = qkv.slice_cols(2 * model_dim + start, self.head_dim);
            let codes = self.score_codes(&qh, &kh_t, tokens, fa, factor);
            // Softmax is a float-boundary op; its output lands on the softmax
            // grid (wider than the activation grid for the hybrid schemes).
            let att = if let Some(lut) = &self.exp_lut {
                // Integer score codes feed the LUT softmax: `exp(x - max)`
                // becomes `exp_lut[cmax - c]`, with the sum and divide in
                // `softmax_rows`' exact element order — bitwise identical to
                // the float boundary (see the `exp_lut` field docs).
                let mut soft_f = Tensor::zeros(&[tokens, tokens]);
                for (row_codes, out_row) in
                    codes.chunks_exact(tokens).zip(soft_f.as_mut_slice().chunks_exact_mut(tokens))
                {
                    let cmax = row_codes.iter().copied().max().unwrap_or(0);
                    let mut denom = 0.0f32;
                    for (o, &c) in out_row.iter_mut().zip(row_codes) {
                        let e = lut.get((cmax - c) as usize).copied().unwrap_or(0.0);
                        *o = e;
                        denom += e;
                    }
                    for o in out_row.iter_mut() {
                        *o /= denom;
                    }
                }
                IntTensor::from_f32(&soft_f, self.soft)
            } else {
                // The score codes are consumed only by the softmax boundary,
                // so dequantize to their exact f32 values (code · step) and
                // run the libm softmax.
                let mut scores = Tensor::zeros(&[tokens, tokens]);
                simd::codes_to_f32(&codes, step, scores.as_mut_slice());
                IntTensor::from_f32(&softmax_rows(&scores), self.soft)
            };
            let acc = int_matmul(&att.codes, tokens, tokens, &vh.codes, self.head_dim, max_abs(&vh.codes), None);
            let mut oh = IntTensor::zeros(tokens, self.head_dim);
            let from_frac = self.soft.frac_bits() + fa;
            for (o, &a) in oh.codes.iter_mut().zip(&acc) {
                *o = self.act.requantize_i64(a, from_frac);
            }
            concat.set_cols(start, &oh);
        }
        ib.wo.forward(&concat, self.act)
    }

    /// Integer-datapath inference over one `(tokens, channels)` row. The op
    /// sequence mirrors the float path exactly; only the arithmetic domain
    /// changes.
    pub(crate) fn infer_row(&self, weights: &TinyVbfWeights, row: &Tensor) -> Tensor {
        let act = self.act;
        let mut x = self.encoder.forward(&IntTensor::from_f32(row, act), act);
        if let Some((pos_codes, pos_frac, pos_rows, pos_cols)) = &self.pos {
            // Positional codes live on the (possibly finer) weight grid:
            // lift both operands to the common grid, add exactly, round back.
            let common = act.frac_bits().max(*pos_frac);
            let xs = common - act.frac_bits();
            let ps = common - pos_frac;
            for r in 0..x.rows {
                let pr = r.min(pos_rows - 1);
                for c in 0..x.cols.min(*pos_cols) {
                    let a = (x.codes[r * x.cols + c] as i64) << xs;
                    let b = (pos_codes[pr * pos_cols + c] as i64) << ps;
                    x.codes[r * x.cols + c] = act.requantize_i64(a + b, common);
                }
            }
        }
        for (block, ib) in weights.blocks.iter().zip(&self.blocks) {
            let normed = self.layer_norm(&x, &block.norm1_gamma, &block.norm1_beta);
            let attended = self.attention(&normed, ib);
            let after_attention = self.add_saturating(&x, &attended);
            let normed2 = self.layer_norm(&after_attention, &block.norm2_gamma, &block.norm2_beta);
            let hidden = ib.mlp_in.forward(&normed2, act).relu();
            let mlp = ib.mlp_out.forward(&hidden, act);
            x = self.add_saturating(&after_attention, &mlp);
        }
        let hidden = self.decoder_in.forward(&x, act).relu();
        let out = self.decoder_out.forward(&hidden, act);
        // Float-boundary tanh, then the final intermediate-grid rounding:
        // quantize + dequantize through the vectorized boundary kernels
        // (bitwise `act.quantize` per element).
        let mut out = out.to_f32(act).map(f32::tanh);
        let mut codes = vec![0i32; out.as_slice().len()];
        simd::quantize_codes(out.as_slice(), 1.0 / act.resolution(), act.max_raw() as i32, act.min_raw() as i32, &mut codes);
        simd::codes_to_f32(&codes, act.resolution(), out.as_mut_slice());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_fused_tile_and_i64_paths_match_the_exact_reference() {
        let wf = FixedFormat::new(16, 14);
        let act = FixedFormat::new(16, 10);
        let mut w = Tensor::zeros(&[6, 9]);
        for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as i32 % 17) - 8) as f32 * 0.07;
        }
        let mut bias = Tensor::zeros(&[1, 9]);
        for (i, v) in bias.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as i32 % 5) - 2) as f32 * 0.31;
        }
        let dense = IntDense::build(&w, Some(&bias), wf, act);
        // Small activations take the fused i32-tile path; activations at the
        // i16 limit force the i64 fallback. Both must equal the exact
        // accumulate-then-requantize reference.
        for &scale in &[5i32, 31000] {
            let mut a = IntTensor::zeros(4, 6);
            for (i, c) in a.codes.iter_mut().enumerate() {
                *c = (((i as i32 * 7) % 11) - 5) * scale;
            }
            let out = dense.forward(&a, act);
            let from_frac = act.frac_bits() + wf.frac_bits();
            for r in 0..4 {
                for j in 0..9 {
                    let mut acc = dense.bias_prod[j];
                    for p in 0..6 {
                        acc += a.codes[r * 6 + p] as i64 * dense.codes[p * 9 + j] as i64;
                    }
                    assert_eq!(
                        out.codes[r * 9 + j],
                        act.requantize_i64(acc, from_frac),
                        "scale {scale} element ({r},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn int_matmul_matches_exact_reference_on_all_paths() {
        // Magnitudes straddling the madd eligibility threshold exercise both
        // the packed i16 path (with chunking) and the i64 fallback.
        for &scale in &[3i32, 1000, 40000] {
            let (n, k, m) = (3usize, 7usize, 5usize);
            let a: Vec<i32> = (0..n * k).map(|i| ((i as i32 % 11) - 5) * scale).collect();
            let b: Vec<i32> = (0..k * m).map(|i| ((i as i32 % 13) - 6) * scale).collect();
            let mut expect = vec![0i64; n * m];
            for r in 0..n {
                for j in 0..m {
                    for p in 0..k {
                        expect[r * m + j] += a[r * k + p] as i64 * b[p * m + j] as i64;
                    }
                }
            }
            let got = int_matmul(&a, n, k, &b, m, max_abs(&b), None);
            assert_eq!(got, expect, "scale {scale}");
            // Pre-packed panel (when it fits i16) must agree too.
            if max_abs(&b) < 32768 && max_abs(&a) < 32768 {
                let pairs = pack_pairs(&b, k, m);
                assert_eq!(int_matmul(&a, n, k, &b, m, max_abs(&b), Some(&pairs)), expect);
            }
        }
    }

    #[test]
    fn requantize_matches_f32_rounding_on_grid_values() {
        let act = FixedFormat::new(16, 10);
        for code in [-3000i64, -1, 0, 1, 513, 32767, 40000, -40000] {
            // A product-grid value code·2^-20 requantized to frac 10.
            let real = code as f64 * (-(20.0f64)).exp2();
            let expect = act.to_code((real as f32 * 1.0).max(act.min_value()).min(act.max_value()));
            let got = act.requantize_i64(code, 20);
            // Both are round-to-nearest of the same real value; ties can only
            // differ when f32 cannot represent the halfway point, which these
            // small codes avoid.
            assert_eq!(got, expect, "code {code}");
        }
    }
}
