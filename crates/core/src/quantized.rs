//! Fixed-point (quantized) Tiny-VBF inference.
//!
//! The FPGA deployment runs the network in fixed point. This module replays the exact
//! operation sequence of [`crate::model::TinyVbf`] on exported weights with **real
//! integer kernels** (`quantized_int`): weights become integer codes once up
//! front, dense layers run exact i16/i32/i64 multiply-accumulates, and every MAC
//! result / softmax / intermediate activation is requantized onto its scheme-assigned
//! grid by an integer rounding shift (Table III). The float scheme short-circuits to
//! a plain `f32` datapath. Evaluating the resulting images against the float model
//! reproduces Tables IV and V and Fig. 15 — and, because the datapath is integer, a
//! quantized rung is now *cheaper* than float instead of paying to simulate rounding.
//!
//! Two entry points consume a quantized model:
//!
//! * [`QuantizedTinyVbf`] — the raw fixed-point network (row / cube / batch
//!   inference) plus a direct [`Beamformer`] impl used by the evaluation
//!   harness,
//! * [`QuantizedTinyVbfBeamformer`] — the **serving** adapter: planned ToF
//!   (shared [`PlanCache`], like [`crate::inference::TinyVbfBeamformer`]),
//!   row-parallel sweeps, and per-stream SQNR accuracy-proxy counters
//!   surfaced through [`Beamformer::quant_quality_stats`] so a
//!   `serve::router::Router` can expose quantization degradation per backend
//!   label under load.

use crate::inference::parallel_row_sweep;
use crate::model::{TinyVbf, TinyVbfWeights, TransformerBlockWeights};
use crate::training::cube_row;
use crate::{TinyVbfError, TinyVbfResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, QuantQualityStats};
use beamforming::plan::{FrameFormat, PlanCache, PlanCacheStats};
use beamforming::tof::{tof_correct, TofCube};
use beamforming::{BeamformError, BeamformResult};
use neural::activation::softmax_rows;
use neural::tensor::Tensor;
use quantize::quantizer::quantize_for_role;
use quantize::{QuantScheme, TensorRole};
use std::sync::{Arc, Mutex};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::Complex32;

/// A Tiny-VBF model with weights and datapath quantized according to a scheme.
#[derive(Debug, Clone)]
pub struct QuantizedTinyVbf {
    weights: TinyVbfWeights,
    scheme: QuantScheme,
    /// The integer-code model driving fixed-point inference; `None` for the
    /// float scheme (which runs the plain `f32` datapath).
    int: Option<Arc<crate::quantized_int::IntModel>>,
}

impl QuantizedTinyVbf {
    /// Quantizes a trained model's weights according to `scheme`.
    pub fn from_model(model: &TinyVbf, scheme: QuantScheme) -> Self {
        let mut weights = model.export_weights();
        let q = |t: &Tensor| quantize_for_role(t, &scheme, TensorRole::Weight);
        weights.encoder_weight = q(&weights.encoder_weight);
        weights.encoder_bias = q(&weights.encoder_bias);
        if let Some(pos) = weights.positional.as_ref() {
            weights.positional = Some(q(pos));
        }
        for block in weights.blocks.iter_mut() {
            *block = TransformerBlockWeights {
                norm1_gamma: q(&block.norm1_gamma),
                norm1_beta: q(&block.norm1_beta),
                wq: q(&block.wq),
                wk: q(&block.wk),
                wv: q(&block.wv),
                wo: q(&block.wo),
                norm2_gamma: q(&block.norm2_gamma),
                norm2_beta: q(&block.norm2_beta),
                mlp_in_weight: q(&block.mlp_in_weight),
                mlp_in_bias: q(&block.mlp_in_bias),
                mlp_out_weight: q(&block.mlp_out_weight),
                mlp_out_bias: q(&block.mlp_out_bias),
            };
        }
        weights.decoder_in_weight = q(&weights.decoder_in_weight);
        weights.decoder_in_bias = q(&weights.decoder_in_bias);
        weights.decoder_out_weight = q(&weights.decoder_out_weight);
        weights.decoder_out_bias = q(&weights.decoder_out_bias);
        let int = crate::quantized_int::IntModel::build(&weights, &scheme).map(Arc::new);
        Self { weights, scheme, int }
    }

    /// The quantization scheme in use.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The (already weight-quantized) exported weights.
    pub fn weights(&self) -> &TinyVbfWeights {
        &self.weights
    }

    fn dense_f32(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
        input.matmul(weight).add_row_broadcast(bias)
    }

    fn layer_norm_f32(input: &Tensor, gamma: &Tensor, beta: &Tensor) -> Tensor {
        let (rows, cols) = (input.rows(), input.cols());
        let mut out = Tensor::zeros(&[rows, cols]);
        for r in 0..rows {
            let mean: f32 = (0..cols).map(|c| input.at(r, c)).sum::<f32>() / cols as f32;
            let var: f32 = (0..cols).map(|c| (input.at(r, c) - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            for c in 0..cols {
                *out.at_mut(r, c) = (input.at(r, c) - mean) * inv_std * gamma.at(0, c) + beta.at(0, c);
            }
        }
        out
    }

    fn attention_f32(&self, input: &Tensor, block: &TransformerBlockWeights) -> Tensor {
        let config = &self.weights.config;
        let head_dim = config.model_dim / config.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let q = input.matmul(&block.wq);
        let k = input.matmul(&block.wk);
        let v = input.matmul(&block.wv);
        let tokens = input.rows();
        let mut concat = Tensor::zeros(&[tokens, config.model_dim]);
        for h in 0..config.num_heads {
            let start = h * head_dim;
            let qh = q.slice_cols(start, head_dim);
            let kh = k.slice_cols(start, head_dim);
            let vh = v.slice_cols(start, head_dim);
            let scores = qh.matmul(&kh.transpose()).scale(scale);
            let attention = softmax_rows(&scores);
            let oh = attention.matmul(&vh);
            concat.set_cols(start, &oh);
        }
        concat.matmul(&block.wo)
    }

    /// The float-scheme datapath, also the reference the serving adapter's
    /// output-SQNR proxy compares the integer path against. Same op sequence
    /// as [`QuantizedTinyVbf::infer_row`], plain `f32` arithmetic throughout
    /// (the float scheme's "quantizers" were always identities).
    pub(crate) fn infer_row_float(&self, row: &Tensor) -> Tensor {
        let mut x = Self::dense_f32(row, &self.weights.encoder_weight, &self.weights.encoder_bias);
        if let Some(pos) = self.weights.positional.as_ref() {
            let rows = x.rows();
            for r in 0..rows {
                let pr = r.min(pos.rows() - 1);
                for c in 0..x.cols() {
                    *x.at_mut(r, c) += pos.at(pr, c);
                }
            }
        }
        for block in &self.weights.blocks {
            let normed = Self::layer_norm_f32(&x, &block.norm1_gamma, &block.norm1_beta);
            let attended = self.attention_f32(&normed, block);
            let after_attention = x.add(&attended);
            let normed2 = Self::layer_norm_f32(&after_attention, &block.norm2_gamma, &block.norm2_beta);
            let hidden = Self::dense_f32(&normed2, &block.mlp_in_weight, &block.mlp_in_bias).map(|v| v.max(0.0));
            let mlp = Self::dense_f32(&hidden, &block.mlp_out_weight, &block.mlp_out_bias);
            x = after_attention.add(&mlp);
        }
        let hidden = Self::dense_f32(&x, &self.weights.decoder_in_weight, &self.weights.decoder_in_bias).map(|v| v.max(0.0));
        let out = Self::dense_f32(&hidden, &self.weights.decoder_out_weight, &self.weights.decoder_out_bias);
        out.map(|v| v.tanh())
    }

    /// Runs quantized inference on one `(tokens, channels)` depth row —
    /// through the integer datapath for fixed-point schemes, or the plain
    /// `f32` datapath for the float scheme.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the configured channel count,
    /// or when a fixed-point scheme was attached to a model without its
    /// integer weights (only reachable by hand-assembling the struct).
    pub fn infer_row(&self, row: &Tensor) -> Tensor {
        let config = &self.weights.config;
        assert_eq!(row.cols(), config.channels, "quantized inference: channel mismatch");
        // Scheme first: struct-update construction can pair a float scheme
        // with a stale integer model, and the scheme is authoritative.
        if self.scheme.is_float() {
            return self.infer_row_float(row);
        }
        let int = self.int.as_ref().expect("fixed-point scheme requires the integer model from from_model()");
        int.infer_row(&self.weights, row)
    }

    fn check_row(&self, row: &Tensor) -> TinyVbfResult<()> {
        if row.shape().len() != 2 || row.cols() != self.weights.config.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {}) row", self.weights.config.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        Ok(())
    }

    /// Quantized inference over a batch of independent depth rows, split
    /// across the workspace-default worker threads — the fixed-point
    /// counterpart of [`TinyVbf::forward_batch`].
    ///
    /// Each row's output depends only on that row, so batch results are
    /// **bitwise identical** to serial per-row [`QuantizedTinyVbf::infer_row`]
    /// calls for every thread count (asserted by this module's tests).
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] (for the first offending row in
    /// input order) when any row's width differs from the configured channel
    /// count.
    pub fn forward_batch(&self, rows: &[Tensor]) -> TinyVbfResult<Vec<Tensor>> {
        self.forward_batch_with_threads(rows, runtime::default_threads())
    }

    /// [`QuantizedTinyVbf::forward_batch`] with an explicit *total* thread
    /// budget, split via [`runtime::split_budget`] (rows concurrent across
    /// the outer workers, each row's matmuls capped at the inner share).
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedTinyVbf::forward_batch`].
    pub fn forward_batch_with_threads(&self, rows: &[Tensor], num_threads: usize) -> TinyVbfResult<Vec<Tensor>> {
        for row in rows {
            self.check_row(row)?;
        }
        let (outer, inner) = runtime::split_budget(num_threads, rows.len());
        Ok(runtime::par_collect_budgeted(rows.len(), outer, inner, |i| self.infer_row(&rows[i])))
    }

    /// Runs quantized inference over every row of a normalized ToF cube.
    ///
    /// # Errors
    ///
    /// Propagates image-assembly errors.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> TinyVbfResult<IqImage> {
        let mut data = Vec::with_capacity(grid.num_pixels());
        for row in 0..cube.rows() {
            let input = cube_row(cube, row);
            let out = self.infer_row(&input);
            for col in 0..out.rows() {
                data.push(Complex32::new(out.at(col, 0), out.at(col, 1)));
            }
        }
        Ok(IqImage::from_data(data, grid.clone())?)
    }
}

impl Beamformer for QuantizedTinyVbf {
    fn name(&self) -> &str {
        self.scheme.name
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let mut cube = tof_correct(data, array, grid, PlaneWave::zero_angle(), sound_speed)?;
        cube.normalize();
        self.beamform_cube(&cube, grid)
            .map_err(|e| BeamformError::InvalidParameter { name: "quantized_tiny_vbf", reason: e.to_string() })
    }
}

/// Fixed-point Tiny-VBF as a first-class **serving** backend.
///
/// Where the raw [`QuantizedTinyVbf`] beamforms serially through the direct
/// [`tof_correct`] (fine for the evaluation harness), this adapter is built
/// for the `serve` stack:
///
/// * the ToF cube goes through a cached dense
///   [`BeamformPlan`](beamforming::plan::BeamformPlan)
///   ([`tof_correct_planned`](beamforming::tof::tof_correct_planned),
///   bitwise identical to the direct path), with
///   the [`PlanCache`] shareable across backends — the ToF geometry does not
///   depend on the quantization scheme, so every per-scheme engine of a
///   router can replay **one** plan ([`QuantizedTinyVbfBeamformer::with_tof_cache`]),
/// * the row sweep is parallel via `runtime` (bitwise identical for every
///   thread count), and batches inherit the frame-concurrent × row-parallel
///   default of [`Beamformer::beamform_batch_results`],
/// * every served frame accumulates an SQNR **accuracy proxy** — one probe
///   row of the frame is inferred through both the integer datapath and the
///   `f32` reference, and the output signal/noise energies accumulate —
///   surfaced through [`Beamformer::quant_quality_stats`] so `RouterStats`
///   can report per-backend degradation under load.
///
/// [`Beamformer::name`] returns the scheme's serving label
/// ([`QuantScheme::backend_label`]), so registering one engine per Table III
/// scheme under `"tiny-vbf-fp"`, `"tiny-vbf-fx16"`, … is a one-line factory
/// match.
///
/// ```
/// use beamforming::pipeline::Beamformer;
/// use quantize::QuantScheme;
/// use tiny_vbf::config::TinyVbfConfig;
/// use tiny_vbf::model::TinyVbf;
/// use tiny_vbf::quantized::QuantizedTinyVbfBeamformer;
///
/// let model = TinyVbf::new(&TinyVbfConfig::tiny_test())?;
/// let backend = QuantizedTinyVbfBeamformer::new(&model, QuantScheme::hybrid2());
/// assert_eq!(backend.name(), "tiny-vbf-w8a16");
/// assert_eq!(backend.name(), QuantScheme::hybrid2().backend_label());
/// # Ok::<(), tiny_vbf::TinyVbfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedTinyVbfBeamformer {
    model: QuantizedTinyVbf,
    /// Dense ToF plans keyed on (probe, grid, sound speed, frame format);
    /// shared by clones and, optionally, across per-scheme backends.
    tof_plans: Arc<PlanCache>,
    /// Output-SQNR accumulators (integer path vs float reference on a probe
    /// row per frame); shared by clones so serving worker clones feed one
    /// per-backend counter.
    quality: Arc<Mutex<QuantQualityStats>>,
}

impl QuantizedTinyVbfBeamformer {
    /// Quantizes `model`'s weights under `scheme` and wraps the result as a
    /// serving backend with a ToF plan cache of
    /// [`PlanCache::DEFAULT_CAPACITY`] slots.
    pub fn new(model: &TinyVbf, scheme: QuantScheme) -> Self {
        Self::from_quantized(QuantizedTinyVbf::from_model(model, scheme))
    }

    /// Wraps an already-quantized model with a fresh default-capacity ToF
    /// plan cache.
    pub fn from_quantized(model: QuantizedTinyVbf) -> Self {
        Self::with_tof_cache(model, Arc::new(PlanCache::new(PlanCache::DEFAULT_CAPACITY)))
    }

    /// [`QuantizedTinyVbfBeamformer::from_quantized`] with an explicit —
    /// possibly shared — ToF plan cache.
    ///
    /// The dense ToF plan depends only on the stream geometry, never on the
    /// quantization scheme, so a router serving all Table III schemes on one
    /// probe/grid should hand every per-scheme backend the same
    /// `Arc<PlanCache>`: one plan build serves N engines instead of N
    /// rebuilding identical tables.
    pub fn with_tof_cache(model: QuantizedTinyVbf, tof_plans: Arc<PlanCache>) -> Self {
        Self { model, tof_plans, quality: Arc::new(Mutex::new(QuantQualityStats::default())) }
    }

    /// The wrapped quantized model.
    pub fn quantized(&self) -> &QuantizedTinyVbf {
        &self.model
    }

    /// The quantization scheme in use.
    pub fn scheme(&self) -> &QuantScheme {
        self.model.scheme()
    }

    /// Snapshot of the ToF plan-cache counters (hits / misses / evictions).
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.tof_plans.stats()
    }

    /// Snapshot of the accumulated input-quantization accuracy proxy.
    pub fn quality_stats(&self) -> QuantQualityStats {
        *self.quality.lock().expect("quantized quality mutex poisoned")
    }

    fn planned_cube(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<TofCube> {
        crate::inference::planned_normalized_cube(&self.tof_plans, data, array, grid, sound_speed)
    }

    /// Accumulates the SQNR proxy for one served frame from the integer
    /// datapath's **actual outputs**: one deterministic probe row (the middle
    /// depth row) is inferred through both the integer path and the `f32`
    /// reference path, and the reference's energy versus the output
    /// difference energy feed the counters. This measures the degradation
    /// the scheme really delivers end to end — MAC requantization, softmax
    /// grids, saturations — not merely the input rounding error of the old
    /// f32 simulation. Float backends run one datapath, so only their frame
    /// counter advances (SQNR stays infinite) and their signal energy never
    /// dilutes an aggregated lossy SQNR.
    fn record_output_quality(&self, cube: &TofCube) {
        let quality_for = |signal: f64, noise: f64| {
            let mut quality = self.quality.lock().expect("quantized quality mutex poisoned");
            quality.frames += 1;
            quality.signal_energy += signal;
            quality.noise_energy += noise;
        };
        if self.model.scheme().is_float() || cube.rows() == 0 {
            quality_for(0.0, 0.0);
            return;
        }
        let input = cube_row(cube, cube.rows() / 2);
        let reference = self.model.infer_row_float(&input);
        let quantized = self.model.infer_row(&input);
        let mut signal = 0.0f64;
        let mut noise = 0.0f64;
        for (&a, &b) in reference.as_slice().iter().zip(quantized.as_slice()) {
            signal += f64::from(a) * f64::from(a);
            let error = f64::from(a) - f64::from(b);
            noise += error * error;
        }
        quality_for(signal, noise);
    }

    /// Runs the quantized model over every row of an (already normalized)
    /// ToF cube, distributing rows over the workspace-default worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] when the cube's channel count
    /// differs from the model's.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> TinyVbfResult<IqImage> {
        self.beamform_cube_with_threads(cube, grid, runtime::default_threads())
    }

    /// [`QuantizedTinyVbfBeamformer::beamform_cube`] with an explicit worker
    /// thread count. Bitwise identical for every count: each depth row
    /// depends only on its own cube row.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedTinyVbfBeamformer::beamform_cube`].
    pub fn beamform_cube_with_threads(
        &self,
        cube: &TofCube,
        grid: &ImagingGrid,
        num_threads: usize,
    ) -> TinyVbfResult<IqImage> {
        let channels = self.model.weights().config.channels;
        if cube.channels() != channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("{channels}-channel ToF cube"),
                actual: format!("{} channels", cube.channels()),
            });
        }
        let mut data = vec![Complex32::new(0.0, 0.0); cube.rows() * cube.cols()];
        // `infer_row` needs no mutable layer caches, so "cloning" the model
        // per worker chunk is just reborrowing it.
        parallel_row_sweep(
            cube,
            &mut data,
            num_threads,
            &|| &self.model,
            &|model: &mut &QuantizedTinyVbf, input| Ok(model.infer_row(input)),
            &crate::inference::write_iq_row,
        )?;
        Ok(IqImage::from_data(data, grid.clone())?)
    }
}

impl Beamformer for QuantizedTinyVbfBeamformer {
    /// The scheme's serving backend label (e.g. `"tiny-vbf-w8a16"`), so a
    /// router factory can register one engine per scheme by name.
    fn name(&self) -> &str {
        self.model.scheme().backend_label()
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = self.planned_cube(data, array, grid, sound_speed)?;
        let image = self
            .beamform_cube(&cube, grid)
            .map_err(|e| BeamformError::InvalidParameter { name: "quantized_tiny_vbf", reason: e.to_string() })?;
        // Count quality only for frames that actually served: the counters
        // mean "served frames", so a failing stream must not inflate them.
        self.record_output_quality(&cube);
        Ok(image)
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        // Best effort, like the other planned wrappers.
        crate::inference::warm_tof_plan(&self.tof_plans, array, grid, sound_speed, frame);
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        Some(self.cache_stats())
    }

    fn quant_quality_stats(&self) -> Option<QuantQualityStats> {
        Some(self.quality_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TinyVbfConfig;
    use neural::init::normal;

    fn model_and_row() -> (TinyVbf, Tensor) {
        let config = TinyVbfConfig::tiny_test();
        let model = TinyVbf::new(&config).unwrap();
        let row = normal(&[config.tokens, config.channels], 0.4, 17).map(|v| v.clamp(-1.0, 1.0));
        (model, row)
    }

    #[test]
    fn float_scheme_matches_float_model_closely() {
        let (mut model, row) = model_and_row();
        let float_out = model.infer_row(&row).unwrap();
        let quantized = QuantizedTinyVbf::from_model(&model, QuantScheme::float());
        let q_out = quantized.infer_row(&row);
        for (a, b) in float_out.as_slice().iter().zip(q_out.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(quantized.name(), "Float");
    }

    #[test]
    fn quantization_error_grows_as_bits_shrink() {
        let (mut model, row) = model_and_row();
        let reference = model.infer_row(&row).unwrap();
        let error = |scheme: QuantScheme| {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            reference
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let e24 = error(QuantScheme::w24());
        let e16 = error(QuantScheme::w16());
        assert!(e24 <= e16 + 1e-6, "e24 {e24} e16 {e16}");
        // 24-bit inference should stay very close to float.
        assert!(e24 < 0.05, "e24 {e24}");
    }

    #[test]
    fn hybrid_schemes_sit_between_float_and_16_bit() {
        let (mut model, row) = model_and_row();
        let reference = model.infer_row(&row).unwrap();
        let max_err = |scheme: QuantScheme| {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            reference
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let h1 = max_err(QuantScheme::hybrid1());
        let h2 = max_err(QuantScheme::hybrid2());
        // Both hybrids keep the output usable (bounded error) …
        assert!(h1 < 0.5 && h2 < 0.5, "h1 {h1} h2 {h2}");
        // … and Hybrid-1 (wider datapath) is at least as accurate as Hybrid-2.
        assert!(h1 <= h2 + 0.05, "h1 {h1} h2 {h2}");
    }

    #[test]
    fn weights_are_quantized_once_up_front() {
        let (model, _) = model_and_row();
        let q = QuantizedTinyVbf::from_model(&model, QuantScheme::hybrid2());
        let format = QuantScheme::hybrid2().weights.unwrap();
        for &v in q.weights().encoder_weight.as_slice() {
            assert_eq!(v, format.quantize(v));
        }
        assert_eq!(q.scheme(), &QuantScheme::hybrid2());
    }

    fn small_frame() -> (ChannelData, LinearArray, ImagingGrid) {
        use ultrasound::{Medium, Phantom, PlaneWaveSimulator};
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.025);
        let phantom = Phantom::builder(0.01, 0.025).add_point_target(0.0, 0.018, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 18, 12);
        (rf, array, grid)
    }

    fn small_quantized(scheme: QuantScheme) -> (QuantizedTinyVbf, ChannelData, LinearArray, ImagingGrid) {
        let (rf, array, grid) = small_frame();
        let config = crate::config::TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        (QuantizedTinyVbf::from_model(&model, scheme), rf, array, grid)
    }

    #[test]
    fn forward_batch_is_bitwise_identical_to_serial_rows() {
        let (quantized, rf, array, grid) = small_quantized(QuantScheme::hybrid2());
        let mut cube = tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).unwrap();
        cube.normalize();
        let rows: Vec<Tensor> = (0..cube.rows()).map(|r| cube_row(&cube, r)).collect();
        let serial: Vec<Tensor> = rows.iter().map(|row| quantized.infer_row(row)).collect();
        for threads in [1, 2, 3, 8] {
            let batch = quantized.forward_batch_with_threads(&rows, threads).unwrap();
            assert_eq!(batch, serial, "threads {threads}");
        }
        assert_eq!(quantized.forward_batch(&rows).unwrap(), serial);
    }

    #[test]
    fn forward_batch_reports_bad_rows_in_input_order() {
        let (quantized, _, _, _) = small_quantized(QuantScheme::w16());
        let channels = quantized.weights().config.channels;
        let rows = vec![Tensor::zeros(&[4, channels]), Tensor::zeros(&[4, channels + 1])];
        assert!(matches!(quantized.forward_batch(&rows), Err(TinyVbfError::ShapeMismatch { .. })));
    }

    #[test]
    fn serving_adapter_is_bitwise_identical_to_direct_quantized_inference() {
        let (quantized, rf, array, grid) = small_quantized(QuantScheme::hybrid1());
        // Reference: the evaluation-harness path (direct ToF, serial rows).
        let direct = quantized.beamform(&rf, &array, &grid, 1540.0).unwrap();
        let backend = QuantizedTinyVbfBeamformer::from_quantized(quantized);
        let served = backend.beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(direct, served, "planned ToF + parallel sweep must not change quantized output");

        // Thread count must not change the cube sweep either.
        let cube = backend.planned_cube(&rf, &array, &grid, 1540.0).unwrap();
        let serial = backend.beamform_cube_with_threads(&cube, &grid, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(serial, backend.beamform_cube_with_threads(&cube, &grid, threads).unwrap(), "threads {threads}");
        }

        // The serving label comes from the scheme.
        assert_eq!(backend.name(), QuantScheme::hybrid1().backend_label());
        assert_eq!(backend.scheme(), &QuantScheme::hybrid1());
        // Channel mismatches are reported, not panicked.
        let wrong = TofCube::zeros(4, grid.num_cols(), array.num_elements() + 1);
        assert!(backend.beamform_cube(&wrong, &grid).is_err());
    }

    #[test]
    fn serving_adapter_accumulates_quality_and_shares_caches() {
        let (quantized, rf, array, grid) = small_quantized(QuantScheme::w16());
        let shared = Arc::new(PlanCache::new(2));
        let fixed = QuantizedTinyVbfBeamformer::with_tof_cache(quantized.clone(), Arc::clone(&shared));
        let float =
            QuantizedTinyVbfBeamformer::with_tof_cache(QuantizedTinyVbf { scheme: QuantScheme::float(), ..quantized }, shared);

        fixed.beamform(&rf, &array, &grid, 1540.0).unwrap();
        fixed.beamform(&rf, &array, &grid, 1540.0).unwrap();
        float.beamform(&rf, &array, &grid, 1540.0).unwrap();

        // One stream shape across both backends: the shared cache builds one plan.
        let cache = fixed.cache_stats();
        assert_eq!(cache.misses, 1, "per-scheme backends must share the ToF plan");
        assert_eq!(cache.hits, 2);
        assert_eq!(fixed.plan_cache_stats().unwrap().misses, 1);

        // Fixed-point backends accumulate finite SQNR; float stays noiseless.
        let q = fixed.quality_stats();
        assert_eq!(q.frames, 2);
        assert!(q.noise_energy > 0.0 && q.signal_energy > 0.0);
        assert!(q.sqnr_db().is_finite() && q.sqnr_db() > 0.0, "sqnr {}", q.sqnr_db());
        let f = float.quality_stats();
        assert_eq!(f.frames, 1);
        assert_eq!(f.noise_energy, 0.0);
        assert!(f.sqnr_db().is_infinite());
        assert_eq!(float.quant_quality_stats().unwrap(), f);

        // Clones (serving workers) feed the same counters.
        fixed.clone().beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(fixed.quality_stats().frames, 3);
    }

    #[test]
    fn output_stays_bounded_under_all_schemes() {
        let (model, row) = model_and_row();
        for scheme in QuantScheme::all() {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            assert!(out.is_finite(), "{}", scheme.name);
            assert!(out.max_abs() <= 1.01, "{}: {}", scheme.name, out.max_abs());
        }
    }
}
