//! Fixed-point (quantized) Tiny-VBF inference.
//!
//! The FPGA deployment runs the network in fixed point. This module replays the exact
//! operation sequence of [`crate::model::TinyVbf`] on exported weights, but rounds
//! every value class onto its scheme-assigned grid: weights once up front, every
//! multiply-accumulate result, every softmax, and every intermediate activation
//! (Table III). Evaluating the resulting images against the float model reproduces
//! Tables IV and V and Fig. 15.

use crate::model::{TinyVbf, TinyVbfWeights, TransformerBlockWeights};
use crate::training::cube_row;
use crate::TinyVbfResult;
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::Beamformer;
use beamforming::tof::{tof_correct, TofCube};
use beamforming::{BeamformError, BeamformResult};
use neural::activation::softmax_rows;
use neural::tensor::Tensor;
use quantize::quantizer::quantize_for_role;
use quantize::{QuantScheme, TensorRole};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::Complex32;

/// A Tiny-VBF model with weights and datapath quantized according to a scheme.
#[derive(Debug, Clone)]
pub struct QuantizedTinyVbf {
    weights: TinyVbfWeights,
    scheme: QuantScheme,
}

impl QuantizedTinyVbf {
    /// Quantizes a trained model's weights according to `scheme`.
    pub fn from_model(model: &TinyVbf, scheme: QuantScheme) -> Self {
        let mut weights = model.export_weights();
        let q = |t: &Tensor| quantize_for_role(t, &scheme, TensorRole::Weight);
        weights.encoder_weight = q(&weights.encoder_weight);
        weights.encoder_bias = q(&weights.encoder_bias);
        if let Some(pos) = weights.positional.as_ref() {
            weights.positional = Some(q(pos));
        }
        for block in weights.blocks.iter_mut() {
            *block = TransformerBlockWeights {
                norm1_gamma: q(&block.norm1_gamma),
                norm1_beta: q(&block.norm1_beta),
                wq: q(&block.wq),
                wk: q(&block.wk),
                wv: q(&block.wv),
                wo: q(&block.wo),
                norm2_gamma: q(&block.norm2_gamma),
                norm2_beta: q(&block.norm2_beta),
                mlp_in_weight: q(&block.mlp_in_weight),
                mlp_in_bias: q(&block.mlp_in_bias),
                mlp_out_weight: q(&block.mlp_out_weight),
                mlp_out_bias: q(&block.mlp_out_bias),
            };
        }
        weights.decoder_in_weight = q(&weights.decoder_in_weight);
        weights.decoder_in_bias = q(&weights.decoder_in_bias);
        weights.decoder_out_weight = q(&weights.decoder_out_weight);
        weights.decoder_out_bias = q(&weights.decoder_out_bias);
        Self { weights, scheme }
    }

    /// The quantization scheme in use.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The (already weight-quantized) exported weights.
    pub fn weights(&self) -> &TinyVbfWeights {
        &self.weights
    }

    fn q_mac(&self, t: Tensor) -> Tensor {
        quantize_for_role(&t, &self.scheme, TensorRole::MacResult)
    }

    fn q_inter(&self, t: Tensor) -> Tensor {
        quantize_for_role(&t, &self.scheme, TensorRole::Intermediate)
    }

    fn q_softmax(&self, t: Tensor) -> Tensor {
        quantize_for_role(&t, &self.scheme, TensorRole::Softmax)
    }

    fn dense(&self, input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
        self.q_mac(input.matmul(weight).add_row_broadcast(bias))
    }

    fn layer_norm(&self, input: &Tensor, gamma: &Tensor, beta: &Tensor) -> Tensor {
        let (rows, cols) = (input.rows(), input.cols());
        let mut out = Tensor::zeros(&[rows, cols]);
        for r in 0..rows {
            let mean: f32 = (0..cols).map(|c| input.at(r, c)).sum::<f32>() / cols as f32;
            let var: f32 = (0..cols).map(|c| (input.at(r, c) - mean).powi(2)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            for c in 0..cols {
                *out.at_mut(r, c) = (input.at(r, c) - mean) * inv_std * gamma.at(0, c) + beta.at(0, c);
            }
        }
        self.q_inter(out)
    }

    fn attention(&self, input: &Tensor, block: &TransformerBlockWeights) -> Tensor {
        let config = &self.weights.config;
        let head_dim = config.model_dim / config.num_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let q = self.q_mac(input.matmul(&block.wq));
        let k = self.q_mac(input.matmul(&block.wk));
        let v = self.q_mac(input.matmul(&block.wv));
        let tokens = input.rows();
        let mut concat = Tensor::zeros(&[tokens, config.model_dim]);
        for h in 0..config.num_heads {
            let start = h * head_dim;
            let qh = q.slice_cols(start, head_dim);
            let kh = k.slice_cols(start, head_dim);
            let vh = v.slice_cols(start, head_dim);
            let scores = self.q_mac(qh.matmul(&kh.transpose()).scale(scale));
            let attention = self.q_softmax(softmax_rows(&scores));
            let oh = self.q_mac(attention.matmul(&vh));
            concat.set_cols(start, &oh);
        }
        self.q_mac(concat.matmul(&block.wo))
    }

    /// Runs quantized inference on one `(tokens, channels)` depth row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the configured channel count.
    pub fn infer_row(&self, row: &Tensor) -> Tensor {
        let config = &self.weights.config;
        assert_eq!(row.cols(), config.channels, "quantized inference: channel mismatch");
        let quant_input = self.q_inter(row.clone());
        let mut x = self.dense(&quant_input, &self.weights.encoder_weight, &self.weights.encoder_bias);
        if let Some(pos) = self.weights.positional.as_ref() {
            let rows = x.rows();
            for r in 0..rows {
                let pr = r.min(pos.rows() - 1);
                for c in 0..x.cols() {
                    *x.at_mut(r, c) += pos.at(pr, c);
                }
            }
            x = self.q_inter(x);
        }
        for block in &self.weights.blocks {
            let normed = self.layer_norm(&x, &block.norm1_gamma, &block.norm1_beta);
            let attended = self.attention(&normed, block);
            let after_attention = self.q_inter(x.add(&attended));
            let normed2 = self.layer_norm(&after_attention, &block.norm2_gamma, &block.norm2_beta);
            let hidden = self
                .dense(&normed2, &block.mlp_in_weight, &block.mlp_in_bias)
                .map(|v| v.max(0.0));
            let mlp = self.dense(&hidden, &block.mlp_out_weight, &block.mlp_out_bias);
            x = self.q_inter(after_attention.add(&mlp));
        }
        let hidden = self
            .dense(&x, &self.weights.decoder_in_weight, &self.weights.decoder_in_bias)
            .map(|v| v.max(0.0));
        let out = self.dense(&hidden, &self.weights.decoder_out_weight, &self.weights.decoder_out_bias);
        self.q_inter(out.map(|v| v.tanh()))
    }

    /// Runs quantized inference over every row of a normalized ToF cube.
    ///
    /// # Errors
    ///
    /// Propagates image-assembly errors.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> TinyVbfResult<IqImage> {
        let mut data = Vec::with_capacity(grid.num_pixels());
        for row in 0..cube.rows() {
            let input = cube_row(cube, row);
            let out = self.infer_row(&input);
            for col in 0..out.rows() {
                data.push(Complex32::new(out.at(col, 0), out.at(col, 1)));
            }
        }
        Ok(IqImage::from_data(data, grid.clone())?)
    }
}

impl Beamformer for QuantizedTinyVbf {
    fn name(&self) -> &str {
        self.scheme.name
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let mut cube = tof_correct(data, array, grid, PlaneWave::zero_angle(), sound_speed)?;
        cube.normalize();
        self.beamform_cube(&cube, grid)
            .map_err(|e| BeamformError::InvalidParameter { name: "quantized_tiny_vbf", reason: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TinyVbfConfig;
    use neural::init::normal;

    fn model_and_row() -> (TinyVbf, Tensor) {
        let config = TinyVbfConfig::tiny_test();
        let model = TinyVbf::new(&config).unwrap();
        let row = normal(&[config.tokens, config.channels], 0.4, 17).map(|v| v.clamp(-1.0, 1.0));
        (model, row)
    }

    #[test]
    fn float_scheme_matches_float_model_closely() {
        let (mut model, row) = model_and_row();
        let float_out = model.infer_row(&row).unwrap();
        let quantized = QuantizedTinyVbf::from_model(&model, QuantScheme::float());
        let q_out = quantized.infer_row(&row);
        for (a, b) in float_out.as_slice().iter().zip(q_out.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(quantized.name(), "Float");
    }

    #[test]
    fn quantization_error_grows_as_bits_shrink() {
        let (mut model, row) = model_and_row();
        let reference = model.infer_row(&row).unwrap();
        let error = |scheme: QuantScheme| {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            reference
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let e24 = error(QuantScheme::w24());
        let e16 = error(QuantScheme::w16());
        assert!(e24 <= e16 + 1e-6, "e24 {e24} e16 {e16}");
        // 24-bit inference should stay very close to float.
        assert!(e24 < 0.05, "e24 {e24}");
    }

    #[test]
    fn hybrid_schemes_sit_between_float_and_16_bit() {
        let (mut model, row) = model_and_row();
        let reference = model.infer_row(&row).unwrap();
        let max_err = |scheme: QuantScheme| {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            reference
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let h1 = max_err(QuantScheme::hybrid1());
        let h2 = max_err(QuantScheme::hybrid2());
        // Both hybrids keep the output usable (bounded error) …
        assert!(h1 < 0.5 && h2 < 0.5, "h1 {h1} h2 {h2}");
        // … and Hybrid-1 (wider datapath) is at least as accurate as Hybrid-2.
        assert!(h1 <= h2 + 0.05, "h1 {h1} h2 {h2}");
    }

    #[test]
    fn weights_are_quantized_once_up_front() {
        let (model, _) = model_and_row();
        let q = QuantizedTinyVbf::from_model(&model, QuantScheme::hybrid2());
        let format = QuantScheme::hybrid2().weights.unwrap();
        for &v in q.weights().encoder_weight.as_slice() {
            assert_eq!(v, format.quantize(v));
        }
        assert_eq!(q.scheme(), &QuantScheme::hybrid2());
    }

    #[test]
    fn output_stays_bounded_under_all_schemes() {
        let (model, row) = model_and_row();
        for scheme in QuantScheme::all() {
            let q = QuantizedTinyVbf::from_model(&model, scheme);
            let out = q.infer_row(&row);
            assert!(out.is_finite(), "{}", scheme.name);
            assert!(out.max_abs() <= 1.01, "{}: {}", scheme.name, out.max_abs());
        }
    }
}
