//! Operations-per-frame accounting (the paper's efficiency comparison).
//!
//! Section IV of the paper compares beamformers by GOPs per 368 × 128 frame:
//! Tiny-VBF 0.34, FCNN 1.4, Tiny-CNN 11.7, the U-Net CNN of \[8\] ≈ 50, the
//! GoogLeNet/U-Net CNN of \[9\] ≈ 199 and MVDR ≈ 98.78 — plus CPU inference times of
//! 0.230 s, 0.520 s, 4 s and 240 s for Tiny-VBF, Tiny-CNN, CNN \[8\] and MVDR.

use crate::config::TinyVbfConfig;
use neural::flops::{activation_ops, attention_ops, conv2d_ops, dense_ops, layernorm_ops, to_gops};
use serde::{Deserialize, Serialize};

/// Paper-reported GOPs/frame for Tiny-VBF (368 × 128 frame).
pub const PAPER_TINY_VBF_GOPS: f64 = 0.34;
/// Paper-reported GOPs/frame for the FCNN baseline \[6\].
pub const PAPER_FCNN_GOPS: f64 = 1.4;
/// Paper-reported GOPs/frame for the Tiny-CNN baseline \[7\].
pub const PAPER_TINY_CNN_GOPS: f64 = 11.7;
/// Paper-reported GOPs/frame for the wavelet U-Net CNN of \[8\].
pub const PAPER_CNN8_GOPS: f64 = 50.0;
/// Paper-reported GOPs/frame for the GoogLeNet+U-Net CNN of \[9\] (384 × 256 frame).
pub const PAPER_CNN9_GOPS: f64 = 199.0;
/// Paper-reported GOPs/frame for MVDR.
pub const PAPER_MVDR_GOPS: f64 = 98.78;

/// Paper-reported CPU inference time for Tiny-VBF (seconds/frame).
pub const PAPER_TINY_VBF_CPU_SECONDS: f64 = 0.230;
/// Paper-reported CPU inference time for Tiny-CNN (seconds/frame).
pub const PAPER_TINY_CNN_CPU_SECONDS: f64 = 0.520;
/// Paper-reported CPU inference time for the CNN of \[8\] (seconds/frame).
pub const PAPER_CNN8_CPU_SECONDS: f64 = 4.0;
/// Paper-reported CPU inference time for MVDR (seconds/frame).
pub const PAPER_MVDR_CPU_SECONDS: f64 = 240.0;

/// GOPs/frame estimate for one model on a given frame geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GopsEstimate {
    /// Model name.
    pub model: String,
    /// Estimated operations per frame.
    pub ops_per_frame: u64,
    /// The same value in GOPs.
    pub gops_per_frame: f64,
}

/// Tiny-VBF operations for one depth row of `tokens` lateral pixels.
pub fn tiny_vbf_ops_per_row(config: &TinyVbfConfig, tokens: usize) -> u64 {
    let d = config.model_dim;
    let mut ops = dense_ops(tokens, config.channels, d);
    if config.positional_embedding {
        ops += (tokens * d) as u64;
    }
    for _ in 0..config.num_blocks {
        ops += layernorm_ops(tokens, d);
        ops += attention_ops(tokens, d, config.num_heads);
        ops += (tokens * d) as u64; // residual add
        ops += layernorm_ops(tokens, d);
        ops += dense_ops(tokens, d, config.mlp_dim);
        ops += activation_ops(tokens * config.mlp_dim);
        ops += dense_ops(tokens, config.mlp_dim, d);
        ops += (tokens * d) as u64; // residual add
    }
    ops += dense_ops(tokens, d, config.decoder_dim);
    ops += activation_ops(tokens * config.decoder_dim);
    ops += dense_ops(tokens, config.decoder_dim, 2);
    ops += activation_ops(tokens * 2);
    ops
}

/// Tiny-VBF operations for a whole `rows × cols` frame.
pub fn tiny_vbf_gops(config: &TinyVbfConfig, rows: usize, cols: usize) -> GopsEstimate {
    let ops = tiny_vbf_ops_per_row(config, cols) * rows as u64;
    GopsEstimate { model: "Tiny-VBF".into(), ops_per_frame: ops, gops_per_frame: to_gops(ops) }
}

/// Tiny-CNN operations for a whole frame (three 3×3 convolutions over the
/// lateral × channel plane per depth row, plus the weighted channel sum).
pub fn tiny_cnn_gops(rows: usize, cols: usize, channels: usize, features: usize) -> GopsEstimate {
    let per_row = conv2d_ops(cols, channels, 1, features, 3)
        + conv2d_ops(cols, channels, features, features, 3)
        + conv2d_ops(cols, channels, features, 1, 3)
        + (2 * cols * channels) as u64;
    let ops = per_row * rows as u64;
    GopsEstimate { model: "Tiny-CNN".into(), ops_per_frame: ops, gops_per_frame: to_gops(ops) }
}

/// FCNN operations for a whole frame (per-pixel dense stack plus the weighted sum).
pub fn fcnn_gops(rows: usize, cols: usize, channels: usize, hidden: usize) -> GopsEstimate {
    let per_pixel = dense_ops(1, channels, hidden) + dense_ops(1, hidden, channels) + (2 * channels) as u64;
    let ops = per_pixel * (rows * cols) as u64;
    GopsEstimate { model: "FCNN".into(), ops_per_frame: ops, gops_per_frame: to_gops(ops) }
}

/// MVDR operation estimate re-exported from the beamforming crate for convenience.
pub fn mvdr_gops(rows: usize, cols: usize, channels: usize) -> GopsEstimate {
    let dims = beamforming::flops::FrameDims { rows, cols, channels };
    let gops = beamforming::flops::mvdr_gops(dims);
    GopsEstimate {
        model: "MVDR".into(),
        ops_per_frame: (gops * 1e9) as u64,
        gops_per_frame: gops,
    }
}

/// DAS operation estimate re-exported from the beamforming crate.
pub fn das_gops(rows: usize, cols: usize, channels: usize) -> GopsEstimate {
    let dims = beamforming::flops::FrameDims { rows, cols, channels };
    let gops = beamforming::flops::das_gops(dims);
    GopsEstimate { model: "DAS".into(), ops_per_frame: (gops * 1e9) as u64, gops_per_frame: gops }
}

/// The full comparison for the paper's 368 × 128 frame with 128 channels.
pub fn paper_frame_comparison() -> Vec<GopsEstimate> {
    let config = TinyVbfConfig::paper();
    vec![
        tiny_vbf_gops(&config, 368, 128),
        fcnn_gops(368, 128, 128, 128),
        tiny_cnn_gops(368, 128, 128, 8),
        mvdr_gops(368, 128, 128),
        das_gops(368, 128, 128),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_vbf_cost_is_sub_gop_at_paper_scale() {
        let est = tiny_vbf_gops(&TinyVbfConfig::paper(), 368, 128);
        assert!(est.gops_per_frame < 1.5, "gops {}", est.gops_per_frame);
        assert!(est.gops_per_frame > 0.05, "gops {}", est.gops_per_frame);
    }

    #[test]
    fn ordering_matches_the_paper() {
        // Tiny-VBF < FCNN < Tiny-CNN < MVDR, as in Section IV.
        let tiny_vbf = tiny_vbf_gops(&TinyVbfConfig::paper(), 368, 128).gops_per_frame;
        let fcnn = fcnn_gops(368, 128, 128, 128).gops_per_frame;
        let tiny_cnn = tiny_cnn_gops(368, 128, 128, 8).gops_per_frame;
        let mvdr = mvdr_gops(368, 128, 128).gops_per_frame;
        assert!(tiny_vbf < fcnn, "tiny_vbf {tiny_vbf} fcnn {fcnn}");
        assert!(fcnn < tiny_cnn, "fcnn {fcnn} tiny_cnn {tiny_cnn}");
        assert!(tiny_cnn < mvdr, "tiny_cnn {tiny_cnn} mvdr {mvdr}");
    }

    #[test]
    fn estimates_are_within_an_order_of_magnitude_of_the_paper() {
        let tiny_vbf = tiny_vbf_gops(&TinyVbfConfig::paper(), 368, 128).gops_per_frame;
        let tiny_cnn = tiny_cnn_gops(368, 128, 128, 8).gops_per_frame;
        let fcnn = fcnn_gops(368, 128, 128, 128).gops_per_frame;
        assert!(tiny_vbf / PAPER_TINY_VBF_GOPS < 10.0 && PAPER_TINY_VBF_GOPS / tiny_vbf < 10.0);
        assert!(tiny_cnn / PAPER_TINY_CNN_GOPS < 10.0 && PAPER_TINY_CNN_GOPS / tiny_cnn < 10.0);
        assert!(fcnn / PAPER_FCNN_GOPS < 10.0 && PAPER_FCNN_GOPS / fcnn < 10.0);
    }

    #[test]
    fn cost_scales_linearly_with_rows() {
        let config = TinyVbfConfig::paper();
        let half = tiny_vbf_gops(&config, 184, 128).ops_per_frame;
        let full = tiny_vbf_gops(&config, 368, 128).ops_per_frame;
        assert_eq!(full, half * 2);
    }

    #[test]
    fn paper_comparison_lists_five_models() {
        let rows = paper_frame_comparison();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.model.as_str()).collect();
        assert!(names.contains(&"Tiny-VBF") && names.contains(&"MVDR") && names.contains(&"DAS"));
    }
}
