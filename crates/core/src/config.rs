//! Tiny-VBF architecture configuration.
//!
//! The model processes the ToF-corrected data cube one depth row at a time: the lateral
//! columns of the row are the transformer's tokens ("patches", `np` in the paper) and
//! each token's feature vector is that pixel's receive-channel vector. The encoder
//! projects the channel vector to a small model dimension, two transformer blocks mix
//! information across the row, and the decoder regresses the (I, Q) pair for every
//! pixel of the row.

use crate::{TinyVbfError, TinyVbfResult};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Tiny-VBF model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TinyVbfConfig {
    /// Number of receive channels in the ToF-corrected input (token feature width).
    pub channels: usize,
    /// Number of tokens per depth row (the lateral pixel count of the frame).
    pub tokens: usize,
    /// Transformer embedding dimension (the paper's "projection dimension").
    pub model_dim: usize,
    /// Number of attention heads (projection dimension is split across them).
    pub num_heads: usize,
    /// Number of transformer blocks in the encoder (the paper uses two).
    pub num_blocks: usize,
    /// Hidden width of the feed-forward sub-layer inside each transformer block.
    pub mlp_dim: usize,
    /// Hidden width of the decoder.
    pub decoder_dim: usize,
    /// Whether a learned positional embedding is added after the encoder projection.
    pub positional_embedding: bool,
    /// RNG seed used for weight initialisation.
    pub seed: u64,
}

impl TinyVbfConfig {
    /// The configuration used for the paper-scale experiments: 128 receive channels and
    /// 128 lateral pixels per row (368 × 128 frames), a small projection dimension so
    /// the whole frame costs well under a GOP.
    pub fn paper() -> Self {
        Self {
            channels: 128,
            tokens: 128,
            model_dim: 8,
            num_heads: 2,
            num_blocks: 2,
            mlp_dim: 16,
            decoder_dim: 16,
            positional_embedding: true,
            seed: 2024,
        }
    }

    /// A reduced configuration matched to the reduced evaluation pipeline (32 channels,
    /// 32-column grids) used by tests, examples and the CI-sized benchmarks.
    pub fn small() -> Self {
        Self {
            channels: 32,
            tokens: 32,
            model_dim: 8,
            num_heads: 2,
            num_blocks: 2,
            mlp_dim: 16,
            decoder_dim: 16,
            positional_embedding: true,
            seed: 7,
        }
    }

    /// The smallest usable configuration, for unit tests of the forward/backward pass.
    pub fn tiny_test() -> Self {
        Self {
            channels: 8,
            tokens: 6,
            model_dim: 4,
            num_heads: 2,
            num_blocks: 2,
            mlp_dim: 8,
            decoder_dim: 8,
            positional_embedding: true,
            seed: 1,
        }
    }

    /// Returns a copy adapted to a given frame geometry (channels and lateral columns).
    pub fn for_frame(&self, channels: usize, tokens: usize) -> Self {
        Self { channels, tokens, ..*self }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::InvalidConfig`] when a dimension is zero or the head
    /// count does not divide the model dimension.
    pub fn validate(&self) -> TinyVbfResult<()> {
        if self.channels == 0 || self.tokens == 0 || self.model_dim == 0 || self.mlp_dim == 0 || self.decoder_dim == 0 {
            return Err(TinyVbfError::InvalidConfig("all dimensions must be nonzero".into()));
        }
        if self.num_blocks == 0 {
            return Err(TinyVbfError::InvalidConfig("at least one transformer block is required".into()));
        }
        if self.num_heads == 0 || self.model_dim % self.num_heads != 0 {
            return Err(TinyVbfError::InvalidConfig(format!(
                "num_heads ({}) must be nonzero and divide model_dim ({})",
                self.num_heads, self.model_dim
            )));
        }
        Ok(())
    }
}

impl Default for TinyVbfConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        TinyVbfConfig::paper().validate().unwrap();
        TinyVbfConfig::small().validate().unwrap();
        TinyVbfConfig::tiny_test().validate().unwrap();
        assert_eq!(TinyVbfConfig::default(), TinyVbfConfig::paper());
    }

    #[test]
    fn paper_preset_matches_frame_geometry() {
        let c = TinyVbfConfig::paper();
        assert_eq!(c.channels, 128);
        assert_eq!(c.tokens, 128);
        assert_eq!(c.num_blocks, 2);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = TinyVbfConfig::paper();
        c.num_heads = 3;
        assert!(c.validate().is_err());
        c = TinyVbfConfig::paper();
        c.model_dim = 0;
        assert!(c.validate().is_err());
        c = TinyVbfConfig::paper();
        c.num_blocks = 0;
        assert!(c.validate().is_err());
        c = TinyVbfConfig::paper();
        c.num_heads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn for_frame_overrides_geometry_only() {
        let c = TinyVbfConfig::paper().for_frame(32, 48);
        assert_eq!(c.channels, 32);
        assert_eq!(c.tokens, 48);
        assert_eq!(c.model_dim, TinyVbfConfig::paper().model_dim);
    }
}
