//! Tiny-VBF: a vision-transformer beamformer for ultrasound single-angle plane-wave
//! imaging — reproduction of the DATE 2024 paper.
//!
//! The crate ties the substrates together into the paper's contribution:
//!
//! * [`config`] — the Tiny-VBF architecture hyper-parameters (paper-scale and reduced
//!   evaluation-scale presets),
//! * [`model`] — the ViT encoder/decoder model with handwritten forward/backward,
//! * [`baselines`] — the Tiny-CNN and FCNN learned baselines the paper compares against,
//! * [`training`] — dataset assembly (MVDR IQ targets from simulated acquisitions) and
//!   the MSE-before-log-compression training loop with Adam + polynomial decay,
//! * [`inference`] — [`beamforming::pipeline::Beamformer`] adapters so the learned
//!   models drop into the same evaluation harness as DAS and MVDR,
//! * [`gops`] — operations-per-frame accounting (the 0.34 GOPs/frame headline),
//! * [`quantized`] — fixed-point inference under the paper's quantization schemes,
//! * [`evaluation`] — the end-to-end experiment harness that regenerates the paper's
//!   tables and figures.
//!
//! # Example
//!
//! ```
//! use tiny_vbf::config::TinyVbfConfig;
//! use tiny_vbf::model::TinyVbf;
//!
//! let config = TinyVbfConfig::tiny_test();
//! let model = TinyVbf::new(&config)?;
//! assert!(model.num_weights() > 0);
//! # Ok::<(), tiny_vbf::TinyVbfError>(())
//! ```

#![deny(missing_docs)]

pub mod baselines;
pub mod config;
pub mod evaluation;
pub mod gops;
pub mod inference;
pub mod model;
pub mod quantized;
mod quantized_int;
pub mod training;

pub use config::TinyVbfConfig;
pub use model::TinyVbf;

use std::error::Error;
use std::fmt;

/// Errors produced by the Tiny-VBF model and its training/evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TinyVbfError {
    /// The architecture configuration is inconsistent.
    InvalidConfig(
        /// Explanation of the inconsistency.
        String,
    ),
    /// Input data does not match the configured frame geometry.
    ShapeMismatch {
        /// Expected geometry description.
        expected: String,
        /// Actual geometry description.
        actual: String,
    },
    /// An underlying substrate (beamforming, neural, …) failed.
    Substrate(
        /// Rendered substrate error.
        String,
    ),
}

impl fmt::Display for TinyVbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TinyVbfError::InvalidConfig(reason) => write!(f, "invalid Tiny-VBF configuration: {reason}"),
            TinyVbfError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TinyVbfError::Substrate(msg) => write!(f, "substrate error: {msg}"),
        }
    }
}

impl Error for TinyVbfError {}

impl From<beamforming::BeamformError> for TinyVbfError {
    fn from(e: beamforming::BeamformError) -> Self {
        TinyVbfError::Substrate(e.to_string())
    }
}

impl From<neural::NeuralError> for TinyVbfError {
    fn from(e: neural::NeuralError) -> Self {
        TinyVbfError::Substrate(e.to_string())
    }
}

impl From<ultrasound::UltrasoundError> for TinyVbfError {
    fn from(e: ultrasound::UltrasoundError) -> Self {
        TinyVbfError::Substrate(e.to_string())
    }
}

impl From<usmetrics::MetricsError> for TinyVbfError {
    fn from(e: usmetrics::MetricsError) -> Self {
        TinyVbfError::Substrate(e.to_string())
    }
}

/// Convenience result alias.
pub type TinyVbfResult<T> = Result<T, TinyVbfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_convert() {
        assert!(TinyVbfError::InvalidConfig("heads".into()).to_string().contains("heads"));
        let bf: TinyVbfError = beamforming::BeamformError::SingularMatrix.into();
        assert!(bf.to_string().contains("singular"));
        let ne: TinyVbfError = neural::NeuralError::DeserializeError("x".into()).into();
        assert!(ne.to_string().contains("x"));
    }
}
