//! Dataset assembly and training loops.
//!
//! Following the paper: the network input is the ToF-corrected channel-data cube
//! normalized to `[-1, 1]`, the regression target is the MVDR-beamformed IQ image
//! (also peak-normalized), and the loss is mean squared error on the IQ values *before*
//! log compression, optimised with Adam under a cyclic polynomial-decay learning-rate
//! schedule.

use crate::baselines::{Fcnn, TinyCnn};
use crate::model::TinyVbf;
use crate::TinyVbfResult;
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::mvdr::Mvdr;
use beamforming::tof::{tof_correct, TofCube};
use neural::loss::mse;
use neural::optimizer::{Adam, Optimizer};
use neural::schedule::{LrSchedule, PolynomialDecay};
use neural::tensor::Tensor;
use serde::{Deserialize, Serialize};
use ultrasound::dataset::TrainingFrame;
use ultrasound::{LinearArray, PlaneWave};

/// One training example: normalized ToF cube input and normalized MVDR IQ target.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// Peak-normalized ToF-corrected channel cube (the network input).
    pub input: TofCube,
    /// Peak-normalized MVDR IQ image (the regression target).
    pub target: IqImage,
}

impl TrainingExample {
    /// Extracts the `(tokens, channels)` input tensor for one depth row.
    pub fn input_row(&self, row: usize) -> Tensor {
        cube_row(&self.input, row)
    }

    /// Extracts the `(tokens, 2)` IQ target tensor for one depth row.
    pub fn target_row(&self, row: usize) -> Tensor {
        let cols = self.target.num_cols();
        let mut t = Tensor::zeros(&[cols, 2]);
        for col in 0..cols {
            let v = self.target.value(row, col);
            *t.at_mut(col, 0) = v.re;
            *t.at_mut(col, 1) = v.im;
        }
        t
    }

    /// Extracts the `(tokens, 1)` RF (real-part) target tensor for one depth row, used
    /// by the adaptive-DAS baselines.
    pub fn target_rf_row(&self, row: usize) -> Tensor {
        let cols = self.target.num_cols();
        let mut t = Tensor::zeros(&[cols, 1]);
        for col in 0..cols {
            *t.at_mut(col, 0) = self.target.value(row, col).re;
        }
        t
    }

    /// Number of depth rows.
    pub fn num_rows(&self) -> usize {
        self.input.rows()
    }
}

/// Extracts one depth row of a ToF cube as a `(cols, channels)` tensor.
pub fn cube_row(cube: &TofCube, row: usize) -> Tensor {
    let cols = cube.cols();
    let channels = cube.channels();
    let mut t = Tensor::zeros(&[cols, channels]);
    for col in 0..cols {
        let pixel = cube.pixel_channels(row, col);
        for ch in 0..channels {
            *t.at_mut(col, ch) = pixel[ch];
        }
    }
    t
}

/// Builds training examples from simulated acquisitions: ToF-corrects each frame and
/// beamforms its MVDR target, normalizing both to `[-1, 1]`.
///
/// # Errors
///
/// Propagates beamforming errors (shape mismatches, singular covariances).
pub fn build_training_set(
    frames: &[TrainingFrame],
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
    mvdr: &Mvdr,
) -> TinyVbfResult<Vec<TrainingExample>> {
    let mut examples = Vec::with_capacity(frames.len());
    for frame in frames {
        let mut cube = tof_correct(&frame.channel_data, array, grid, PlaneWave::zero_angle(), sound_speed)?;
        cube.normalize();
        let iq = mvdr.beamform_iq(&frame.channel_data, array, grid, sound_speed)?;
        let peak = iq.peak().max(1e-12);
        let normalized: Vec<usdsp::Complex32> = iq.as_slice().iter().map(|c| *c / peak).collect();
        let target = IqImage::from_data(normalized, grid.clone())?;
        examples.push(TrainingExample { input: cube, target });
    }
    Ok(examples)
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training examples.
    pub epochs: usize,
    /// Learning-rate schedule (the paper's polynomial decay).
    pub schedule: PolynomialDecay,
    /// Optimizer steps are taken every `rows_per_step` depth rows (gradient
    /// accumulation), emulating the paper's batch size of 10 samples.
    pub rows_per_step: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self { epochs: 1000, schedule: PolynomialDecay::paper(), rows_per_step: 10 }
    }
}

impl TrainerConfig {
    /// A short schedule used by tests, examples and the reduced evaluation pipeline.
    pub fn quick(epochs: usize) -> Self {
        Self { epochs, schedule: PolynomialDecay::compressed(epochs as u64 * 4), rows_per_step: 8 }
    }
}

/// Per-epoch loss history of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainingHistory {
    /// Loss of the final epoch (`None` when no epochs ran).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Trains a Tiny-VBF model on IQ targets.
pub fn train_tiny_vbf(model: &mut TinyVbf, examples: &[TrainingExample], config: &TrainerConfig) -> TrainingHistory {
    let mut adam = Adam::new(config.schedule.learning_rate(0).max(1e-8));
    let mut history = TrainingHistory { epoch_losses: Vec::with_capacity(config.epochs) };
    let mut rows_accumulated = 0usize;
    for epoch in 0..config.epochs {
        adam.set_learning_rate(config.schedule.learning_rate(epoch as u64));
        let mut epoch_loss = 0.0f32;
        let mut row_count = 0usize;
        for example in examples {
            for row in 0..example.num_rows() {
                let input = example.input_row(row);
                let target = example.target_row(row);
                let prediction = match model.forward_row(&input) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let (loss, grad) = mse(&prediction, &target);
                model.backward_row(&grad);
                epoch_loss += loss;
                row_count += 1;
                rows_accumulated += 1;
                if rows_accumulated >= config.rows_per_step {
                    adam.step(model.params_mut());
                    rows_accumulated = 0;
                }
            }
        }
        if rows_accumulated > 0 {
            adam.step(model.params_mut());
            rows_accumulated = 0;
        }
        history.epoch_losses.push(if row_count > 0 { epoch_loss / row_count as f32 } else { 0.0 });
        let _ = epoch;
    }
    history
}

/// Trains the Tiny-CNN baseline on RF (real-part) targets.
pub fn train_tiny_cnn(model: &mut TinyCnn, examples: &[TrainingExample], config: &TrainerConfig) -> TrainingHistory {
    let mut adam = Adam::new(config.schedule.learning_rate(0).max(1e-8));
    let mut history = TrainingHistory { epoch_losses: Vec::with_capacity(config.epochs) };
    for epoch in 0..config.epochs {
        adam.set_learning_rate(config.schedule.learning_rate(epoch as u64));
        let mut epoch_loss = 0.0f32;
        let mut row_count = 0usize;
        let mut rows_accumulated = 0usize;
        for example in examples {
            for row in 0..example.num_rows() {
                let input = example.input_row(row);
                let target = example.target_rf_row(row);
                let prediction = match model.forward_row(&input) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let (loss, grad) = mse(&prediction, &target);
                model.backward_row(&grad);
                epoch_loss += loss;
                row_count += 1;
                rows_accumulated += 1;
                if rows_accumulated >= config.rows_per_step {
                    adam.step(model.params_mut());
                    rows_accumulated = 0;
                }
            }
        }
        adam.step(model.params_mut());
        history.epoch_losses.push(if row_count > 0 { epoch_loss / row_count as f32 } else { 0.0 });
    }
    history
}

/// Trains the FCNN baseline on RF (real-part) targets.
pub fn train_fcnn(model: &mut Fcnn, examples: &[TrainingExample], config: &TrainerConfig) -> TrainingHistory {
    let mut adam = Adam::new(config.schedule.learning_rate(0).max(1e-8));
    let mut history = TrainingHistory { epoch_losses: Vec::with_capacity(config.epochs) };
    for epoch in 0..config.epochs {
        adam.set_learning_rate(config.schedule.learning_rate(epoch as u64));
        let mut epoch_loss = 0.0f32;
        let mut row_count = 0usize;
        let mut rows_accumulated = 0usize;
        for example in examples {
            for row in 0..example.num_rows() {
                let input = example.input_row(row);
                let target = example.target_rf_row(row);
                let prediction = match model.forward_row(&input) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let (loss, grad) = mse(&prediction, &target);
                model.backward_row(&grad);
                epoch_loss += loss;
                row_count += 1;
                rows_accumulated += 1;
                if rows_accumulated >= config.rows_per_step {
                    adam.step(model.params_mut());
                    rows_accumulated = 0;
                }
            }
        }
        adam.step(model.params_mut());
        history.epoch_losses.push(if row_count > 0 { epoch_loss / row_count as f32 } else { 0.0 });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TinyVbfConfig;
    use ultrasound::dataset::TrainingSetConfig;
    use ultrasound::LinearArray;

    fn small_setup() -> (Vec<TrainingExample>, LinearArray, ImagingGrid) {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 24, 16);
        let frames = TrainingSetConfig {
            array: array.clone(),
            max_depth: 0.022,
            speckle_density: 40.0,
            max_cysts: 1,
            max_points: 2,
            degradation_probability: 0.0,
            ..TrainingSetConfig::small()
        }
        .generate(2)
        .unwrap();
        let examples = build_training_set(&frames, &array, &grid, 1540.0, &Mvdr::fast()).unwrap();
        (examples, array, grid)
    }

    #[test]
    fn training_set_is_normalized() {
        let (examples, _, grid) = small_setup();
        assert_eq!(examples.len(), 2);
        for ex in &examples {
            assert!(ex.input.peak() <= 1.0 + 1e-5);
            assert!(ex.target.peak() <= 1.0 + 1e-5);
            assert_eq!(ex.num_rows(), grid.num_rows());
            assert_eq!(ex.input_row(0).shape(), &[grid.num_cols(), 32]);
            assert_eq!(ex.target_row(0).shape(), &[grid.num_cols(), 2]);
            assert_eq!(ex.target_rf_row(0).shape(), &[grid.num_cols(), 1]);
        }
    }

    #[test]
    fn tiny_vbf_training_improves_loss() {
        let (examples, array, grid) = small_setup();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let mut model = TinyVbf::new(&config).unwrap();
        let history = train_tiny_vbf(&mut model, &examples, &TrainerConfig::quick(6));
        assert_eq!(history.epoch_losses.len(), 6);
        assert!(history.improved(), "losses {:?}", history.epoch_losses);
        assert!(history.final_loss().unwrap() > 0.0);
    }

    #[test]
    fn baseline_training_improves_loss() {
        let (examples, array, _grid) = small_setup();
        let mut cnn = TinyCnn::new(array.num_elements(), 3, 1).unwrap();
        let cnn_history = train_tiny_cnn(&mut cnn, &examples, &TrainerConfig::quick(4));
        assert!(cnn_history.improved(), "cnn losses {:?}", cnn_history.epoch_losses);

        let mut fcnn = Fcnn::new(array.num_elements(), 16, 1).unwrap();
        let fcnn_history = train_fcnn(&mut fcnn, &examples, &TrainerConfig::quick(4));
        assert!(fcnn_history.improved(), "fcnn losses {:?}", fcnn_history.epoch_losses);
    }

    #[test]
    fn trainer_config_defaults_match_paper() {
        let cfg = TrainerConfig::default();
        assert_eq!(cfg.epochs, 1000);
        assert_eq!(cfg.rows_per_step, 10);
        assert!((cfg.schedule.initial_lr - 1e-4).abs() < 1e-9);
        assert!((cfg.schedule.final_lr - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn history_helpers() {
        let h = TrainingHistory { epoch_losses: vec![] };
        assert!(h.final_loss().is_none());
        assert!(!h.improved());
        let h = TrainingHistory { epoch_losses: vec![1.0, 0.5] };
        assert_eq!(h.final_loss(), Some(0.5));
        assert!(h.improved());
    }
}
