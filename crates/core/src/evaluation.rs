//! End-to-end experiment harness.
//!
//! Everything the benchmark binaries need to regenerate the paper's tables and figures
//! lives here: dataset construction, (reduced-scale) training of Tiny-VBF and the
//! learned baselines, beamforming every method over the PICMUS-like evaluation frames,
//! and reducing the images to the paper's metrics.

use crate::baselines::{Fcnn, TinyCnn};
use crate::config::TinyVbfConfig;
use crate::inference::{FcnnBeamformer, TinyCnnBeamformer, TinyVbfBeamformer};
use crate::model::TinyVbf;
use crate::quantized::QuantizedTinyVbf;
use crate::training::{build_training_set, train_fcnn, train_tiny_cnn, train_tiny_vbf, TrainerConfig, TrainingHistory};
use crate::TinyVbfResult;
use beamforming::bmode::BModeImage;
use beamforming::grid::ImagingGrid;
use beamforming::mvdr::Mvdr;
use beamforming::pipeline::{Beamformer, DelayAndSum};
use quantize::QuantScheme;
use serde::{Deserialize, Serialize};
use ultrasound::dataset::TrainingSetConfig;
use ultrasound::picmus::{PicmusDataset, PicmusFrame, PicmusKind};
use ultrasound::LinearArray;
use usmetrics::psf::LateralPsf;
use usmetrics::region::CircularRoi;
use usmetrics::{contrast_metrics, resolution_metrics, ContrastMetrics, ResolutionMetrics};

/// Scale / size parameters of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// PICMUS probe scale in `(0, 1]` (1.0 = the full 128-channel L11-5v).
    pub scale: f32,
    /// Depth rows of the reconstruction grid.
    pub grid_rows: usize,
    /// Lateral columns of the reconstruction grid.
    pub grid_cols: usize,
    /// Shallowest reconstructed depth in metres.
    pub min_depth: f32,
    /// Deepest reconstructed depth in metres.
    pub max_depth: f32,
    /// Number of random training frames to simulate.
    pub training_frames: usize,
    /// Training epochs (the paper uses 1000; reduced runs use a handful).
    pub epochs: usize,
    /// Speed of sound assumed by all beamformers.
    pub sound_speed: f32,
    /// MVDR configuration used for targets and for the MVDR table rows.
    pub mvdr: Mvdr,
    /// Base RNG seed.
    pub seed: u64,
    /// Dynamic range for B-mode rendering.
    pub dynamic_range: f32,
}

impl EvaluationConfig {
    /// The reduced-scale configuration used by the benchmark harness: 32 channels,
    /// 128 × 48 grid over 5–42 mm, a few training frames and a short schedule. Keeps a
    /// full table regeneration in the minutes range on a laptop CPU while preserving
    /// the paper's qualitative ordering.
    pub fn reduced() -> Self {
        Self {
            scale: 0.25,
            grid_rows: 128,
            grid_cols: 48,
            min_depth: 5.0e-3,
            max_depth: 42.0e-3,
            training_frames: 3,
            epochs: 6,
            sound_speed: 1540.0,
            mvdr: Mvdr::fast(),
            seed: 2024,
            dynamic_range: 60.0,
        }
    }

    /// A minimal configuration for unit/integration tests (seconds, not minutes).
    pub fn test_size() -> Self {
        Self {
            scale: 0.15,
            grid_rows: 48,
            grid_cols: 20,
            min_depth: 8.0e-3,
            max_depth: 20.0e-3,
            training_frames: 2,
            epochs: 2,
            sound_speed: 1540.0,
            mvdr: Mvdr::fast(),
            seed: 7,
            dynamic_range: 60.0,
        }
    }

    /// The paper-scale configuration (128 channels, 368 × 128 grid, 1000 epochs).
    /// Running this end to end takes hours on a CPU; it exists so the full experiment is
    /// expressible, not because the benchmark harness runs it by default.
    pub fn paper() -> Self {
        Self {
            scale: 1.0,
            grid_rows: 368,
            grid_cols: 128,
            min_depth: 5.0e-3,
            max_depth: 45.0e-3,
            training_frames: 32,
            epochs: 1000,
            sound_speed: 1540.0,
            mvdr: Mvdr::default(),
            seed: 2024,
            dynamic_range: 60.0,
        }
    }

    /// The probe used at this scale.
    pub fn array(&self) -> LinearArray {
        PicmusDataset::contrast(PicmusKind::InSilico).with_scale(self.scale).array()
    }

    /// The reconstruction grid used at this scale.
    pub fn grid(&self) -> ImagingGrid {
        ImagingGrid::for_array(&self.array(), self.min_depth, self.max_depth - self.min_depth, self.grid_rows, self.grid_cols)
    }

    fn picmus(&self, dataset: PicmusDataset) -> PicmusDataset {
        dataset.with_scale(self.scale).with_max_depth(self.max_depth)
    }

    /// Builds the contrast evaluation frame for the given acquisition kind.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn contrast_frame(&self, kind: PicmusKind) -> TinyVbfResult<PicmusFrame> {
        Ok(self.picmus(PicmusDataset::contrast(kind)).build(self.seed ^ 0xC0)?)
    }

    /// Builds the resolution evaluation frame for the given acquisition kind.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn resolution_frame(&self, kind: PicmusKind) -> TinyVbfResult<PicmusFrame> {
        Ok(self.picmus(PicmusDataset::resolution(kind)).build(self.seed ^ 0xE5)?)
    }
}

/// The three learned models after (reduced-scale) training, plus their loss histories.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// The trained Tiny-VBF model.
    pub tiny_vbf: TinyVbf,
    /// The trained Tiny-CNN baseline.
    pub tiny_cnn: TinyCnn,
    /// The trained FCNN baseline.
    pub fcnn: Fcnn,
    /// Loss history of Tiny-VBF training.
    pub tiny_vbf_history: TrainingHistory,
    /// Loss history of Tiny-CNN training.
    pub tiny_cnn_history: TrainingHistory,
    /// Loss history of FCNN training.
    pub fcnn_history: TrainingHistory,
}

/// Simulates a random training set and trains Tiny-VBF, Tiny-CNN and FCNN on MVDR
/// targets, all at the scale given by `config`.
///
/// # Errors
///
/// Propagates simulator and beamforming errors.
pub fn train_models(config: &EvaluationConfig) -> TinyVbfResult<TrainedModels> {
    let array = config.array();
    let grid = config.grid();
    let frames = TrainingSetConfig {
        array: array.clone(),
        max_depth: config.max_depth,
        speckle_density: 300.0 * config.scale,
        max_cysts: 2,
        max_points: 3,
        degradation_probability: 0.25,
        seed: config.seed,
        ..TrainingSetConfig::default()
    }
    .generate(config.training_frames)?;
    let examples = build_training_set(&frames, &array, &grid, config.sound_speed, &config.mvdr)?;

    let trainer = TrainerConfig::quick(config.epochs);
    let model_config = TinyVbfConfig::paper().for_frame(array.num_elements(), grid.num_cols());
    let mut tiny_vbf = TinyVbf::new(&model_config)?;
    let tiny_vbf_history = train_tiny_vbf(&mut tiny_vbf, &examples, &trainer);

    let mut tiny_cnn = TinyCnn::new(array.num_elements(), 4, config.seed)?;
    let tiny_cnn_history = train_tiny_cnn(&mut tiny_cnn, &examples, &trainer);

    let mut fcnn = Fcnn::new(array.num_elements(), 32, config.seed)?;
    let fcnn_history = train_fcnn(&mut fcnn, &examples, &trainer);

    Ok(TrainedModels { tiny_vbf, tiny_cnn, fcnn, tiny_vbf_history, tiny_cnn_history, fcnn_history })
}

/// The beamformers compared in the paper's tables, in table order:
/// DAS, MVDR, Tiny-CNN, Tiny-VBF (FCNN is included at the end for the GOPs comparison).
pub fn beamformer_suite(models: &TrainedModels, config: &EvaluationConfig) -> Vec<Box<dyn Beamformer>> {
    vec![
        Box::new(DelayAndSum::default()),
        Box::new(config.mvdr.clone()),
        Box::new(TinyCnnBeamformer::new(models.tiny_cnn.clone())),
        Box::new(TinyVbfBeamformer::new(models.tiny_vbf.clone())),
        Box::new(FcnnBeamformer::new(models.fcnn.clone())),
    ]
}

/// One row of the contrast tables (Table I / Table V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContrastTableRow {
    /// Beamformer (or quantization scheme) name.
    pub beamformer: String,
    /// Mean contrast metrics over all evaluated cysts.
    pub metrics: ContrastMetrics,
}

/// One row of the resolution tables (Table II / Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionTableRow {
    /// Beamformer (or quantization scheme) name.
    pub beamformer: String,
    /// Mean axial/lateral FWHM over all evaluated point targets.
    pub metrics: ResolutionMetrics,
}

fn cysts_in_view(frame: &PicmusFrame, grid: &ImagingGrid) -> Vec<CircularRoi> {
    frame
        .cysts()
        .iter()
        .filter(|c| c.cz - c.radius > grid.z(0) && c.cz + c.radius < grid.z(grid.num_rows() - 1))
        .map(|c| CircularRoi::new(c.cx, c.cz, c.radius))
        .collect()
}

fn central_targets_in_view(frame: &PicmusFrame, grid: &ImagingGrid) -> Vec<(f32, f32)> {
    frame
        .point_targets()
        .iter()
        .filter(|p| p.x.abs() < 0.5e-3 && p.z > grid.z(0) + 1e-3 && p.z < grid.z(grid.num_rows() - 1) - 1e-3)
        .map(|p| (p.x, p.z))
        .collect()
}

/// Evaluates contrast metrics (mean over cysts) for a set of beamformers on one frame.
///
/// # Errors
///
/// Propagates beamforming and metric errors.
pub fn contrast_table(
    beamformers: &[Box<dyn Beamformer>],
    config: &EvaluationConfig,
    kind: PicmusKind,
) -> TinyVbfResult<Vec<ContrastTableRow>> {
    let frame = config.contrast_frame(kind)?;
    let grid = config.grid();
    let cysts = cysts_in_view(&frame, &grid);
    let mut rows = Vec::with_capacity(beamformers.len());
    for beamformer in beamformers {
        let iq = beamformer.beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)?;
        let envelope = iq.envelope();
        let mut per_cyst = Vec::with_capacity(cysts.len());
        for cyst in &cysts {
            per_cyst.push(contrast_metrics(&envelope, &grid, *cyst)?);
        }
        let metrics = ContrastMetrics::mean_of(&per_cyst)
            .unwrap_or(ContrastMetrics { cr_db: 0.0, cnr: 0.0, gcnr: 0.0 });
        rows.push(ContrastTableRow { beamformer: beamformer.name().to_string(), metrics });
    }
    Ok(rows)
}

/// Evaluates resolution metrics (mean over the central point targets) for a set of
/// beamformers on one frame.
///
/// # Errors
///
/// Propagates beamforming and metric errors.
pub fn resolution_table(
    beamformers: &[Box<dyn Beamformer>],
    config: &EvaluationConfig,
    kind: PicmusKind,
) -> TinyVbfResult<Vec<ResolutionTableRow>> {
    let frame = config.resolution_frame(kind)?;
    let grid = config.grid();
    let targets = central_targets_in_view(&frame, &grid);
    let mut rows = Vec::with_capacity(beamformers.len());
    for beamformer in beamformers {
        let iq = beamformer.beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)?;
        let envelope = iq.envelope();
        let mut per_target = Vec::new();
        for &(x, z) in &targets {
            if let Ok(m) = resolution_metrics(&envelope, &grid, x, z) {
                per_target.push(m);
            }
        }
        let metrics = ResolutionMetrics::mean_of(&per_target)
            .unwrap_or(ResolutionMetrics { axial_mm: f32::NAN, lateral_mm: f32::NAN });
        rows.push(ResolutionTableRow { beamformer: beamformer.name().to_string(), metrics });
    }
    Ok(rows)
}

/// One row of the FPGA quantization-quality tables (Tables IV and V combined).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedQualityRow {
    /// Quantization scheme name.
    pub scheme: String,
    /// Resolution metrics of the quantized model (Table IV).
    pub resolution: ResolutionMetrics,
    /// Contrast metrics of the quantized model (Table V).
    pub contrast: ContrastMetrics,
}

/// Evaluates the trained Tiny-VBF under every quantization scheme of the paper,
/// measuring both resolution (Table IV) and contrast (Table V) on the given kind.
///
/// # Errors
///
/// Propagates beamforming and metric errors.
pub fn quantized_quality_table(
    model: &TinyVbf,
    config: &EvaluationConfig,
    kind: PicmusKind,
) -> TinyVbfResult<Vec<QuantizedQualityRow>> {
    let grid = config.grid();
    let resolution_frame = config.resolution_frame(kind)?;
    let contrast_frame = config.contrast_frame(kind)?;
    let targets = central_targets_in_view(&resolution_frame, &grid);
    let cysts = cysts_in_view(&contrast_frame, &grid);

    let mut rows = Vec::new();
    for scheme in QuantScheme::all() {
        let quantized = QuantizedTinyVbf::from_model(model, scheme);

        let res_iq = quantized.beamform(&resolution_frame.channel_data, &resolution_frame.array, &grid, config.sound_speed)?;
        let res_envelope = res_iq.envelope();
        let mut per_target = Vec::new();
        for &(x, z) in &targets {
            if let Ok(m) = resolution_metrics(&res_envelope, &grid, x, z) {
                per_target.push(m);
            }
        }
        let resolution = ResolutionMetrics::mean_of(&per_target)
            .unwrap_or(ResolutionMetrics { axial_mm: f32::NAN, lateral_mm: f32::NAN });

        let con_iq = quantized.beamform(&contrast_frame.channel_data, &contrast_frame.array, &grid, config.sound_speed)?;
        let con_envelope = con_iq.envelope();
        let mut per_cyst = Vec::new();
        for cyst in &cysts {
            per_cyst.push(contrast_metrics(&con_envelope, &grid, *cyst)?);
        }
        let contrast = ContrastMetrics::mean_of(&per_cyst)
            .unwrap_or(ContrastMetrics { cr_db: 0.0, cnr: 0.0, gcnr: 0.0 });

        rows.push(QuantizedQualityRow { scheme: scheme.name.to_string(), resolution, contrast });
    }
    Ok(rows)
}

/// Lateral PSF profiles for every beamformer at the requested depths (Figs. 12 and 14;
/// applied to the contrast frame it gives the Fig. 9(b) lateral variation plot).
///
/// # Errors
///
/// Propagates beamforming errors.
pub fn lateral_psfs(
    beamformers: &[Box<dyn Beamformer>],
    config: &EvaluationConfig,
    kind: PicmusKind,
    depths: &[f32],
) -> TinyVbfResult<Vec<(String, Vec<LateralPsf>)>> {
    let frame = config.resolution_frame(kind)?;
    let grid = config.grid();
    let mut out = Vec::with_capacity(beamformers.len());
    for beamformer in beamformers {
        let iq = beamformer.beamform(&frame.channel_data, &frame.array, &grid, config.sound_speed)?;
        let envelope = iq.envelope();
        let psfs = depths.iter().map(|&d| LateralPsf::from_envelope(&envelope, &grid, d)).collect();
        out.push((beamformer.name().to_string(), psfs));
    }
    Ok(out)
}

/// B-mode images of every beamformer on the contrast or resolution frame (Figs. 1(a),
/// 9(a), 10, 11, 13 and 15).
///
/// # Errors
///
/// Propagates beamforming errors.
pub fn bmode_gallery(
    beamformers: &[Box<dyn Beamformer>],
    config: &EvaluationConfig,
    kind: PicmusKind,
    use_contrast_frame: bool,
) -> TinyVbfResult<Vec<(String, BModeImage)>> {
    let frame = if use_contrast_frame { config.contrast_frame(kind)? } else { config.resolution_frame(kind)? };
    let grid = config.grid();
    let mut out = Vec::with_capacity(beamformers.len());
    for beamformer in beamformers {
        let bmode = beamformer.beamform_bmode(&frame.channel_data, &frame.array, &grid, config.sound_speed, config.dynamic_range)?;
        out.push((beamformer.name().to_string(), bmode));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_models(config: &EvaluationConfig) -> TrainedModels {
        train_models(config).expect("training should succeed at test size")
    }

    #[test]
    fn reduced_and_paper_configs_are_consistent() {
        let reduced = EvaluationConfig::reduced();
        assert_eq!(reduced.grid().num_rows(), reduced.grid_rows);
        assert_eq!(reduced.grid().num_cols(), reduced.grid_cols);
        let paper = EvaluationConfig::paper();
        assert_eq!(paper.grid_rows, 368);
        assert_eq!(paper.grid_cols, 128);
        assert_eq!(paper.array().num_elements(), 128);
        assert_eq!(paper.epochs, 1000);
    }

    #[test]
    fn training_and_contrast_table_at_test_size() {
        let config = EvaluationConfig::test_size();
        let models = quick_models(&config);
        assert!(models.tiny_vbf_history.improved() || models.tiny_vbf_history.epoch_losses.len() < 2);

        let beamformers = beamformer_suite(&models, &config);
        assert_eq!(beamformers.len(), 5);
        let table = contrast_table(&beamformers, &config, PicmusKind::InSilico).unwrap();
        assert_eq!(table.len(), 5);
        for row in &table {
            assert!(row.metrics.cr_db.is_finite(), "{}: {:?}", row.beamformer, row.metrics);
            assert!(row.metrics.gcnr >= 0.0 && row.metrics.gcnr <= 1.0);
        }
        // DAS should show a meaningful contrast on the anechoic cyst.
        let das = table.iter().find(|r| r.beamformer == "DAS").unwrap();
        assert!(das.metrics.cr_db > 3.0, "DAS CR {}", das.metrics.cr_db);
    }

    #[test]
    fn resolution_table_at_test_size() {
        let config = EvaluationConfig::test_size();
        let models = quick_models(&config);
        let beamformers = beamformer_suite(&models, &config);
        let table = resolution_table(&beamformers, &config, PicmusKind::InSilico).unwrap();
        assert_eq!(table.len(), 5);
        let das = table.iter().find(|r| r.beamformer == "DAS").unwrap();
        assert!(das.metrics.axial_mm.is_finite() && das.metrics.axial_mm > 0.0);
        assert!(das.metrics.lateral_mm.is_finite() && das.metrics.lateral_mm > 0.0);
        // Sub-centimetre widths are expected even on the coarse test grid.
        assert!(das.metrics.lateral_mm < 10.0);
    }

    #[test]
    fn psfs_and_gallery_at_test_size() {
        let config = EvaluationConfig::test_size();
        let models = quick_models(&config);
        let beamformers = beamformer_suite(&models, &config);
        let psfs = lateral_psfs(&beamformers, &config, PicmusKind::InSilico, &[15.12e-3]).unwrap();
        assert_eq!(psfs.len(), 5);
        assert_eq!(psfs[0].1.len(), 1);
        assert_eq!(psfs[0].1[0].positions_mm.len(), config.grid_cols);

        let gallery = bmode_gallery(&beamformers[..2], &config, PicmusKind::InSilico, true).unwrap();
        assert_eq!(gallery.len(), 2);
        assert!(!gallery[0].1.to_ascii(20).is_empty());
    }

    #[test]
    fn quantized_quality_rows_cover_all_schemes() {
        let config = EvaluationConfig::test_size();
        let models = quick_models(&config);
        let rows = quantized_quality_table(&models.tiny_vbf, &config, PicmusKind::InSilico).unwrap();
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.scheme.as_str()).collect();
        assert_eq!(names, vec!["Float", "24 bits", "20 bits", "16 bits", "Hybrid-1", "Hybrid-2"]);
        for row in &rows {
            assert!(row.contrast.gcnr >= 0.0 && row.contrast.gcnr <= 1.0);
        }
    }
}
