//! Learned baselines the paper compares against: Tiny-CNN \[7\] and FCNN \[6\].
//!
//! Both baselines predict per-channel *apodization weights* from the ToF-corrected
//! channel data and beamform by multiplying those weights with the input and summing
//! across channels — the "adaptive DAS" formulation. They differ in how the weights are
//! estimated:
//!
//! * **FCNN** (Luijten et al.) looks at each pixel's channel vector in isolation through
//!   a small fully connected stack — purely local information.
//! * **Tiny-CNN** (Mathews & Panicker) looks at a local neighbourhood in the
//!   (lateral, channel) plane through a small convolutional stack — local receptive
//!   field, unlike Tiny-VBF's global attention.
//!
//! Both produce a beamformed RF row; the envelope is obtained afterwards through the
//! Hilbert transform, exactly as in the originals.

use crate::{TinyVbfError, TinyVbfResult};
use neural::activation::Relu;
use neural::conv::Conv2d;
use neural::dense::Dense;
use neural::layer::{Layer, Param};
use neural::tensor::Tensor;

/// The FCNN per-pixel adaptive beamformer baseline.
#[derive(Debug, Clone)]
pub struct Fcnn {
    channels: usize,
    hidden: Dense,
    act: Relu,
    output: Dense,
    cached_input: Option<Tensor>,
    cached_weights: Option<Tensor>,
}

impl Fcnn {
    /// Creates an FCNN baseline for `channels` receive channels with a hidden width of
    /// `hidden_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::InvalidConfig`] when a dimension is zero.
    pub fn new(channels: usize, hidden_dim: usize, seed: u64) -> TinyVbfResult<Self> {
        if channels == 0 || hidden_dim == 0 {
            return Err(TinyVbfError::InvalidConfig("FCNN dimensions must be nonzero".into()));
        }
        Ok(Self {
            channels,
            hidden: Dense::new(channels, hidden_dim, seed),
            act: Relu::new(),
            output: Dense::new(hidden_dim, channels, seed.wrapping_add(3)),
            cached_input: None,
            cached_weights: None,
        })
    }

    /// Number of receive channels this model expects.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.hidden.num_weights() + self.output.num_weights()
    }

    /// Mutable parameter access for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.hidden.params_mut();
        p.extend(self.output.params_mut());
        p
    }

    /// Predicts apodization weights and the beamformed RF value for every pixel of a
    /// `(tokens, channels)` row. Returns the `(tokens, 1)` RF column.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] on a row width mismatch.
    pub fn forward_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        if row.shape().len() != 2 || row.cols() != self.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {})", self.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        let weights = self.output.forward(&self.act.forward(&self.hidden.forward(row)));
        let rf = weighted_sum(row, &weights);
        self.cached_input = Some(row.clone());
        self.cached_weights = Some(weights);
        Ok(rf)
    }

    /// Inference-only forward (no caches kept for backward).
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] on a row width mismatch.
    pub fn infer_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        if row.shape().len() != 2 || row.cols() != self.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {})", self.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        let weights = self.output.infer(&self.act.infer(&self.hidden.infer(row)));
        Ok(weighted_sum(row, &weights))
    }

    /// Backward pass for the most recent [`forward_row`](Self::forward_row), given
    /// `dL/dRF` of shape `(tokens, 1)`.
    pub fn backward_row(&mut self, grad_rf: &Tensor) {
        let input = self.cached_input.as_ref().expect("Fcnn::backward_row before forward").clone();
        // RF_t = Σ_c w_tc · x_tc / C  =>  dL/dw_tc = dL/dRF_t · x_tc / C
        let grad_weights = weighted_sum_backward(&input, grad_rf);
        let grad_hidden = self.output.backward(&grad_weights);
        let grad_act = self.act.backward(&grad_hidden);
        let _ = self.hidden.backward(&grad_act);
    }
}

/// The Tiny-CNN adaptive beamformer baseline.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    channels: usize,
    conv1: Conv2d,
    act1: Relu,
    conv2: Conv2d,
    act2: Relu,
    conv3: Conv2d,
    cached_input: Option<Tensor>,
}

impl TinyCnn {
    /// Creates a Tiny-CNN baseline for `channels` receive channels with `features`
    /// intermediate feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::InvalidConfig`] when a dimension is zero.
    pub fn new(channels: usize, features: usize, seed: u64) -> TinyVbfResult<Self> {
        if channels == 0 || features == 0 {
            return Err(TinyVbfError::InvalidConfig("Tiny-CNN dimensions must be nonzero".into()));
        }
        Ok(Self {
            channels,
            conv1: Conv2d::new(1, features, 3, seed),
            act1: Relu::new(),
            conv2: Conv2d::new(features, features, 3, seed.wrapping_add(5)),
            act2: Relu::new(),
            conv3: Conv2d::new(features, 1, 3, seed.wrapping_add(9)),
            cached_input: None,
        })
    }

    /// Number of receive channels this model expects.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.conv1.num_weights() + self.conv2.num_weights() + self.conv3.num_weights()
    }

    /// Mutable parameter access for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv1.params_mut();
        p.extend(self.conv2.params_mut());
        p.extend(self.conv3.params_mut());
        p
    }

    fn weights_volume(&mut self, row: &Tensor, train: bool) -> Tensor {
        // Treat the (tokens, channels) row as a single-channel image.
        let volume = row.reshape(&[row.rows(), row.cols(), 1]).expect("row reshape");
        if train {
            let a = self.act1.forward(&self.conv1.forward(&volume));
            let b = self.act2.forward(&self.conv2.forward(&a));
            self.conv3.forward(&b)
        } else {
            let a = self.act1.infer(&self.conv1.infer(&volume));
            let b = self.act2.infer(&self.conv2.infer(&a));
            self.conv3.infer(&b)
        }
    }

    /// Predicts apodization weights and returns the beamformed `(tokens, 1)` RF column.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] on a row width mismatch.
    pub fn forward_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        if row.shape().len() != 2 || row.cols() != self.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {})", self.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        let weights_volume = self.weights_volume(row, true);
        let weights = weights_volume.reshape(&[row.rows(), row.cols()]).expect("weights reshape");
        self.cached_input = Some(row.clone());
        Ok(weighted_sum(row, &weights))
    }

    /// Inference-only forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] on a row width mismatch.
    pub fn infer_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        if row.shape().len() != 2 || row.cols() != self.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {})", self.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        let weights_volume = self.weights_volume(row, false);
        let weights = weights_volume.reshape(&[row.rows(), row.cols()]).expect("weights reshape");
        Ok(weighted_sum(row, &weights))
    }

    /// Backward pass for the most recent [`forward_row`](Self::forward_row).
    pub fn backward_row(&mut self, grad_rf: &Tensor) {
        let input = self.cached_input.as_ref().expect("TinyCnn::backward_row before forward").clone();
        let grad_weights = weighted_sum_backward(&input, grad_rf);
        let grad_volume = grad_weights
            .reshape(&[grad_weights.rows(), grad_weights.cols(), 1])
            .expect("grad reshape");
        let g3 = self.conv3.backward(&grad_volume);
        let g2 = self.conv2.backward(&self.act2.backward(&g3));
        let _ = self.conv1.backward(&self.act1.backward(&g2));
    }
}

/// Adaptive-DAS output: `RF_t = (1/C) Σ_c w_tc · x_tc` for every token `t`.
fn weighted_sum(input: &Tensor, weights: &Tensor) -> Tensor {
    assert_eq!(input.shape(), weights.shape(), "weighted_sum shape mismatch");
    let (tokens, channels) = (input.rows(), input.cols());
    let mut out = Tensor::zeros(&[tokens, 1]);
    for t in 0..tokens {
        let mut acc = 0.0f32;
        for c in 0..channels {
            acc += input.at(t, c) * weights.at(t, c);
        }
        *out.at_mut(t, 0) = acc / channels as f32;
    }
    out
}

/// Gradient of [`weighted_sum`] with respect to the weights.
fn weighted_sum_backward(input: &Tensor, grad_rf: &Tensor) -> Tensor {
    let (tokens, channels) = (input.rows(), input.cols());
    assert_eq!(grad_rf.shape(), &[tokens, 1], "grad_rf must be (tokens, 1)");
    let mut grad = Tensor::zeros(&[tokens, channels]);
    for t in 0..tokens {
        let g = grad_rf.at(t, 0) / channels as f32;
        for c in 0..channels {
            *grad.at_mut(t, c) = g * input.at(t, c);
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::init::normal;
    use neural::loss::mse;
    use neural::optimizer::{Adam, Optimizer};

    #[test]
    fn fcnn_shapes_and_validation() {
        let mut fcnn = Fcnn::new(16, 32, 1).unwrap();
        assert_eq!(fcnn.channels(), 16);
        assert_eq!(fcnn.num_weights(), 16 * 32 + 32 + 32 * 16 + 16);
        let row = normal(&[10, 16], 0.5, 2);
        let rf = fcnn.forward_row(&row).unwrap();
        assert_eq!(rf.shape(), &[10, 1]);
        assert!(fcnn.forward_row(&Tensor::zeros(&[4, 8])).is_err());
        assert!(Fcnn::new(0, 4, 0).is_err());
    }

    #[test]
    fn tiny_cnn_shapes_and_validation() {
        let mut cnn = TinyCnn::new(16, 4, 1).unwrap();
        assert_eq!(cnn.channels(), 16);
        assert!(cnn.num_weights() > 0);
        let row = normal(&[12, 16], 0.5, 3);
        let rf = cnn.forward_row(&row).unwrap();
        assert_eq!(rf.shape(), &[12, 1]);
        let rf2 = cnn.infer_row(&row).unwrap();
        for (a, b) in rf.as_slice().iter().zip(rf2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(cnn.forward_row(&Tensor::zeros(&[4, 8])).is_err());
        assert!(TinyCnn::new(8, 0, 0).is_err());
    }

    #[test]
    fn uniform_weights_reduce_to_das() {
        // If the predicted weights were all ones the output would be the plain channel
        // mean (boxcar DAS). Verify the weighted_sum primitive does exactly that.
        let input = normal(&[5, 8], 1.0, 4);
        let weights = Tensor::full(&[5, 8], 1.0);
        let rf = weighted_sum(&input, &weights);
        for t in 0..5 {
            let mean: f32 = (0..8).map(|c| input.at(t, c)).sum::<f32>() / 8.0;
            assert!((rf.at(t, 0) - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn fcnn_training_reduces_loss() {
        let mut fcnn = Fcnn::new(8, 16, 5).unwrap();
        let row = normal(&[12, 8], 0.5, 6);
        let target = normal(&[12, 1], 0.3, 7);
        let mut adam = Adam::new(1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let rf = fcnn.forward_row(&row).unwrap();
            let (loss, grad) = mse(&rf, &target);
            fcnn.backward_row(&grad);
            adam.step(fcnn.params_mut());
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "{:?} -> {last}", first);
    }

    #[test]
    fn tiny_cnn_training_reduces_loss() {
        let mut cnn = TinyCnn::new(8, 3, 5).unwrap();
        let row = normal(&[10, 8], 0.5, 8);
        let target = normal(&[10, 1], 0.3, 9);
        let mut adam = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..120 {
            let rf = cnn.forward_row(&row).unwrap();
            let (loss, grad) = mse(&rf, &target);
            cnn.backward_row(&grad);
            adam.step(cnn.params_mut());
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.6, "{:?} -> {last}", first);
    }

    #[test]
    fn weighted_sum_gradient_matches_finite_difference() {
        let input = normal(&[3, 4], 0.5, 11);
        let weights = normal(&[3, 4], 0.5, 12);
        let grad_rf = Tensor::full(&[3, 1], 1.0);
        let analytic = weighted_sum_backward(&input, &grad_rf);
        let eps = 1e-3;
        for t in 0..3 {
            for c in 0..4 {
                let mut plus = weights.clone();
                *plus.at_mut(t, c) += eps;
                let mut minus = weights.clone();
                *minus.at_mut(t, c) -= eps;
                let f_plus: f32 = weighted_sum(&input, &plus).as_slice().iter().sum();
                let f_minus: f32 = weighted_sum(&input, &minus).as_slice().iter().sum();
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                assert!((analytic.at(t, c) - numeric).abs() < 1e-3);
            }
        }
    }
}
