//! [`Beamformer`] adapters for the learned models.
//!
//! Wrapping the trained networks in the same [`Beamformer`] trait as DAS and MVDR lets
//! the evaluation harness (and downstream users) swap beamformers freely.

use crate::baselines::{Fcnn, TinyCnn};
use crate::model::TinyVbf;
use crate::training::cube_row;
use crate::{TinyVbfError, TinyVbfResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::{rf_to_iq, IqImage};
use beamforming::pipeline::Beamformer;
use beamforming::plan::{BeamformPlan, FrameFormat, PlanCache, PlanCacheStats};
use beamforming::tof::{tof_correct, tof_correct_planned, TofCube};
use beamforming::{BeamformError, BeamformResult};
use std::sync::{Arc, Mutex};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::Complex32;

fn normalized_cube(
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
) -> BeamformResult<TofCube> {
    let mut cube = tof_correct(data, array, grid, PlaneWave::zero_angle(), sound_speed)?;
    cube.normalize();
    Ok(cube)
}

/// The planned counterpart of [`normalized_cube`]: fetches (or builds) the
/// dense ToF plan from `plans` and replays it — bitwise identical to the
/// direct path. Shared by the float and quantized serving adapters.
pub(crate) fn planned_normalized_cube(
    plans: &PlanCache,
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
) -> BeamformResult<TofCube> {
    let frame = FrameFormat::of(data);
    let plan = plans.get_or_build(array, grid, sound_speed, &frame, || {
        BeamformPlan::for_tof(array, grid, PlaneWave::zero_angle(), sound_speed, frame)
    })?;
    let mut cube = tof_correct_planned(data, &plan)?;
    cube.normalize();
    Ok(cube)
}

/// Best-effort [`Beamformer::prepare`] body for a dense-ToF plan cache:
/// builds the plan now so a stream's first frame doesn't pay it
/// (configuration errors surface on the next beamform call instead).
pub(crate) fn warm_tof_plan(
    plans: &PlanCache,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
    frame: &FrameFormat,
) {
    let _ = plans.get_or_build(array, grid, sound_speed, frame, || {
        BeamformPlan::for_tof(array, grid, PlaneWave::zero_angle(), sound_speed, *frame)
    });
}

/// Writes one `(cols, 2)` network output row as the (I, Q) pixels of an
/// image row — the [`parallel_row_sweep`] writer of the IQ-predicting
/// beamformers.
pub(crate) fn write_iq_row(out: &neural::tensor::Tensor, out_row: &mut [Complex32]) {
    for (col, px) in out_row.iter_mut().enumerate() {
        *px = Complex32::new(out.at(col, 0), out.at(col, 1));
    }
}

/// Sweeps a row-streaming network over every depth row of `cube` in parallel.
///
/// Image rows are split into disjoint chunks across `num_threads` scoped
/// workers; each worker clones the model once (amortising the clone over its
/// whole chunk, since `infer_row` needs `&mut self` for the layer caches),
/// runs `infer` per row and converts the `(cols, …)` output tensor into the
/// pixel values of that row via `write`. Each row's output depends only on its
/// own input, so the image is bitwise identical for every thread count.
pub(crate) fn parallel_row_sweep<T, M>(
    cube: &TofCube,
    out: &mut [T],
    num_threads: usize,
    clone_model: &(impl Fn() -> M + Sync),
    infer: &(impl Fn(&mut M, &neural::tensor::Tensor) -> TinyVbfResult<neural::tensor::Tensor> + Sync),
    write: &(impl Fn(&neural::tensor::Tensor, &mut [T]) + Sync),
) -> TinyVbfResult<()>
where
    T: Send,
{
    let cols = cube.cols();
    let failure: Mutex<Option<TinyVbfError>> = Mutex::new(None);
    runtime::par_map_rows(out, cols, num_threads, |first_row, block| {
        let mut model = clone_model();
        for (local, out_row) in block.chunks_mut(cols).enumerate() {
            let input = cube_row(cube, first_row + local);
            match infer(&mut model, &input) {
                Ok(o) if o.rows() == cols => write(&o, out_row),
                Ok(o) => {
                    *failure.lock().expect("row-sweep mutex poisoned") = Some(TinyVbfError::ShapeMismatch {
                        expected: format!("{cols} output tokens"),
                        actual: format!("{}", o.rows()),
                    });
                    return;
                }
                Err(e) => {
                    *failure.lock().expect("row-sweep mutex poisoned") = Some(e);
                    return;
                }
            }
        }
    });
    match failure.into_inner().expect("row-sweep mutex poisoned") {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Row sweep for the real-valued (RF-predicting) baselines: runs
/// `infer` over every cube row and keeps column 0 of each output row.
fn beamform_rf_rows<M: Clone + Sync>(
    model: &M,
    cube: &TofCube,
    infer: impl Fn(&mut M, &neural::tensor::Tensor) -> TinyVbfResult<neural::tensor::Tensor> + Sync,
) -> TinyVbfResult<Vec<f32>> {
    let mut rf = vec![0.0f32; cube.rows() * cube.cols()];
    parallel_row_sweep(
        cube,
        &mut rf,
        runtime::default_threads(),
        &|| model.clone(),
        &infer,
        &|out, out_row| {
            for (col, px) in out_row.iter_mut().enumerate() {
                *px = out.at(col, 0);
            }
        },
    )?;
    Ok(rf)
}

/// Tiny-VBF as a drop-in beamformer.
///
/// The network consumes the ToF-corrected data cube, so the per-frame delay
/// math is the same sqrt-heavy geometry the classical beamformers pay. This
/// adapter routes the cube through a cached dense [`BeamformPlan`]
/// ([`tof_correct_planned`], bitwise identical to the direct
/// [`tof_correct`]), amortising that work across every frame of a stream —
/// the learned-beamformer counterpart of [`beamforming::plan::PlannedDas`].
#[derive(Debug, Clone)]
pub struct TinyVbfBeamformer {
    model: TinyVbf,
    /// Dense ToF plans keyed on (probe, grid, sound speed, frame format).
    /// Shared by clones, so the per-worker model clones of a serving engine
    /// all hit one warm cache.
    tof_plans: Arc<PlanCache>,
}

impl TinyVbfBeamformer {
    /// Wraps a (typically trained) Tiny-VBF model with a ToF plan cache of
    /// [`PlanCache::DEFAULT_CAPACITY`] slots.
    pub fn new(model: TinyVbf) -> Self {
        Self::with_cache_capacity(model, PlanCache::DEFAULT_CAPACITY)
    }

    /// [`TinyVbfBeamformer::new`] with an explicit ToF plan-cache capacity
    /// (clamped to ≥ 1): size it to the number of distinct stream shapes the
    /// adapter will serve concurrently.
    pub fn with_cache_capacity(model: TinyVbf, capacity: usize) -> Self {
        Self { model, tof_plans: Arc::new(PlanCache::new(capacity)) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &TinyVbf {
        &self.model
    }

    /// Snapshot of the ToF plan-cache counters (hits / misses / evictions).
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.tof_plans.stats()
    }

    fn planned_cube(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<TofCube> {
        planned_normalized_cube(&self.tof_plans, data, array, grid, sound_speed)
    }

    /// Runs the model over every row of a (already normalized) ToF cube,
    /// distributing rows over the workspace-default worker threads.
    ///
    /// # Errors
    ///
    /// Propagates row shape errors from the model.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> TinyVbfResult<IqImage> {
        self.beamform_cube_with_threads(cube, grid, runtime::default_threads())
    }

    /// [`TinyVbfBeamformer::beamform_cube`] with an explicit worker-thread
    /// count (each worker clones the model once for its chunk of rows).
    ///
    /// # Errors
    ///
    /// Propagates row shape errors from the model.
    pub fn beamform_cube_with_threads(
        &self,
        cube: &TofCube,
        grid: &ImagingGrid,
        num_threads: usize,
    ) -> TinyVbfResult<IqImage> {
        let mut data = vec![Complex32::new(0.0, 0.0); cube.rows() * cube.cols()];
        parallel_row_sweep(
            cube,
            &mut data,
            num_threads,
            &|| self.model.clone(),
            &|model, input| model.infer_row(input),
            &write_iq_row,
        )?;
        Ok(IqImage::from_data(data, grid.clone())?)
    }
}

impl Beamformer for TinyVbfBeamformer {
    fn name(&self) -> &str {
        "Tiny-VBF"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = self.planned_cube(data, array, grid, sound_speed)?;
        self.beamform_cube(&cube, grid)
            .map_err(|e| BeamformError::InvalidParameter { name: "tiny_vbf", reason: e.to_string() })
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        // Best effort, like the planned classical wrappers: build the ToF
        // plan now so the stream's first frame doesn't pay it.
        warm_tof_plan(&self.tof_plans, array, grid, sound_speed, frame);
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        Some(self.cache_stats())
    }
}

/// Tiny-CNN baseline as a drop-in beamformer.
#[derive(Debug, Clone)]
pub struct TinyCnnBeamformer {
    model: TinyCnn,
}

impl TinyCnnBeamformer {
    /// Wraps a trained Tiny-CNN model.
    pub fn new(model: TinyCnn) -> Self {
        Self { model }
    }

    fn beamform_rf(&self, cube: &TofCube) -> TinyVbfResult<Vec<f32>> {
        beamform_rf_rows(&self.model, cube, |model, input| model.infer_row(input))
    }
}

impl Beamformer for TinyCnnBeamformer {
    fn name(&self) -> &str {
        "Tiny-CNN"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = normalized_cube(data, array, grid, sound_speed)?;
        let rf = self
            .beamform_rf(&cube)
            .map_err(|e| BeamformError::InvalidParameter { name: "tiny_cnn", reason: e.to_string() })?;
        rf_to_iq(&rf, grid)
    }
}

/// FCNN baseline as a drop-in beamformer.
#[derive(Debug, Clone)]
pub struct FcnnBeamformer {
    model: Fcnn,
}

impl FcnnBeamformer {
    /// Wraps a trained FCNN model.
    pub fn new(model: Fcnn) -> Self {
        Self { model }
    }

    fn beamform_rf(&self, cube: &TofCube) -> TinyVbfResult<Vec<f32>> {
        beamform_rf_rows(&self.model, cube, |model, input| model.infer_row(input))
    }
}

impl Beamformer for FcnnBeamformer {
    fn name(&self) -> &str {
        "FCNN"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = normalized_cube(data, array, grid, sound_speed)?;
        let rf = self
            .beamform_rf(&cube)
            .map_err(|e| BeamformError::InvalidParameter { name: "fcnn", reason: e.to_string() })?;
        rf_to_iq(&rf, grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TinyVbfConfig;
    use ultrasound::{Medium, Phantom, PlaneWaveSimulator};

    fn small_frame() -> (ChannelData, LinearArray, ImagingGrid) {
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.025);
        let phantom = Phantom::builder(0.01, 0.025).add_point_target(0.0, 0.018, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 20, 16);
        (rf, array, grid)
    }

    #[test]
    fn tiny_vbf_beamformer_produces_grid_shaped_iq() {
        let (rf, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        let beamformer = TinyVbfBeamformer::new(model);
        assert_eq!(beamformer.name(), "Tiny-VBF");
        let iq = beamformer.beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(iq.num_pixels(), grid.num_pixels());
        assert!(iq.peak() <= (2.0f32).sqrt() + 1e-5); // tanh bounds both components
        assert!(beamformer.model().num_weights() > 0);
    }

    #[test]
    fn tiny_vbf_planned_tof_is_bitwise_identical_to_direct() {
        let (rf, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        let beamformer = TinyVbfBeamformer::new(model);

        // Reference: the pre-PR-4 path — direct tof_correct + normalize.
        let direct_cube = normalized_cube(&rf, &array, &grid, 1540.0).unwrap();
        let planned_cube = beamformer.planned_cube(&rf, &array, &grid, 1540.0).unwrap();
        for (i, (a, b)) in direct_cube.as_slice().iter().zip(planned_cube.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cube sample {i}: direct {a} vs planned {b}");
        }

        let direct_iq = beamformer.beamform_cube(&direct_cube, &grid).unwrap();
        let served_iq = beamformer.beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(direct_iq, served_iq, "planned ToF must not change the network output");

        // The cache amortises: the two planned calls above share one plan.
        let stats = beamformer.cache_stats();
        assert_eq!(stats.misses, 1, "one stream shape must build exactly one ToF plan");
        assert_eq!(stats.hits, 1);
        // Clones (serving workers) share the warm cache.
        let clone = beamformer.clone();
        clone.beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(clone.cache_stats().misses, 1, "clones must share the plan cache");
        // prepare() warms the cache through the Beamformer trait.
        beamformer.prepare(&array, &grid, 1540.0, &FrameFormat::of(&rf));
        assert_eq!(beamformer.cache_stats().misses, 1);
        assert_eq!(beamformer.plan_cache_stats().unwrap().misses, 1);
    }

    #[test]
    fn baseline_beamformers_produce_grid_shaped_iq() {
        let (rf, array, grid) = small_frame();
        let cnn = TinyCnnBeamformer::new(TinyCnn::new(array.num_elements(), 3, 1).unwrap());
        let fcnn = FcnnBeamformer::new(Fcnn::new(array.num_elements(), 16, 1).unwrap());
        assert_eq!(cnn.name(), "Tiny-CNN");
        assert_eq!(fcnn.name(), "FCNN");
        for beamformer in [&cnn as &dyn Beamformer, &fcnn as &dyn Beamformer] {
            let iq = beamformer.beamform(&rf, &array, &grid, 1540.0).unwrap();
            assert_eq!(iq.num_pixels(), grid.num_pixels());
        }
    }

    #[test]
    fn parallel_row_sweep_is_identical_across_thread_counts() {
        let (rf, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let beamformer = TinyVbfBeamformer::new(TinyVbf::new(&config).unwrap());
        let cube = normalized_cube(&rf, &array, &grid, 1540.0).unwrap();
        let serial = beamformer.beamform_cube_with_threads(&cube, &grid, 1).unwrap();
        for threads in [2, 3, 8] {
            let parallel = beamformer.beamform_cube_with_threads(&cube, &grid, threads).unwrap();
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn forward_batch_matches_row_by_row_inference() {
        let (rf, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        let cube = normalized_cube(&rf, &array, &grid, 1540.0).unwrap();
        let rows: Vec<_> = (0..cube.rows()).map(|r| cube_row(&cube, r)).collect();
        let batch = model.forward_batch(&rows).unwrap();
        assert_eq!(batch.len(), rows.len());
        let mut serial_model = model.clone();
        for (row, out) in rows.iter().zip(batch.iter()) {
            assert_eq!(&serial_model.infer_row(row).unwrap(), out);
        }
        // Thread count must not change batch results either.
        let batch4 = model.forward_batch_with_threads(&rows, 4).unwrap();
        assert_eq!(batch, batch4);
    }

    #[test]
    fn forward_batch_reports_bad_rows() {
        let (_, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        let bad = vec![neural::tensor::Tensor::zeros(&[grid.num_cols(), array.num_elements() + 1])];
        assert!(model.forward_batch(&bad).is_err());
    }

    #[test]
    fn wrong_channel_count_is_reported() {
        let (rf, array, grid) = small_frame();
        // Model configured for a different channel count.
        let config = TinyVbfConfig::small().for_frame(16, grid.num_cols());
        let beamformer = TinyVbfBeamformer::new(TinyVbf::new(&config).unwrap());
        assert!(beamformer.beamform(&rf, &array, &grid, 1540.0).is_err());
    }
}
