//! [`Beamformer`] adapters for the learned models.
//!
//! Wrapping the trained networks in the same [`Beamformer`] trait as DAS and MVDR lets
//! the evaluation harness (and downstream users) swap beamformers freely.

use crate::baselines::{Fcnn, TinyCnn};
use crate::model::TinyVbf;
use crate::training::cube_row;
use crate::TinyVbfResult;
use beamforming::grid::ImagingGrid;
use beamforming::iq::{rf_to_iq, IqImage};
use beamforming::pipeline::Beamformer;
use beamforming::tof::{tof_correct, TofCube};
use beamforming::{BeamformError, BeamformResult};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::Complex32;

fn normalized_cube(
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    sound_speed: f32,
) -> BeamformResult<TofCube> {
    let mut cube = tof_correct(data, array, grid, PlaneWave::zero_angle(), sound_speed)?;
    cube.normalize();
    Ok(cube)
}

/// Tiny-VBF as a drop-in beamformer.
#[derive(Debug, Clone)]
pub struct TinyVbfBeamformer {
    model: TinyVbf,
}

impl TinyVbfBeamformer {
    /// Wraps a (typically trained) Tiny-VBF model.
    pub fn new(model: TinyVbf) -> Self {
        Self { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &TinyVbf {
        &self.model
    }

    /// Runs the model over every row of a (already normalized) ToF cube.
    ///
    /// # Errors
    ///
    /// Propagates row shape errors from the model.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> TinyVbfResult<IqImage> {
        let mut model = self.model.clone();
        let mut data = Vec::with_capacity(grid.num_pixels());
        for row in 0..cube.rows() {
            let input = cube_row(cube, row);
            let out = model.infer_row(&input)?;
            for col in 0..out.rows() {
                data.push(Complex32::new(out.at(col, 0), out.at(col, 1)));
            }
        }
        Ok(IqImage::from_data(data, grid.clone())?)
    }
}

impl Beamformer for TinyVbfBeamformer {
    fn name(&self) -> &str {
        "Tiny-VBF"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = normalized_cube(data, array, grid, sound_speed)?;
        self.beamform_cube(&cube, grid)
            .map_err(|e| BeamformError::InvalidParameter { name: "tiny_vbf", reason: e.to_string() })
    }
}

/// Tiny-CNN baseline as a drop-in beamformer.
#[derive(Debug, Clone)]
pub struct TinyCnnBeamformer {
    model: TinyCnn,
}

impl TinyCnnBeamformer {
    /// Wraps a trained Tiny-CNN model.
    pub fn new(model: TinyCnn) -> Self {
        Self { model }
    }

    fn beamform_rf(&self, cube: &TofCube) -> TinyVbfResult<Vec<f32>> {
        let mut model = self.model.clone();
        let mut rf = Vec::with_capacity(cube.rows() * cube.cols());
        for row in 0..cube.rows() {
            let input = cube_row(cube, row);
            let out = model.infer_row(&input)?;
            for col in 0..out.rows() {
                rf.push(out.at(col, 0));
            }
        }
        Ok(rf)
    }
}

impl Beamformer for TinyCnnBeamformer {
    fn name(&self) -> &str {
        "Tiny-CNN"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = normalized_cube(data, array, grid, sound_speed)?;
        let rf = self
            .beamform_rf(&cube)
            .map_err(|e| BeamformError::InvalidParameter { name: "tiny_cnn", reason: e.to_string() })?;
        rf_to_iq(&rf, grid)
    }
}

/// FCNN baseline as a drop-in beamformer.
#[derive(Debug, Clone)]
pub struct FcnnBeamformer {
    model: Fcnn,
}

impl FcnnBeamformer {
    /// Wraps a trained FCNN model.
    pub fn new(model: Fcnn) -> Self {
        Self { model }
    }

    fn beamform_rf(&self, cube: &TofCube) -> TinyVbfResult<Vec<f32>> {
        let mut model = self.model.clone();
        let mut rf = Vec::with_capacity(cube.rows() * cube.cols());
        for row in 0..cube.rows() {
            let input = cube_row(cube, row);
            let out = model.infer_row(&input)?;
            for col in 0..out.rows() {
                rf.push(out.at(col, 0));
            }
        }
        Ok(rf)
    }
}

impl Beamformer for FcnnBeamformer {
    fn name(&self) -> &str {
        "FCNN"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let cube = normalized_cube(data, array, grid, sound_speed)?;
        let rf = self
            .beamform_rf(&cube)
            .map_err(|e| BeamformError::InvalidParameter { name: "fcnn", reason: e.to_string() })?;
        rf_to_iq(&rf, grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TinyVbfConfig;
    use ultrasound::{Medium, Phantom, PlaneWaveSimulator};

    fn small_frame() -> (ChannelData, LinearArray, ImagingGrid) {
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.025);
        let phantom = Phantom::builder(0.01, 0.025).add_point_target(0.0, 0.018, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 20, 16);
        (rf, array, grid)
    }

    #[test]
    fn tiny_vbf_beamformer_produces_grid_shaped_iq() {
        let (rf, array, grid) = small_frame();
        let config = TinyVbfConfig::small().for_frame(array.num_elements(), grid.num_cols());
        let model = TinyVbf::new(&config).unwrap();
        let beamformer = TinyVbfBeamformer::new(model);
        assert_eq!(beamformer.name(), "Tiny-VBF");
        let iq = beamformer.beamform(&rf, &array, &grid, 1540.0).unwrap();
        assert_eq!(iq.num_pixels(), grid.num_pixels());
        assert!(iq.peak() <= (2.0f32).sqrt() + 1e-5); // tanh bounds both components
        assert!(beamformer.model().num_weights() > 0);
    }

    #[test]
    fn baseline_beamformers_produce_grid_shaped_iq() {
        let (rf, array, grid) = small_frame();
        let cnn = TinyCnnBeamformer::new(TinyCnn::new(array.num_elements(), 3, 1).unwrap());
        let fcnn = FcnnBeamformer::new(Fcnn::new(array.num_elements(), 16, 1).unwrap());
        assert_eq!(cnn.name(), "Tiny-CNN");
        assert_eq!(fcnn.name(), "FCNN");
        for beamformer in [&cnn as &dyn Beamformer, &fcnn as &dyn Beamformer] {
            let iq = beamformer.beamform(&rf, &array, &grid, 1540.0).unwrap();
            assert_eq!(iq.num_pixels(), grid.num_pixels());
        }
    }

    #[test]
    fn wrong_channel_count_is_reported() {
        let (rf, array, grid) = small_frame();
        // Model configured for a different channel count.
        let config = TinyVbfConfig::small().for_frame(16, grid.num_cols());
        let beamformer = TinyVbfBeamformer::new(TinyVbf::new(&config).unwrap());
        assert!(beamformer.beamform(&rf, &array, &grid, 1540.0).is_err());
    }
}
