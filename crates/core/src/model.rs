//! The Tiny-VBF model: ViT encoder, two transformer blocks and an IQ decoder.
//!
//! One forward pass processes a single depth row of the ToF-corrected cube: a
//! `(tokens, channels)` matrix in, a `(tokens, 2)` matrix of (I, Q) predictions out.
//! A full frame is beamformed by running every depth row through the model, which keeps
//! the per-frame cost at the paper's sub-GOP level and matches the row-streaming
//! dataflow of the FPGA accelerator.

use crate::config::TinyVbfConfig;
use crate::{TinyVbfError, TinyVbfResult};
use neural::activation::{Relu, Tanh};
use neural::attention::MultiHeadAttention;
use neural::dense::Dense;
use neural::init::normal;
use neural::layer::{Layer, Param};
use neural::norm::LayerNorm;
use neural::tensor::Tensor;

/// One transformer block: pre-norm multi-head attention and a feed-forward sub-layer,
/// each wrapped in a residual connection.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: LayerNorm,
    attention: MultiHeadAttention,
    norm2: LayerNorm,
    mlp_in: Dense,
    mlp_act: Relu,
    mlp_out: Dense,
}

impl TransformerBlock {
    fn new(config: &TinyVbfConfig, seed: u64) -> TinyVbfResult<Self> {
        Ok(Self {
            norm1: LayerNorm::new(config.model_dim),
            attention: MultiHeadAttention::new(config.model_dim, config.num_heads, seed)?,
            norm2: LayerNorm::new(config.model_dim),
            mlp_in: Dense::new(config.model_dim, config.mlp_dim, seed.wrapping_add(11)),
            mlp_act: Relu::new(),
            mlp_out: Dense::new(config.mlp_dim, config.model_dim, seed.wrapping_add(13)),
        })
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let attended = if train {
            let normed = self.norm1.forward(input);
            self.attention.forward(&normed)
        } else {
            let normed = self.norm1.infer(input);
            self.attention.infer(&normed)
        };
        let after_attention = input.add(&attended);
        let mlp = if train {
            let normed = self.norm2.forward(&after_attention);
            let hidden = self.mlp_act.forward(&self.mlp_in.forward(&normed));
            self.mlp_out.forward(&hidden)
        } else {
            let normed = self.norm2.infer(&after_attention);
            let hidden = self.mlp_act.infer(&self.mlp_in.infer(&normed));
            self.mlp_out.infer(&hidden)
        };
        after_attention.add(&mlp)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // y2 = y1 + mlp(norm2(y1));  y1 = x + attn(norm1(x))
        let grad_mlp = self.mlp_out.backward(grad_output);
        let grad_hidden = self.mlp_act.backward(&grad_mlp);
        let grad_norm2 = self.mlp_in.backward(&grad_hidden);
        let grad_after_attention = grad_output.add(&self.norm2.backward(&grad_norm2));

        let grad_attended = self.attention.backward(&grad_after_attention);
        let grad_norm1 = self.norm1.backward(&grad_attended);
        grad_after_attention.add(&grad_norm1)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.norm1.params_mut();
        params.extend(self.attention.params_mut());
        params.extend(self.norm2.params_mut());
        params.extend(self.mlp_in.params_mut());
        params.extend(self.mlp_out.params_mut());
        params
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = self.norm1.params();
        params.extend(self.attention.params());
        params.extend(self.norm2.params());
        params.extend(self.mlp_in.params());
        params.extend(self.mlp_out.params());
        params
    }
}

/// The Tiny-VBF network.
#[derive(Debug, Clone)]
pub struct TinyVbf {
    config: TinyVbfConfig,
    encoder: Dense,
    positional: Option<Param>,
    blocks: Vec<TransformerBlock>,
    decoder_in: Dense,
    decoder_act: Relu,
    decoder_out: Dense,
    output_act: Tanh,
    cached_positional_rows: usize,
}

impl TinyVbf {
    /// Builds a Tiny-VBF model with freshly initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::InvalidConfig`] when the configuration is inconsistent.
    pub fn new(config: &TinyVbfConfig) -> TinyVbfResult<Self> {
        config.validate()?;
        let mut blocks = Vec::with_capacity(config.num_blocks);
        for b in 0..config.num_blocks {
            blocks.push(TransformerBlock::new(config, config.seed.wrapping_add(100 * (b as u64 + 1)))?);
        }
        let positional = if config.positional_embedding {
            Some(Param::new(normal(&[config.tokens, config.model_dim], 0.02, config.seed ^ 0x905A)))
        } else {
            None
        };
        Ok(Self {
            config: *config,
            encoder: Dense::new(config.channels, config.model_dim, config.seed),
            positional,
            blocks,
            decoder_in: Dense::new(config.model_dim, config.decoder_dim, config.seed.wrapping_add(7)),
            decoder_act: Relu::new(),
            decoder_out: Dense::new(config.decoder_dim, 2, config.seed.wrapping_add(9)),
            output_act: Tanh::new(),
            cached_positional_rows: 0,
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &TinyVbfConfig {
        &self.config
    }

    /// Total number of trainable scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Mutable access to every trainable parameter (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.encoder.params_mut();
        if let Some(pos) = self.positional.as_mut() {
            params.push(pos);
        }
        for block in &mut self.blocks {
            params.extend(block.params_mut());
        }
        params.extend(self.decoder_in.params_mut());
        params.extend(self.decoder_out.params_mut());
        params
    }

    /// Immutable access to every trainable parameter.
    pub fn params(&self) -> Vec<&Param> {
        let mut params = self.encoder.params();
        if let Some(pos) = self.positional.as_ref() {
            params.push(pos);
        }
        for block in &self.blocks {
            params.extend(block.params());
        }
        params.extend(self.decoder_in.params());
        params.extend(self.decoder_out.params());
        params
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn check_row(&self, row: &Tensor) -> TinyVbfResult<()> {
        if row.shape().len() != 2 || row.cols() != self.config.channels {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("(tokens, {}) row", self.config.channels),
                actual: format!("{:?}", row.shape()),
            });
        }
        Ok(())
    }

    fn add_positional(&mut self, encoded: &Tensor) -> Tensor {
        let rows = encoded.rows();
        self.cached_positional_rows = rows;
        match self.positional.as_ref() {
            Some(pos) => {
                let mut out = encoded.clone();
                for r in 0..rows {
                    // Rows beyond the configured token count reuse the last embedding.
                    let pr = r.min(pos.value.rows() - 1);
                    for c in 0..encoded.cols() {
                        *out.at_mut(r, c) += pos.value.at(pr, c);
                    }
                }
                out
            }
            None => encoded.clone(),
        }
    }

    /// Forward pass for one depth row (training mode: caches for backward).
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] when the row width differs from the
    /// configured channel count.
    pub fn forward_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        self.check_row(row)?;
        let encoded = self.encoder.forward(row);
        let mut x = self.add_positional(&encoded);
        for block in &mut self.blocks {
            x = block.forward(&x, true);
        }
        let hidden = self.decoder_act.forward(&self.decoder_in.forward(&x));
        let out = self.decoder_out.forward(&hidden);
        Ok(self.output_act.forward(&out))
    }

    /// Inference-only forward pass for one depth row (no gradient caches).
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] when the row width differs from the
    /// configured channel count.
    pub fn infer_row(&mut self, row: &Tensor) -> TinyVbfResult<Tensor> {
        self.check_row(row)?;
        let encoded = self.encoder.infer(row);
        let mut x = self.add_positional(&encoded);
        for block in &mut self.blocks {
            x = block.forward(&x, false);
        }
        let hidden = self.decoder_act.infer(&self.decoder_in.infer(&x));
        let out = self.decoder_out.infer(&hidden);
        Ok(self.output_act.infer(&out))
    }

    /// Inference over a batch of independent depth rows, split across the
    /// workspace-default worker threads (see [`runtime::default_threads`]).
    ///
    /// This is the multi-frame scaling primitive: each worker clones the model
    /// once for its whole chunk (amortising the clone that `infer_row`'s
    /// `&mut self` layer caches would otherwise force per call) and outputs are
    /// returned in input order, identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::ShapeMismatch`] when any row's width differs from
    /// the configured channel count.
    ///
    /// # Example
    ///
    /// ```
    /// use neural::init::normal;
    /// use tiny_vbf::config::TinyVbfConfig;
    /// use tiny_vbf::model::TinyVbf;
    ///
    /// let config = TinyVbfConfig::tiny_test();
    /// let model = TinyVbf::new(&config)?;
    /// let rows: Vec<_> = (0..4).map(|i| normal(&[config.tokens, config.channels], 0.5, i)).collect();
    /// let outputs = model.forward_batch(&rows)?;
    /// assert_eq!(outputs.len(), 4);
    /// assert_eq!(outputs[0].shape(), &[config.tokens, 2]); // (I, Q) per token
    /// # Ok::<(), tiny_vbf::TinyVbfError>(())
    /// ```
    pub fn forward_batch(&self, rows: &[Tensor]) -> TinyVbfResult<Vec<Tensor>> {
        self.forward_batch_with_threads(rows, runtime::default_threads())
    }

    /// [`TinyVbf::forward_batch`] with an explicit *total* thread budget.
    ///
    /// The budget is split via [`runtime::split_budget`]: batch items run
    /// concurrently across the outer workers, and each item's forward pass may
    /// use the remaining share for its internal matmul row parallelism (only
    /// relevant when the batch is smaller than the budget).
    ///
    /// # Errors
    ///
    /// Same as [`TinyVbf::forward_batch`].
    pub fn forward_batch_with_threads(&self, rows: &[Tensor], num_threads: usize) -> TinyVbfResult<Vec<Tensor>> {
        use std::sync::Mutex;
        // Keyed by batch index so the reported error is the first one in
        // input order, independent of the thread count.
        let failure: Mutex<Option<(usize, TinyVbfError)>> = Mutex::new(None);
        let (outer, inner) = runtime::split_budget(num_threads, rows.len());
        let mut out: Vec<Option<Tensor>> = vec![None; rows.len()];
        runtime::par_map_rows_with_budget(&mut out, 1, outer, inner, |offset, chunk| {
            let mut model = self.clone();
            for (i, slot) in chunk.iter_mut().enumerate() {
                match model.infer_row(&rows[offset + i]) {
                    Ok(t) => *slot = Some(t),
                    Err(e) => {
                        let index = offset + i;
                        let mut first = failure.lock().expect("forward_batch mutex poisoned");
                        if first.as_ref().is_none_or(|(j, _)| index < *j) {
                            *first = Some((index, e));
                        }
                        return;
                    }
                }
            }
        });
        if let Some((_, e)) = failure.into_inner().expect("forward_batch mutex poisoned") {
            return Err(e);
        }
        Ok(out.into_iter().map(|t| t.expect("forward_batch worker skipped a row")).collect())
    }

    /// Backward pass for the most recent [`forward_row`](Self::forward_row), given the
    /// gradient of the loss with respect to the row output. Accumulates parameter
    /// gradients; the input gradient is discarded (the ToF data is not trainable).
    pub fn backward_row(&mut self, grad_output: &Tensor) {
        let grad_out = self.output_act.backward(grad_output);
        let grad_hidden = self.decoder_out.backward(&grad_out);
        let grad_decoder_in = self.decoder_act.backward(&grad_hidden);
        let mut grad = self.decoder_in.backward(&grad_decoder_in);
        for block in self.blocks.iter_mut().rev() {
            grad = block.backward(&grad);
        }
        // Positional embedding gradient is the block-input gradient, row-aligned.
        if let Some(pos) = self.positional.as_mut() {
            let rows = self.cached_positional_rows.min(grad.rows());
            for r in 0..rows {
                let pr = r.min(pos.value.rows() - 1);
                for c in 0..grad.cols() {
                    *pos.grad.at_mut(pr, c) += grad.at(r, c);
                }
            }
        }
        let _ = self.encoder.backward(&grad);
    }

    /// Exports the trained weights as plain tensors for the quantizer and the FPGA
    /// accelerator model.
    pub fn export_weights(&self) -> TinyVbfWeights {
        TinyVbfWeights {
            config: self.config,
            encoder_weight: self.encoder.weight().clone(),
            encoder_bias: self.encoder.bias().clone(),
            positional: self.positional.as_ref().map(|p| p.value.clone()),
            blocks: self
                .blocks
                .iter()
                .map(|b| TransformerBlockWeights {
                    norm1_gamma: b.norm1.params()[0].value.clone(),
                    norm1_beta: b.norm1.params()[1].value.clone(),
                    wq: b.attention.params()[0].value.clone(),
                    wk: b.attention.params()[1].value.clone(),
                    wv: b.attention.params()[2].value.clone(),
                    wo: b.attention.params()[3].value.clone(),
                    norm2_gamma: b.norm2.params()[0].value.clone(),
                    norm2_beta: b.norm2.params()[1].value.clone(),
                    mlp_in_weight: b.mlp_in.weight().clone(),
                    mlp_in_bias: b.mlp_in.bias().clone(),
                    mlp_out_weight: b.mlp_out.weight().clone(),
                    mlp_out_bias: b.mlp_out.bias().clone(),
                })
                .collect(),
            decoder_in_weight: self.decoder_in.weight().clone(),
            decoder_in_bias: self.decoder_in.bias().clone(),
            decoder_out_weight: self.decoder_out.weight().clone(),
            decoder_out_bias: self.decoder_out.bias().clone(),
        }
    }

    /// Serialises all weights to a flat byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let params = self.params();
        let tensors: Vec<&Tensor> = params.iter().map(|p| &p.value).collect();
        neural::serialize::tensors_to_bytes(&tensors).to_vec()
    }

    /// Restores weights previously produced by [`to_bytes`](Self::to_bytes) into a model
    /// with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TinyVbfError::Substrate`] when decoding fails and
    /// [`TinyVbfError::ShapeMismatch`] when the tensor count or shapes differ.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> TinyVbfResult<()> {
        let tensors = neural::serialize::tensors_from_bytes(bytes)?;
        let mut params = self.params_mut();
        if tensors.len() != params.len() {
            return Err(TinyVbfError::ShapeMismatch {
                expected: format!("{} tensors", params.len()),
                actual: format!("{}", tensors.len()),
            });
        }
        for (param, tensor) in params.iter_mut().zip(tensors.into_iter()) {
            if param.value.shape() != tensor.shape() {
                return Err(TinyVbfError::ShapeMismatch {
                    expected: format!("{:?}", param.value.shape()),
                    actual: format!("{:?}", tensor.shape()),
                });
            }
            param.value = tensor;
        }
        Ok(())
    }
}

/// Exported (read-only) weights of a Tiny-VBF model.
#[derive(Debug, Clone)]
pub struct TinyVbfWeights {
    /// Architecture the weights belong to.
    pub config: TinyVbfConfig,
    /// Encoder projection weight `(channels, model_dim)`.
    pub encoder_weight: Tensor,
    /// Encoder projection bias `(1, model_dim)`.
    pub encoder_bias: Tensor,
    /// Optional learned positional embedding `(tokens, model_dim)`.
    pub positional: Option<Tensor>,
    /// Per-block weights.
    pub blocks: Vec<TransformerBlockWeights>,
    /// Decoder hidden weight `(model_dim, decoder_dim)`.
    pub decoder_in_weight: Tensor,
    /// Decoder hidden bias.
    pub decoder_in_bias: Tensor,
    /// Decoder output weight `(decoder_dim, 2)`.
    pub decoder_out_weight: Tensor,
    /// Decoder output bias.
    pub decoder_out_bias: Tensor,
}

/// Exported weights of one transformer block.
#[derive(Debug, Clone)]
pub struct TransformerBlockWeights {
    /// First LayerNorm scale.
    pub norm1_gamma: Tensor,
    /// First LayerNorm shift.
    pub norm1_beta: Tensor,
    /// Query projection.
    pub wq: Tensor,
    /// Key projection.
    pub wk: Tensor,
    /// Value projection.
    pub wv: Tensor,
    /// Output projection.
    pub wo: Tensor,
    /// Second LayerNorm scale.
    pub norm2_gamma: Tensor,
    /// Second LayerNorm shift.
    pub norm2_beta: Tensor,
    /// Feed-forward input weight.
    pub mlp_in_weight: Tensor,
    /// Feed-forward input bias.
    pub mlp_in_bias: Tensor,
    /// Feed-forward output weight.
    pub mlp_out_weight: Tensor,
    /// Feed-forward output bias.
    pub mlp_out_bias: Tensor,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::init::normal as rand_tensor;
    use neural::loss::mse;
    use neural::optimizer::{Adam, Optimizer};

    #[test]
    fn forward_row_has_expected_shape_and_range() {
        let config = TinyVbfConfig::tiny_test();
        let mut model = TinyVbf::new(&config).unwrap();
        let row = rand_tensor(&[config.tokens, config.channels], 0.5, 3);
        let out = model.forward_row(&row).unwrap();
        assert_eq!(out.shape(), &[config.tokens, 2]);
        // Tanh output stays in [-1, 1].
        assert!(out.max_abs() <= 1.0);
        let inferred = model.infer_row(&row).unwrap();
        for (a, b) in out.as_slice().iter().zip(inferred.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn row_width_is_validated() {
        let mut model = TinyVbf::new(&TinyVbfConfig::tiny_test()).unwrap();
        let bad = Tensor::zeros(&[6, 5]);
        assert!(matches!(model.forward_row(&bad), Err(TinyVbfError::ShapeMismatch { .. })));
        assert!(matches!(model.infer_row(&bad), Err(TinyVbfError::ShapeMismatch { .. })));
    }

    #[test]
    fn weight_count_is_consistent_with_export() {
        let config = TinyVbfConfig::tiny_test();
        let model = TinyVbf::new(&config).unwrap();
        let weights = model.export_weights();
        let mut exported = weights.encoder_weight.numel()
            + weights.encoder_bias.numel()
            + weights.positional.as_ref().map_or(0, |p| p.numel())
            + weights.decoder_in_weight.numel()
            + weights.decoder_in_bias.numel()
            + weights.decoder_out_weight.numel()
            + weights.decoder_out_bias.numel();
        for b in &weights.blocks {
            exported += b.norm1_gamma.numel()
                + b.norm1_beta.numel()
                + b.wq.numel()
                + b.wk.numel()
                + b.wv.numel()
                + b.wo.numel()
                + b.norm2_gamma.numel()
                + b.norm2_beta.numel()
                + b.mlp_in_weight.numel()
                + b.mlp_in_bias.numel()
                + b.mlp_out_weight.numel()
                + b.mlp_out_bias.numel();
        }
        assert_eq!(model.num_weights(), exported);
        assert_eq!(weights.blocks.len(), config.num_blocks);
    }

    #[test]
    fn training_step_reduces_loss_on_a_fixed_row() {
        // Overfit a single synthetic row: the loss must drop substantially, which
        // exercises the whole backward path (decoder, blocks, positional, encoder).
        let config = TinyVbfConfig::tiny_test();
        let mut model = TinyVbf::new(&config).unwrap();
        let row = rand_tensor(&[config.tokens, config.channels], 0.5, 5);
        let target = rand_tensor(&[config.tokens, 2], 0.4, 6).map(|v| v.tanh());

        let mut adam = Adam::new(5e-3);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let prediction = model.forward_row(&row).unwrap();
            let (loss, grad) = mse(&prediction, &target);
            model.backward_row(&grad);
            adam.step(model.params_mut());
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        let first = first_loss.unwrap();
        assert!(last_loss < first * 0.2, "loss {first} -> {last_loss}");
    }

    #[test]
    fn serialization_round_trips_weights() {
        let config = TinyVbfConfig::tiny_test();
        let model = TinyVbf::new(&config).unwrap();
        let bytes = model.to_bytes();
        let mut other = TinyVbf::new(&TinyVbfConfig { seed: 999, ..config }).unwrap();
        // Different seed -> different weights before loading.
        assert_ne!(model.params()[0].value, other.params()[0].value);
        other.load_bytes(&bytes).unwrap();
        for (a, b) in model.params().iter().zip(other.params().iter()) {
            assert_eq!(a.value, b.value);
        }
        // Outputs now agree.
        let row = rand_tensor(&[config.tokens, config.channels], 0.5, 3);
        let mut model = model;
        let ya = model.infer_row(&row).unwrap();
        let yb = other.infer_row(&row).unwrap();
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn load_bytes_rejects_mismatched_architecture() {
        let model = TinyVbf::new(&TinyVbfConfig::tiny_test()).unwrap();
        let bytes = model.to_bytes();
        let mut bigger = TinyVbf::new(&TinyVbfConfig::small()).unwrap();
        assert!(bigger.load_bytes(&bytes).is_err());
        let mut same = TinyVbf::new(&TinyVbfConfig::tiny_test()).unwrap();
        assert!(same.load_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn model_without_positional_embedding_works() {
        let config = TinyVbfConfig { positional_embedding: false, ..TinyVbfConfig::tiny_test() };
        let mut model = TinyVbf::new(&config).unwrap();
        let row = rand_tensor(&[config.tokens, config.channels], 0.5, 3);
        let out = model.forward_row(&row).unwrap();
        assert_eq!(out.shape(), &[config.tokens, 2]);
        model.backward_row(&Tensor::full(&[config.tokens, 2], 0.1));
        assert!(model.num_weights() < TinyVbf::new(&TinyVbfConfig::tiny_test()).unwrap().num_weights());
    }

    #[test]
    fn rows_with_fewer_tokens_than_configured_still_work() {
        // Evaluation grids may have fewer lateral columns than the configured token
        // count; the positional embedding is simply truncated.
        let config = TinyVbfConfig::tiny_test();
        let mut model = TinyVbf::new(&config).unwrap();
        let row = rand_tensor(&[config.tokens - 2, config.channels], 0.5, 3);
        let out = model.forward_row(&row).unwrap();
        assert_eq!(out.shape(), &[config.tokens - 2, 2]);
        model.backward_row(&Tensor::full(&[config.tokens - 2, 2], 0.1));
    }
}
