//! Property-based tests for the image-quality metrics: the invariances the
//! eval subsystem's gates lean on. Contrast metrics must not care about
//! global gain (a beamformer that scales every pixel is neither better nor
//! worse), FWHM must grow when the point spread genuinely widens, and no
//! ROI placement — however far outside the field of view — may panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ultrasound::LinearArray;
use usmetrics::contrast::contrast_metrics;
use usmetrics::region::CircularRoi;
use usmetrics::resolution::{fwhm, resolution_metrics};
use beamforming::ImagingGrid;

fn grid() -> ImagingGrid {
    ImagingGrid::for_array(&LinearArray::l11_5v(), 0.005, 0.035, 120, 64)
}

/// Rayleigh-like speckle with a suppressed disc, the same construction the
/// unit tests use — but parameterized by seed and suppression level.
fn speckle_envelope(grid: &ImagingGrid, cyst: CircularRoi, inside_level: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0.0f32; grid.num_pixels()];
    for row in 0..grid.num_rows() {
        for col in 0..grid.num_cols() {
            let u: f32 = rng.gen_range(1e-6..1.0);
            let speckle = (-2.0 * u.ln()).sqrt();
            let value =
                if cyst.contains(grid.x(col), grid.z(row)) { inside_level * speckle } else { speckle };
            out[row * grid.num_cols() + col] = value;
        }
    }
    out
}

/// A discretely sampled Gaussian profile peaking at `centre`.
fn gaussian_profile(n: usize, centre: f32, sigma: f32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let d = i as f32 - centre;
            (-(d * d) / (2.0 * sigma * sigma)).exp()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CR, CNR and GCNR are ratios of the envelope against itself: a global
    /// gain applied to every pixel must leave all three unchanged (up to
    /// histogram-bin rounding for GCNR).
    #[test]
    fn contrast_metrics_are_invariant_under_global_gain(
        exponent in -2.5f32..2.5,
        level in 0.02f32..0.8,
        seed in 0u64..1_000_000,
    ) {
        let g = grid();
        let cyst = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = speckle_envelope(&g, cyst, level, seed);
        let gain = 10.0f32.powf(exponent);
        let scaled: Vec<f32> = envelope.iter().map(|v| v * gain).collect();

        let base = contrast_metrics(&envelope, &g, cyst).unwrap();
        let after = contrast_metrics(&scaled, &g, cyst).unwrap();

        prop_assert!((base.cr_db - after.cr_db).abs() <= 1e-2 * base.cr_db.max(1.0));
        prop_assert!((base.cnr - after.cnr).abs() <= 1e-2 * base.cnr.max(0.1));
        prop_assert!((base.gcnr - after.gcnr).abs() <= 0.02);
        // Range sanity regardless of gain.
        prop_assert!(after.gcnr >= 0.0 && after.gcnr <= 1.0);
        prop_assert!(after.cnr >= 0.0 && after.cr_db >= 0.0);
    }

    /// A genuinely wider point spread must measure a larger FWHM — the
    /// direction the `fwhm_mm` regression gate depends on.
    #[test]
    fn fwhm_grows_when_the_profile_widens(
        sigma in 1.0f32..8.0,
        widen in 1.05f32..2.0,
        centre_jitter in -0.5f32..0.5,
    ) {
        let n = 101;
        let centre = 50.0 + centre_jitter;
        let narrow = gaussian_profile(n, centre, sigma);
        let wide = gaussian_profile(n, centre, sigma * widen);
        let w_narrow = fwhm(&narrow, 50).unwrap();
        let w_wide = fwhm(&wide, 50).unwrap();
        prop_assert!(
            w_wide > w_narrow,
            "widening by {widen} shrank FWHM: {w_narrow} -> {w_wide}"
        );
        // And both track the analytic 2.355·sigma within a sample.
        prop_assert!((w_narrow - 2.355 * sigma).abs() <= 1.0);
    }

    /// Any cyst placement — including entirely outside the field of view,
    /// or degenerate radii — resolves to `Ok` or a typed error, never a
    /// panic or a non-finite metric.
    #[test]
    fn arbitrary_roi_placement_never_panics(
        cx in -0.5f32..0.5,
        cz in -0.5f32..0.5,
        radius in 0.0f32..0.1,
        seed in 0u64..1_000_000,
    ) {
        let g = grid();
        let probe = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = speckle_envelope(&g, probe, 0.2, seed);
        let cyst = CircularRoi::new(cx, cz, radius);
        if let Ok(m) = contrast_metrics(&envelope, &g, cyst) {
            prop_assert!(m.cr_db.is_finite() && m.cnr.is_finite());
            prop_assert!(m.gcnr >= 0.0 && m.gcnr <= 1.0);
        }
    }

    /// Same robustness bar for the resolution path: nominal target
    /// positions anywhere (on-grid, off-grid, at the edges) never panic,
    /// and successful measurements are finite and positive.
    #[test]
    fn arbitrary_target_position_never_panics(
        tx in -0.5f32..0.5,
        tz in -0.5f32..0.5,
        seed in 0u64..1_000_000,
    ) {
        let g = grid();
        let probe = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = speckle_envelope(&g, probe, 0.2, seed);
        if let Ok(m) = resolution_metrics(&envelope, &g, tx, tz) {
            prop_assert!(m.axial_mm.is_finite() && m.axial_mm > 0.0);
            prop_assert!(m.lateral_mm.is_finite() && m.lateral_mm > 0.0);
        }
    }

    /// `fwhm` is total on any profile/index pair: out-of-bounds peaks,
    /// empty profiles, negative or non-monotone values all yield `None` or
    /// a finite non-negative width.
    #[test]
    fn fwhm_is_total_on_arbitrary_profiles(
        values in prop::collection::vec(-10.0f32..10.0, 0..64),
        peak_idx in 0usize..80,
    ) {
        if let Some(w) = fwhm(&values, peak_idx) {
            prop_assert!(w.is_finite() && w >= 0.0, "fwhm {w}");
        }
    }
}
