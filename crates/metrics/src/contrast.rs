//! Contrast metrics: CR, CNR and GCNR (Tables I and V of the paper).
//!
//! All three are computed from the linear envelope of the beamformed image, comparing
//! the pixel population inside an anechoic cyst against a surrounding speckle annulus:
//!
//! * `CR   = |20·log10(µ_in / µ_out)|` (dB),
//! * `CNR  = |µ_in − µ_out| / sqrt(σ_in² + σ_out²)`,
//! * `GCNR = 1 − overlap(hist_in, hist_out)`.

use crate::region::CircularRoi;
use crate::{MetricsError, MetricsResult};
use beamforming::ImagingGrid;
use serde::{Deserialize, Serialize};
use usdsp::stats::{mean, std_dev, Histogram};

/// Contrast metrics of one cyst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContrastMetrics {
    /// Contrast ratio in dB (larger = darker cyst relative to speckle).
    pub cr_db: f32,
    /// Contrast-to-noise ratio (dimensionless).
    pub cnr: f32,
    /// Generalized CNR in `[0, 1]`.
    pub gcnr: f32,
}

impl ContrastMetrics {
    /// Element-wise mean of a set of per-cyst metrics; returns `None` for an empty set.
    pub fn mean_of(metrics: &[ContrastMetrics]) -> Option<ContrastMetrics> {
        if metrics.is_empty() {
            return None;
        }
        let n = metrics.len() as f32;
        Some(ContrastMetrics {
            cr_db: metrics.iter().map(|m| m.cr_db).sum::<f32>() / n,
            cnr: metrics.iter().map(|m| m.cnr).sum::<f32>() / n,
            gcnr: metrics.iter().map(|m| m.gcnr).sum::<f32>() / n,
        })
    }
}

/// Fraction of the cyst radius used for the inside region (keeps a safety margin from
/// the boundary, as in the PICMUS evaluation scripts).
pub const INSIDE_MARGIN: f32 = 0.8;
/// Inner radius of the background annulus, as a multiple of the cyst radius.
pub const BACKGROUND_INNER: f32 = 1.25;
/// Outer radius of the background annulus, as a multiple of the cyst radius.
pub const BACKGROUND_OUTER: f32 = 1.9;
/// Number of histogram bins used by the GCNR overlap estimate.
pub const GCNR_BINS: usize = 100;

/// Computes CR / CNR / GCNR for one anechoic cyst.
///
/// `envelope` is the row-major *linear* envelope of the beamformed image on `grid`;
/// `cyst` describes the true cyst position and radius.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyRegion`] when either the inside or the background region
/// contains no pixels (grid too coarse or cyst outside the field of view).
pub fn contrast_metrics(envelope: &[f32], grid: &ImagingGrid, cyst: CircularRoi) -> MetricsResult<ContrastMetrics> {
    let inside_roi = CircularRoi::new(cyst.cx, cyst.cz, cyst.radius * INSIDE_MARGIN);
    let background_roi = cyst.annulus(cyst.radius * BACKGROUND_INNER, cyst.radius * BACKGROUND_OUTER);
    let inside = inside_roi.collect_pixels(envelope, grid);
    let background = background_roi.collect_pixels(envelope, grid);
    if inside.is_empty() {
        return Err(MetricsError::EmptyRegion { which: "inside" });
    }
    if background.is_empty() {
        return Err(MetricsError::EmptyRegion { which: "background" });
    }

    let mu_in = mean(&inside).max(1e-12);
    let mu_out = mean(&background).max(1e-12);
    let cr_db = (20.0 * (mu_in / mu_out).log10()).abs();

    let sigma_in = std_dev(&inside);
    let sigma_out = std_dev(&background);
    let denom = (sigma_in * sigma_in + sigma_out * sigma_out).sqrt().max(1e-12);
    let cnr = (mu_in - mu_out).abs() / denom;

    let hi = inside
        .iter()
        .chain(background.iter())
        .fold(0.0f32, |m, &v| m.max(v))
        .max(1e-12);
    let hist_in = Histogram::from_values(&inside, GCNR_BINS, 0.0, hi);
    let hist_out = Histogram::from_values(&background, GCNR_BINS, 0.0, hi);
    let gcnr = (1.0 - hist_in.overlap(&hist_out)).clamp(0.0, 1.0);

    Ok(ContrastMetrics { cr_db, cnr, gcnr })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ultrasound::LinearArray;

    fn grid() -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::l11_5v(), 0.005, 0.035, 180, 96)
    }

    /// Builds a synthetic envelope image: Rayleigh-like speckle outside the cyst, a
    /// fraction `inside_level` of that inside.
    fn synthetic_envelope(grid: &ImagingGrid, cyst: CircularRoi, inside_level: f32, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = vec![0.0f32; grid.num_pixels()];
        for row in 0..grid.num_rows() {
            for col in 0..grid.num_cols() {
                let u: f32 = rng.gen_range(1e-6..1.0);
                let speckle = (-2.0 * u.ln()).sqrt(); // Rayleigh(1)
                let value = if cyst.contains(grid.x(col), grid.z(row)) { inside_level * speckle } else { speckle };
                out[row * grid.num_cols() + col] = value;
            }
        }
        out
    }

    #[test]
    fn perfect_anechoic_cyst_has_high_contrast() {
        let g = grid();
        let cyst = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = synthetic_envelope(&g, cyst, 0.01, 1);
        let m = contrast_metrics(&envelope, &g, cyst).unwrap();
        assert!(m.cr_db > 30.0, "cr {}", m.cr_db);
        assert!(m.gcnr > 0.9, "gcnr {}", m.gcnr);
        assert!(m.cnr > 1.0, "cnr {}", m.cnr);
    }

    #[test]
    fn no_contrast_when_inside_matches_background() {
        let g = grid();
        let cyst = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = synthetic_envelope(&g, cyst, 1.0, 2);
        let m = contrast_metrics(&envelope, &g, cyst).unwrap();
        assert!(m.cr_db < 1.5, "cr {}", m.cr_db);
        // With finite sample counts the histogram overlap estimate leaves a small
        // residual GCNR even for identical distributions.
        assert!(m.gcnr < 0.35, "gcnr {}", m.gcnr);
        assert!(m.cnr < 0.3, "cnr {}", m.cnr);
    }

    #[test]
    fn metrics_order_follows_suppression_level() {
        // A better beamformer suppresses the cyst interior more; CR and GCNR should
        // increase monotonically as the interior level decreases.
        let g = grid();
        let cyst = CircularRoi::new(0.0, 0.025, 0.004);
        let weak = contrast_metrics(&synthetic_envelope(&g, cyst, 0.5, 3), &g, cyst).unwrap();
        let strong = contrast_metrics(&synthetic_envelope(&g, cyst, 0.1, 3), &g, cyst).unwrap();
        assert!(strong.cr_db > weak.cr_db);
        assert!(strong.gcnr > weak.gcnr);
    }

    #[test]
    fn realistic_levels_give_paper_magnitude_cr() {
        // DAS on single-angle data leaves the cyst at roughly -12 to -18 dB relative to
        // the speckle; the CR metric should land in the paper's 10-20 dB range.
        let g = grid();
        let cyst = CircularRoi::new(0.0, 0.02, 0.004);
        let envelope = synthetic_envelope(&g, cyst, 0.2, 5);
        let m = contrast_metrics(&envelope, &g, cyst).unwrap();
        assert!(m.cr_db > 8.0 && m.cr_db < 22.0, "cr {}", m.cr_db);
        assert!(m.gcnr > 0.5 && m.gcnr <= 1.0, "gcnr {}", m.gcnr);
    }

    #[test]
    fn cyst_outside_grid_is_an_error() {
        let g = grid();
        let cyst = CircularRoi::new(0.5, 0.5, 0.004);
        assert!(matches!(
            contrast_metrics(&vec![1.0; g.num_pixels()], &g, cyst),
            Err(MetricsError::EmptyRegion { .. })
        ));
    }

    #[test]
    fn mean_of_metrics() {
        let a = ContrastMetrics { cr_db: 10.0, cnr: 1.0, gcnr: 0.8 };
        let b = ContrastMetrics { cr_db: 20.0, cnr: 3.0, gcnr: 0.6 };
        let m = ContrastMetrics::mean_of(&[a, b]).unwrap();
        assert_eq!(m.cr_db, 15.0);
        assert_eq!(m.cnr, 2.0);
        assert!((m.gcnr - 0.7).abs() < 1e-6);
        assert!(ContrastMetrics::mean_of(&[]).is_none());
    }
}
