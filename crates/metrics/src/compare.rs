//! Image-to-image comparison metrics (PSNR, NRMSE).
//!
//! Used to quantify the degradation introduced by quantization (Fig. 15 / Tables IV-V
//! support material) and to compare learned beamformer outputs against their MVDR
//! training targets.

use crate::{MetricsError, MetricsResult};

/// Root-mean-square error normalized by the reference dynamic range.
///
/// # Errors
///
/// Returns [`MetricsError::Undefined`] when the slices are empty or differ in length.
pub fn nrmse(reference: &[f32], test: &[f32]) -> MetricsResult<f32> {
    if reference.is_empty() || reference.len() != test.len() {
        return Err(MetricsError::Undefined { reason: "nrmse needs equal, non-empty inputs".into() });
    }
    let n = reference.len() as f32;
    let mse: f32 = reference.iter().zip(test.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / n;
    let lo = reference.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = reference.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let range = (hi - lo).max(1e-12);
    Ok(mse.sqrt() / range)
}

/// Peak signal-to-noise ratio in dB, using the reference peak as the signal level.
///
/// # Errors
///
/// Returns [`MetricsError::Undefined`] when the slices are empty or differ in length.
pub fn psnr_db(reference: &[f32], test: &[f32]) -> MetricsResult<f32> {
    if reference.is_empty() || reference.len() != test.len() {
        return Err(MetricsError::Undefined { reason: "psnr needs equal, non-empty inputs".into() });
    }
    let n = reference.len() as f32;
    let mse: f32 = reference.iter().zip(test.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / n;
    let peak = reference.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
    Ok(10.0 * (peak * peak / mse.max(1e-20)).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_zero_nrmse_and_huge_psnr() {
        let img = vec![0.1, 0.5, 0.9, 0.3];
        assert_eq!(nrmse(&img, &img).unwrap(), 0.0);
        assert!(psnr_db(&img, &img).unwrap() > 100.0);
    }

    #[test]
    fn larger_error_lowers_psnr_and_raises_nrmse() {
        let reference = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let small: Vec<f32> = reference.iter().map(|v| v + 0.01).collect();
        let large: Vec<f32> = reference.iter().map(|v| v + 0.2).collect();
        assert!(nrmse(&reference, &small).unwrap() < nrmse(&reference, &large).unwrap());
        assert!(psnr_db(&reference, &small).unwrap() > psnr_db(&reference, &large).unwrap());
    }

    #[test]
    fn known_values() {
        let reference = vec![0.0, 1.0];
        let test = vec![0.0, 0.9];
        // mse = 0.005, rmse ~ 0.0707, range 1 -> nrmse ~ 0.0707
        assert!((nrmse(&reference, &test).unwrap() - 0.0707).abs() < 1e-3);
        // psnr = 10 log10(1 / 0.005) = 23.01 dB
        assert!((psnr_db(&reference, &test).unwrap() - 23.01).abs() < 0.05);
    }

    #[test]
    fn mismatched_or_empty_inputs_error() {
        assert!(nrmse(&[], &[]).is_err());
        assert!(nrmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(psnr_db(&[], &[]).is_err());
        assert!(psnr_db(&[1.0, 2.0], &[1.0]).is_err());
    }
}
