//! Axial / lateral resolution: full width at half maximum of the point-spread function
//! (Tables II and IV of the paper).

use crate::{MetricsError, MetricsResult};
use beamforming::ImagingGrid;
use serde::{Deserialize, Serialize};

/// Axial and lateral −6 dB (half-amplitude) widths of a point target, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionMetrics {
    /// Axial FWHM in millimetres.
    pub axial_mm: f32,
    /// Lateral FWHM in millimetres.
    pub lateral_mm: f32,
}

impl ResolutionMetrics {
    /// Element-wise mean of several point-target measurements; `None` when empty.
    pub fn mean_of(metrics: &[ResolutionMetrics]) -> Option<ResolutionMetrics> {
        if metrics.is_empty() {
            return None;
        }
        let n = metrics.len() as f32;
        Some(ResolutionMetrics {
            axial_mm: metrics.iter().map(|m| m.axial_mm).sum::<f32>() / n,
            lateral_mm: metrics.iter().map(|m| m.lateral_mm).sum::<f32>() / n,
        })
    }
}

/// Half-size (in metres) of the search window around the nominal target position inside
/// which the actual envelope peak is located before measuring widths.
pub const SEARCH_WINDOW: f32 = 2.0e-3;

/// Measures the axial and lateral FWHM of the point target nearest `(target_x, target_z)`.
///
/// `envelope` is the row-major linear envelope on `grid`. The function first finds the
/// peak inside a ±[`SEARCH_WINDOW`] box around the nominal position, then measures the
/// half-maximum width of the axial and lateral profiles through that peak with linear
/// interpolation between pixels.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyRegion`] when the search window contains no pixels and
/// [`MetricsError::Undefined`] when a profile never falls below half maximum inside the
/// grid (target too close to the edge).
pub fn resolution_metrics(
    envelope: &[f32],
    grid: &ImagingGrid,
    target_x: f32,
    target_z: f32,
) -> MetricsResult<ResolutionMetrics> {
    let cols = grid.num_cols();
    let rows = grid.num_rows();

    // Locate the actual peak inside the search window.
    let mut peak_row = usize::MAX;
    let mut peak_col = usize::MAX;
    let mut peak_value = f32::NEG_INFINITY;
    for row in 0..rows {
        let z = grid.z(row);
        if (z - target_z).abs() > SEARCH_WINDOW {
            continue;
        }
        for col in 0..cols {
            let x = grid.x(col);
            if (x - target_x).abs() > SEARCH_WINDOW {
                continue;
            }
            let v = envelope[row * cols + col];
            if v > peak_value {
                peak_value = v;
                peak_row = row;
                peak_col = col;
            }
        }
    }
    if peak_row == usize::MAX || peak_value <= 0.0 {
        return Err(MetricsError::EmptyRegion { which: "search window" });
    }

    let axial_profile: Vec<f32> = (0..rows).map(|r| envelope[r * cols + peak_col]).collect();
    let lateral_profile: Vec<f32> = (0..cols).map(|c| envelope[peak_row * cols + c]).collect();

    let axial_width_px = fwhm(&axial_profile, peak_row).ok_or_else(|| MetricsError::Undefined {
        reason: "axial profile never drops below half maximum".into(),
    })?;
    let lateral_width_px = fwhm(&lateral_profile, peak_col).ok_or_else(|| MetricsError::Undefined {
        reason: "lateral profile never drops below half maximum".into(),
    })?;

    Ok(ResolutionMetrics {
        axial_mm: axial_width_px * grid.axial_step() * 1e3,
        lateral_mm: lateral_width_px * grid.lateral_step() * 1e3,
    })
}

/// Full width at half maximum (in samples, possibly fractional) of a profile around the
/// peak at `peak_idx`. Returns `None` when the profile never crosses the half-maximum
/// level on either side.
pub fn fwhm(profile: &[f32], peak_idx: usize) -> Option<f32> {
    if profile.is_empty() || peak_idx >= profile.len() {
        return None;
    }
    let peak = profile[peak_idx];
    if peak <= 0.0 {
        return None;
    }
    let half = peak / 2.0;

    // Walk left.
    let mut left = None;
    for i in (0..peak_idx).rev() {
        if profile[i] <= half {
            let t = (profile[i + 1] - half) / (profile[i + 1] - profile[i]).max(1e-12);
            left = Some(i as f32 + (1.0 - t));
            break;
        }
    }
    // Walk right.
    let mut right = None;
    for i in peak_idx + 1..profile.len() {
        if profile[i] <= half {
            let t = (profile[i - 1] - half) / (profile[i - 1] - profile[i]).max(1e-12);
            right = Some((i - 1) as f32 + t);
            break;
        }
    }
    match (left, right) {
        (Some(l), Some(r)) => Some(r - l),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::LinearArray;

    fn grid() -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::l11_5v(), 0.01, 0.02, 200, 100)
    }

    /// Gaussian blob envelope with the given axial / lateral standard deviations.
    fn gaussian_envelope(grid: &ImagingGrid, cx: f32, cz: f32, sigma_x: f32, sigma_z: f32) -> Vec<f32> {
        let mut out = vec![0.0f32; grid.num_pixels()];
        for row in 0..grid.num_rows() {
            for col in 0..grid.num_cols() {
                let dx = grid.x(col) - cx;
                let dz = grid.z(row) - cz;
                out[row * grid.num_cols() + col] =
                    (-(dx * dx) / (2.0 * sigma_x * sigma_x) - (dz * dz) / (2.0 * sigma_z * sigma_z)).exp();
            }
        }
        out
    }

    #[test]
    fn fwhm_of_triangle() {
        // Triangle peaking at index 5 with value 1.0 dropping by 0.2/sample: half max at
        // +-2.5 samples -> width 5.
        let profile: Vec<f32> = (0..11).map(|i| 1.0 - 0.2 * (i as f32 - 5.0).abs()).collect();
        let w = fwhm(&profile, 5).unwrap();
        assert!((w - 5.0).abs() < 1e-4, "w {w}");
    }

    #[test]
    fn fwhm_edge_cases() {
        assert!(fwhm(&[], 0).is_none());
        assert!(fwhm(&[1.0, 1.0, 1.0], 1).is_none()); // never drops below half
        assert!(fwhm(&[0.0, 0.0], 0).is_none()); // zero peak
        assert!(fwhm(&[1.0], 3).is_none()); // bad index
    }

    #[test]
    fn gaussian_width_matches_theory() {
        // FWHM of a Gaussian is 2.355 sigma.
        let g = grid();
        let sigma_x = 0.6e-3;
        let sigma_z = 0.25e-3;
        let envelope = gaussian_envelope(&g, 0.0, 0.02, sigma_x, sigma_z);
        let m = resolution_metrics(&envelope, &g, 0.0, 0.02).unwrap();
        assert!((m.lateral_mm - 2.355 * sigma_x * 1e3).abs() < 0.15, "lateral {}", m.lateral_mm);
        assert!((m.axial_mm - 2.355 * sigma_z * 1e3).abs() < 0.08, "axial {}", m.axial_mm);
    }

    #[test]
    fn narrower_blob_reports_better_resolution() {
        let g = grid();
        let wide = gaussian_envelope(&g, 0.0, 0.02, 0.8e-3, 0.4e-3);
        let narrow = gaussian_envelope(&g, 0.0, 0.02, 0.4e-3, 0.2e-3);
        let mw = resolution_metrics(&wide, &g, 0.0, 0.02).unwrap();
        let mn = resolution_metrics(&narrow, &g, 0.0, 0.02).unwrap();
        assert!(mn.lateral_mm < mw.lateral_mm);
        assert!(mn.axial_mm < mw.axial_mm);
    }

    #[test]
    fn peak_is_found_despite_position_offset() {
        // Nominal position off by 1 mm from the true blob centre: the search window
        // should still find the real peak.
        let g = grid();
        let envelope = gaussian_envelope(&g, 0.001, 0.021, 0.5e-3, 0.3e-3);
        let m = resolution_metrics(&envelope, &g, 0.0, 0.02).unwrap();
        assert!((m.lateral_mm - 2.355 * 0.5).abs() < 0.2);
    }

    #[test]
    fn empty_window_is_an_error() {
        let g = grid();
        let envelope = vec![0.0f32; g.num_pixels()];
        assert!(resolution_metrics(&envelope, &g, 0.0, 0.5).is_err());
        assert!(resolution_metrics(&envelope, &g, 0.0, 0.02).is_err());
    }

    #[test]
    fn mean_of_metrics() {
        let a = ResolutionMetrics { axial_mm: 0.3, lateral_mm: 0.5 };
        let b = ResolutionMetrics { axial_mm: 0.5, lateral_mm: 0.7 };
        let m = ResolutionMetrics::mean_of(&[a, b]).unwrap();
        assert!((m.axial_mm - 0.4).abs() < 1e-6);
        assert!((m.lateral_mm - 0.6).abs() < 1e-6);
        assert!(ResolutionMetrics::mean_of(&[]).is_none());
    }
}
