//! Regions of interest on the imaging grid.

use beamforming::ImagingGrid;
use serde::{Deserialize, Serialize};

/// A circular region of interest in physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircularRoi {
    /// Lateral centre (metres).
    pub cx: f32,
    /// Depth centre (metres).
    pub cz: f32,
    /// Radius (metres).
    pub radius: f32,
}

impl CircularRoi {
    /// Creates a circular ROI.
    pub fn new(cx: f32, cz: f32, radius: f32) -> Self {
        Self { cx, cz, radius }
    }

    /// Whether the point `(x, z)` lies inside the circle.
    pub fn contains(&self, x: f32, z: f32) -> bool {
        let dx = x - self.cx;
        let dz = z - self.cz;
        dx * dx + dz * dz <= self.radius * self.radius
    }

    /// A concentric annulus with inner radius `inner` and outer radius `outer`, used as
    /// the speckle background reference around a cyst.
    pub fn annulus(&self, inner: f32, outer: f32) -> AnnularRoi {
        AnnularRoi { cx: self.cx, cz: self.cz, inner, outer }
    }

    /// Collects the values of all pixels whose centres fall inside the ROI.
    pub fn collect_pixels(&self, values: &[f32], grid: &ImagingGrid) -> Vec<f32> {
        collect(values, grid, |x, z| self.contains(x, z))
    }
}

/// An annular (ring-shaped) region of interest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnularRoi {
    /// Lateral centre (metres).
    pub cx: f32,
    /// Depth centre (metres).
    pub cz: f32,
    /// Inner radius (metres).
    pub inner: f32,
    /// Outer radius (metres).
    pub outer: f32,
}

impl AnnularRoi {
    /// Whether the point lies within the ring.
    pub fn contains(&self, x: f32, z: f32) -> bool {
        let dx = x - self.cx;
        let dz = z - self.cz;
        let d2 = dx * dx + dz * dz;
        d2 > self.inner * self.inner && d2 <= self.outer * self.outer
    }

    /// Collects the values of all pixels whose centres fall inside the ring.
    pub fn collect_pixels(&self, values: &[f32], grid: &ImagingGrid) -> Vec<f32> {
        collect(values, grid, |x, z| self.contains(x, z))
    }
}

fn collect<F: Fn(f32, f32) -> bool>(values: &[f32], grid: &ImagingGrid, predicate: F) -> Vec<f32> {
    let cols = grid.num_cols();
    let mut out = Vec::new();
    for (idx, &v) in values.iter().enumerate() {
        let row = idx / cols;
        let col = idx % cols;
        if row >= grid.num_rows() {
            break;
        }
        if predicate(grid.x(col), grid.z(row)) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::LinearArray;

    fn grid() -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::l11_5v(), 0.01, 0.03, 60, 40)
    }

    #[test]
    fn circle_membership() {
        let roi = CircularRoi::new(0.0, 0.02, 0.002);
        assert!(roi.contains(0.0, 0.02));
        assert!(roi.contains(0.001, 0.021));
        assert!(!roi.contains(0.0, 0.025));
    }

    #[test]
    fn annulus_excludes_centre_and_outside() {
        let ring = CircularRoi::new(0.0, 0.02, 0.002).annulus(0.003, 0.006);
        assert!(!ring.contains(0.0, 0.02));
        assert!(ring.contains(0.004, 0.02));
        assert!(!ring.contains(0.01, 0.02));
    }

    #[test]
    fn collect_pixels_counts_match_areas() {
        let g = grid();
        let values = vec![1.0f32; g.num_pixels()];
        let small = CircularRoi::new(0.0, 0.025, 0.002).collect_pixels(&values, &g);
        let large = CircularRoi::new(0.0, 0.025, 0.004).collect_pixels(&values, &g);
        assert!(!small.is_empty());
        // Quadrupling the area should roughly quadruple the pixel count.
        let ratio = large.len() as f32 / small.len() as f32;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn collect_respects_values() {
        let g = grid();
        let mut values = vec![0.0f32; g.num_pixels()];
        // Mark the pixel nearest the ROI centre.
        let row = g.nearest_row(0.02);
        let col = g.nearest_col(0.0);
        values[row * g.num_cols() + col] = 7.0;
        let inside = CircularRoi::new(0.0, 0.02, 0.0015).collect_pixels(&values, &g);
        assert!(inside.contains(&7.0));
    }

    #[test]
    fn disjoint_roi_collects_nothing() {
        let g = grid();
        let values = vec![1.0f32; g.num_pixels()];
        let roi = CircularRoi::new(0.5, 0.5, 0.001);
        assert!(roi.collect_pixels(&values, &g).is_empty());
        let ring = roi.annulus(0.002, 0.003);
        assert!(ring.collect_pixels(&values, &g).is_empty());
    }
}
