//! Ultrasound image-quality metrics.
//!
//! The paper scores every beamformer with the standard PICMUS metrics:
//!
//! * contrast of anechoic cysts — Contrast Ratio (CR), Contrast-to-Noise Ratio (CNR)
//!   and Generalized CNR (GCNR) — Tables I and V,
//! * axial and lateral resolution of point targets — full width at half maximum of the
//!   point-spread function — Tables II and IV,
//! * lateral PSF profiles — Figures 12 and 14.
//!
//! All metrics operate on [`beamforming::BModeImage`] / [`beamforming::IqImage`] values
//! plus the phantom geometry (cyst centres, point-target positions).
//!
//! # Example
//!
//! ```
//! use usmetrics::region::CircularRoi;
//! let roi = CircularRoi::new(0.0, 0.02, 0.003);
//! assert!(roi.contains(0.0, 0.02));
//! assert!(!roi.contains(0.01, 0.02));
//! ```

#![deny(missing_docs)]

pub mod compare;
pub mod contrast;
pub mod psf;
pub mod region;
pub mod resolution;

pub use contrast::{ContrastMetrics, contrast_metrics};
pub use resolution::{ResolutionMetrics, resolution_metrics};

use std::error::Error;
use std::fmt;

/// Errors produced while computing image-quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// A region of interest contained no pixels.
    EmptyRegion {
        /// Which region was empty ("inside", "background", …).
        which: &'static str,
    },
    /// The requested measurement could not be made (e.g. the profile never drops below
    /// the half-maximum threshold, so a width is undefined).
    Undefined {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::EmptyRegion { which } => write!(f, "region `{which}` contains no pixels"),
            MetricsError::Undefined { reason } => write!(f, "metric undefined: {reason}"),
        }
    }
}

impl Error for MetricsError {}

/// Convenience result alias.
pub type MetricsResult<T> = Result<T, MetricsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(MetricsError::EmptyRegion { which: "inside" }.to_string().contains("inside"));
        assert!(MetricsError::Undefined { reason: "no half crossing".into() }.to_string().contains("half"));
    }
}
