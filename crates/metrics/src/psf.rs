//! Lateral point-spread-function profiles (Figures 12 and 14 of the paper).

use beamforming::{BModeImage, ImagingGrid};
use serde::{Deserialize, Serialize};

/// A lateral cut through the image at a fixed depth, normalized to its own maximum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LateralPsf {
    /// Lateral pixel positions in millimetres.
    pub positions_mm: Vec<f32>,
    /// Normalized amplitude in dB (0 dB at the profile peak).
    pub amplitude_db: Vec<f32>,
    /// Depth (millimetres) at which the cut was taken.
    pub depth_mm: f32,
}

impl LateralPsf {
    /// Extracts the lateral PSF at the grid row closest to `depth` metres.
    pub fn from_bmode(image: &BModeImage, depth: f32) -> Self {
        let grid = image.grid();
        let row = grid.nearest_row(depth);
        Self::from_db_row(&image.lateral_profile(row), grid, row)
    }

    /// Extracts the lateral PSF from an envelope image (row-major linear values).
    pub fn from_envelope(envelope: &[f32], grid: &ImagingGrid, depth: f32) -> Self {
        let row = grid.nearest_row(depth);
        let cols = grid.num_cols();
        let profile: Vec<f32> = (0..cols).map(|c| envelope[row * cols + c]).collect();
        let peak = profile.iter().cloned().fold(0.0f32, f32::max).max(1e-12);
        let db: Vec<f32> = profile.iter().map(|&v| 20.0 * (v.max(1e-12) / peak).log10()).collect();
        Self::from_parts(db, grid, row)
    }

    fn from_db_row(db_row: &[f32], grid: &ImagingGrid, row: usize) -> Self {
        // Re-normalize so the profile's own peak sits at 0 dB.
        let peak = db_row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let db = db_row.iter().map(|&v| v - peak).collect();
        Self::from_parts(db, grid, row)
    }

    fn from_parts(amplitude_db: Vec<f32>, grid: &ImagingGrid, row: usize) -> Self {
        let positions_mm = grid.x_positions().iter().map(|&x| x * 1e3).collect();
        Self { positions_mm, amplitude_db, depth_mm: grid.z(row) * 1e3 }
    }

    /// Index and value (dB) of the profile peak.
    pub fn peak(&self) -> (usize, f32) {
        self.amplitude_db
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap_or((0, f32::NEG_INFINITY))
    }

    /// −6 dB mainlobe width in millimetres, or `None` when it cannot be measured.
    pub fn mainlobe_width_mm(&self) -> Option<f32> {
        let (peak_idx, peak_db) = self.peak();
        let threshold = peak_db - 6.0;
        let mut left = None;
        for i in (0..peak_idx).rev() {
            if self.amplitude_db[i] <= threshold {
                left = Some(i);
                break;
            }
        }
        let mut right = None;
        for i in peak_idx + 1..self.amplitude_db.len() {
            if self.amplitude_db[i] <= threshold {
                right = Some(i);
                break;
            }
        }
        match (left, right) {
            (Some(l), Some(r)) => Some((self.positions_mm[r] - self.positions_mm[l]).abs()),
            _ => None,
        }
    }

    /// Highest sidelobe level in dB relative to the peak: the maximum of the profile
    /// outside ±`exclusion_mm` of the peak position. Returns `None` when everything is
    /// inside the exclusion zone.
    pub fn peak_sidelobe_db(&self, exclusion_mm: f32) -> Option<f32> {
        let (peak_idx, peak_db) = self.peak();
        let peak_pos = self.positions_mm[peak_idx];
        self.positions_mm
            .iter()
            .zip(self.amplitude_db.iter())
            .filter(|(pos, _)| (*pos - peak_pos).abs() > exclusion_mm)
            .map(|(_, &db)| db - peak_db)
            .fold(None, |acc: Option<f32>, v| Some(acc.map_or(v, |m| m.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::LinearArray;

    fn grid() -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::l11_5v(), 0.01, 0.02, 50, 128)
    }

    fn blob_envelope(grid: &ImagingGrid, sigma_x: f32) -> Vec<f32> {
        let mut out = vec![1e-6f32; grid.num_pixels()];
        for row in 0..grid.num_rows() {
            for col in 0..grid.num_cols() {
                let dx = grid.x(col);
                let dz = grid.z(row) - 0.02;
                out[row * grid.num_cols() + col] +=
                    (-(dx * dx) / (2.0 * sigma_x * sigma_x) - (dz * dz) / (2.0 * 0.0004f32.powi(2))).exp();
            }
        }
        out
    }

    #[test]
    fn psf_peak_is_at_zero_db_and_centred() {
        let g = grid();
        let envelope = blob_envelope(&g, 0.6e-3);
        let psf = LateralPsf::from_envelope(&envelope, &g, 0.02);
        let (idx, peak) = psf.peak();
        assert!(peak.abs() < 1e-4);
        assert!((psf.positions_mm[idx]).abs() < 0.5, "peak at {} mm", psf.positions_mm[idx]);
        assert_eq!(psf.positions_mm.len(), 128);
        assert!((psf.depth_mm - 20.0).abs() < 0.5);
    }

    #[test]
    fn mainlobe_width_tracks_blob_size() {
        let g = grid();
        let narrow = LateralPsf::from_envelope(&blob_envelope(&g, 0.4e-3), &g, 0.02);
        let wide = LateralPsf::from_envelope(&blob_envelope(&g, 1.0e-3), &g, 0.02);
        let wn = narrow.mainlobe_width_mm().unwrap();
        let ww = wide.mainlobe_width_mm().unwrap();
        assert!(ww > wn, "wide {ww} narrow {wn}");
    }

    #[test]
    fn from_bmode_matches_from_envelope_shape() {
        let g = grid();
        let envelope = blob_envelope(&g, 0.6e-3);
        let bmode = BModeImage::from_envelope(&envelope, g.clone(), 60.0).unwrap();
        let a = LateralPsf::from_bmode(&bmode, 0.02);
        let b = LateralPsf::from_envelope(&envelope, &g, 0.02);
        assert_eq!(a.positions_mm.len(), b.positions_mm.len());
        let (ia, _) = a.peak();
        let (ib, _) = b.peak();
        assert_eq!(ia, ib);
    }

    #[test]
    fn sidelobe_of_pure_gaussian_is_low() {
        let g = grid();
        let psf = LateralPsf::from_envelope(&blob_envelope(&g, 0.5e-3), &g, 0.02);
        let sll = psf.peak_sidelobe_db(3.0).unwrap();
        assert!(sll < -20.0, "sidelobe {sll}");
        // Exclusion wider than the whole image -> None.
        assert!(psf.peak_sidelobe_db(1000.0).is_none());
    }

    #[test]
    fn flat_profile_has_no_measurable_mainlobe() {
        let g = grid();
        let envelope = vec![1.0f32; g.num_pixels()];
        let psf = LateralPsf::from_envelope(&envelope, &g, 0.02);
        assert!(psf.mainlobe_width_mm().is_none());
    }
}
