//! Round-trip tests for the stats wire format: snapshot → serialize →
//! parse → equal. The bench agent protocol ships these structs across a
//! process boundary; a counter silently dropped by the encoder or decoder
//! would corrupt every scenario report, so equality is asserted on fully
//! populated values (every field non-zero / non-default) and on a live
//! router snapshot.

use beamforming::grid::ImagingGrid;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas, QuantQualityStats};
use beamforming::plan::PlanCacheStats;
use serve::router::{Router, StreamSpec};
use serve::wire::{
    degrade_from_json, degrade_to_json, latency_from_json, latency_to_json, resilience_from_json,
    resilience_to_json, server_stats_from_json, server_stats_to_json,
};
use serve::{
    BatchConfig, DegradeStats, EngineStatsWire, LatencyHistogram, ResilienceStats, RouterStatsWire,
    ServeError, ServeResult, ServerStats,
};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray};

/// A histogram with mass in many buckets, including the extremes.
fn populated_histogram(salt: u64) -> LatencyHistogram {
    let mut latency = LatencyHistogram::default();
    latency.record(Duration::ZERO);
    for i in 0..40u64 {
        latency.record(Duration::from_micros(salt + i * i * 37));
    }
    latency.record(Duration::from_secs(90));
    latency
}

/// Every field non-default, so a dropped field cannot hide behind zero.
fn populated_wire() -> RouterStatsWire {
    RouterStatsWire {
        server: ServerStats {
            submitted: 101,
            completed: 99,
            batches: 17,
            max_batch_observed: 8,
            deadline_expired: 3,
            latency: populated_histogram(11),
            workers_respawned: 2,
        },
        engines: vec![
            EngineStatsWire {
                stream: "das/32ch/16x8".into(),
                backend: "das".into(),
                requests: 61,
                batches: 9,
                panics: 1,
                latency: populated_histogram(23),
                plan_cache: Some(PlanCacheStats { hits: 60, misses: 1, evictions: 2, entries: 3, capacity: 4 }),
                quant_quality: None,
            },
            EngineStatsWire {
                stream: "tiny-vbf-fx16/32ch/16x8".into(),
                backend: "tiny-vbf-fx16".into(),
                requests: 38,
                batches: 8,
                panics: 0,
                latency: populated_histogram(47),
                plan_cache: None,
                quant_quality: Some(QuantQualityStats {
                    frames: 38,
                    signal_energy: 1234.5678901234567,
                    noise_energy: 0.000012345678912345678,
                }),
            },
        ],
        degrade: vec![DegradeStats {
            stream: "tiny-vbf-fp/32ch/16x8".into(),
            ladder: vec!["tiny-vbf-fp".into(), "tiny-vbf-fx24".into(), "tiny-vbf-fx16".into()],
            rung: 2,
            backend: "tiny-vbf-fx16".into(),
            downshifts: 5,
            upshifts: 3,
            sheds: 12,
            windows: 40,
        }],
        resilience: ResilienceStats {
            panics: 1,
            retries: 4,
            quarantined: 6,
            quarantines: 2,
            engines_evicted: 1,
            workers_respawned: 2,
        },
    }
}

#[test]
fn fully_populated_router_stats_round_trip() {
    let wire = populated_wire();
    let line = wire.to_json_line();
    assert!(!line.contains('\n'), "wire framing is one line");
    let parsed = RouterStatsWire::parse_line(&line).expect("parse");
    assert_eq!(parsed, wire);
    // A second encode of the parsed value is byte-identical (stable field
    // order), so diffs of persisted stats lines are meaningful.
    assert_eq!(parsed.to_json_line(), line);
}

#[test]
fn component_encoders_round_trip() {
    let wire = populated_wire();
    assert_eq!(latency_from_json(&latency_to_json(&wire.server.latency)).unwrap(), wire.server.latency);
    assert_eq!(server_stats_from_json(&server_stats_to_json(&wire.server)).unwrap(), wire.server);
    assert_eq!(resilience_from_json(&resilience_to_json(&wire.resilience)).unwrap(), wire.resilience);
    assert_eq!(degrade_from_json(&degrade_to_json(&wire.degrade[0])).unwrap(), wire.degrade[0]);
}

#[test]
fn quality_energies_round_trip_bit_exactly() {
    // f64 energies cross the boundary through decimal text; the shortest
    // round-trip formatting must recover the exact bits, or SQNR recomputed
    // on the harness side would drift from the server's.
    let original = populated_wire();
    let parsed = RouterStatsWire::parse_line(&original.to_json_line()).unwrap();
    let (a, b) = (
        original.engines[1].quant_quality.unwrap(),
        parsed.engines[1].quant_quality.unwrap(),
    );
    assert_eq!(a.signal_energy.to_bits(), b.signal_energy.to_bits());
    assert_eq!(a.noise_energy.to_bits(), b.noise_energy.to_bits());
    assert_eq!(a.sqnr_db().to_bits(), b.sqnr_db().to_bits());
}

#[test]
fn malformed_lines_are_rejected_not_zeroed() {
    let wire = populated_wire();
    let line = wire.to_json_line();
    // Remove one required counter: the parse must fail loudly.
    let broken = line.replacen("\"batches\":17,", "", 1);
    assert_ne!(broken, line, "test must actually strip the field");
    assert!(RouterStatsWire::parse_line(&broken).is_err());
    assert!(RouterStatsWire::parse_line("not json at all").is_err());
    assert!(RouterStatsWire::parse_line("{}").is_err());
    // Histogram with the wrong bucket count is rejected (resolution drift).
    let bad_hist = r#"{"buckets":[1,2,3],"total_micros":9}"#;
    assert!(latency_from_json(&runtime::json::Json::parse(bad_hist).unwrap()).is_err());
}

#[test]
fn live_router_snapshot_survives_the_wire() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8);
    let spec = StreamSpec { array: array.clone(), grid, sound_speed: 1540.0, backend: "das".into() };
    let factory = |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        match spec.backend.as_str() {
            "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
            other => Err(ServeError::Engine(format!("unknown backend {other}"))),
        }
    };
    let router = Router::new(BatchConfig { max_batch: 4, ..BatchConfig::default() }, factory);
    let frame = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
    let handles: Vec<_> = (0..6).map(|_| router.submit(&spec, frame.clone()).expect("submit")).collect();
    for handle in handles {
        handle.wait().expect("serve");
    }
    let stats = router.shutdown();

    let wire = RouterStatsWire::from_stats(&stats);
    let parsed = RouterStatsWire::parse_line(&wire.to_json_line()).expect("parse");
    assert_eq!(parsed, wire);
    assert_eq!(parsed.server.completed, 6);
    assert_eq!(parsed.engines.len(), 1);
    assert_eq!(parsed.engines[0].requests, 6);
    assert_eq!(parsed.engines[0].backend, "das");
    assert_eq!(parsed.engines[0].latency.count(), 6);
    assert!(parsed.engines[0].plan_cache.is_some(), "planned DAS must ship its cache counters");
}
