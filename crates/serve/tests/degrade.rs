//! Degradation-ladder behaviour: property-tested hysteresis on the pure
//! state machine, plus end-to-end downshift-under-pressure / upshift-on-
//! recovery through a [`Router`] with injected latency faults.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use proptest::prelude::*;
use serve::degrade::{LadderState, LadderTuning, Shift};
use serve::router::{Router, StreamSpec};
use serve::{BatchConfig, ChaosBeamformer, ChaosSchedule, DegradeConfig, ServeError, ServeResult};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random frame (cheap LCG — beamforming cost and
/// results only depend on the values being fixed, not physical).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn small_spec(backend: &str) -> StreamSpec {
    let array = LinearArray::small_test_array();
    StreamSpec {
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8),
        array,
        sound_speed: 1540.0,
        backend: backend.into(),
    }
}

/// Factory for a two-rung ladder: `"slow"` is a DAS with a fixed injected
/// latency (machine-independent service time), `"das"` the plain planned
/// DAS fallback. Both compute bitwise-identical images.
fn two_rung_factory(
    delay: Duration,
) -> impl Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static {
    move |spec: &StreamSpec| match spec.backend.as_str() {
        "slow" => Ok(Arc::new(ChaosBeamformer::new(
            PlannedDas::new(DelayAndSum::default()),
            ChaosSchedule::seeded(7).delay_one_in(1, delay),
        ))),
        "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
        other => Err(ServeError::Engine(format!("unknown backend {other}"))),
    }
}

fn direct_das(spec: &StreamSpec, frame: &ChannelData) -> IqImage {
    DelayAndSum::default()
        .beamform(frame, &spec.array, &spec.grid, spec.sound_speed)
        .expect("direct DAS reference")
}

fn two_rung_ladder_config() -> DegradeConfig {
    DegradeConfig {
        window: 4,
        cooldown_windows: 1,
        downshift_expiry_rate: 0.5,
        upshift_expiry_rate: 0.1,
        ..DegradeConfig::with_ladder(vec!["slow".into(), "das".into()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The anti-oscillation guarantee: over arbitrary load/quality traces,
    /// two consecutive shifts of one stream are always at least
    /// `cooldown_windows` observation windows apart, the rung never leaves
    /// the ladder, and a quality-poisoned window never downshifts.
    #[test]
    fn ladder_shifts_respect_cooldown_and_bounds(
        num_rungs in 2usize..=5,
        cooldown in 0u32..=3,
        bar_windows in 0u32..=3,
        trace in collection::vec((0u32..=4, 0u32..=1), 1..48),
    ) {
        let tuning = LadderTuning {
            window: 4,
            cooldown_windows: cooldown,
            downshift_expiry_rate: 0.5,
            upshift_expiry_rate: 0.1,
            sqnr_floor_db: Some(10.0),
            quality_bar_windows: bar_windows,
        };
        let mut state = LadderState::new(num_rungs);
        let mut shift_windows: Vec<u64> = Vec::new();
        for (expired_per_window, bad_quality) in trace {
            for j in 0..4u32 {
                let full = state.record(j < expired_per_window, &tuning);
                prop_assert_eq!(full, j == 3, "the window must fill exactly at its configured length");
            }
            let window_sqnr = if bad_quality == 1 { f64::NAN } else { 40.0 };
            let shift = state.end_window(&tuning, window_sqnr);
            prop_assert!(state.rung() < num_rungs, "rung {} escaped a {}-rung ladder", state.rung(), num_rungs);
            prop_assert!(
                !(bad_quality == 1 && shift == Some(Shift::Down)),
                "a quality-poisoned window must never downshift deeper"
            );
            if shift.is_some() {
                shift_windows.push(state.windows_closed());
            }
        }
        for pair in shift_windows.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= u64::from(cooldown),
                "shifts at windows {} and {} violate the {}-window cooldown",
                pair[0], pair[1], cooldown
            );
        }
    }
}

#[test]
fn ladder_downshifts_under_deadline_pressure_and_recovers() {
    // Rung 0 serves at a fixed injected 5 ms per call; under 2 ms deadlines
    // and a back-to-back burst the queue expires en masse, so the stream
    // must fall back to the fast rung — and climb back once pressure clears.
    let router = Router::with_degrade(
        BatchConfig { max_batch: 2, linger: Duration::ZERO, workers: 1, queue_capacity: 64, ..BatchConfig::default() },
        two_rung_factory(Duration::from_millis(5)),
        two_rung_ladder_config(),
    )
    .unwrap();
    let spec = small_spec("slow");

    // Phase 1 — saturate. Every handle must resolve (completed or expired):
    // no request may be lost to the degradation machinery.
    let burst: Vec<_> = (0..16)
        .map(|i| {
            let frame = synthetic_frame(&spec.array, 256, 101 + i as u64);
            router.submit_with_deadline(&spec, frame, Duration::from_millis(2)).unwrap()
        })
        .collect();
    let mut expired = 0;
    for handle in burst {
        match handle.wait() {
            Ok(_) => {}
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(other) => panic!("unexpected failure under pressure: {other}"),
        }
    }
    assert!(expired >= 4, "the burst must actually blow deadlines, got {expired} expiries");

    let mid = router.stats();
    assert_eq!(mid.degrade.len(), 1, "the managed stream must be tracked");
    assert!(mid.downshifts_total() >= 1, "deadline pressure must downshift the stream");
    assert!(mid.sheds_total() >= 4, "expired requests must be counted as sheds");
    assert_eq!(mid.degrade[0].rung, 1, "the stream must sit at the fallback rung after the burst");
    assert_eq!(mid.degrade[0].backend, "das");

    // Phase 2 — pressure gone: sequential, deadline-free traffic. Windows
    // now close with a zero expiry rate, so the stream must upshift back to
    // full quality within a few windows.
    for i in 0..12u64 {
        let frame = synthetic_frame(&spec.array, 256, 201 + i);
        router.submit(&spec, frame).unwrap().wait().expect("unpressured traffic must complete");
    }
    let stats = router.shutdown();
    assert!(stats.upshifts_total() >= 1, "recovered load must upshift the stream");
    assert_eq!(stats.degrade[0].rung, 0, "the stream must return to full quality");
    assert_eq!(stats.degrade[0].backend, "slow");
    assert!(stats.degrade[0].windows >= 2);
}

#[test]
fn calibrated_ladder_is_bitwise_unchanged_for_unmanaged_and_rung0_traffic() {
    // Acceptance gate of the quality-calibration subsystem: a DegradeConfig
    // derived from measured per-rung quality (rather than hand-picked
    // constants) must still be invisible for full-quality traffic — the
    // measured ordering picks "slow" as the head, and rung-0 responses stay
    // bitwise identical to direct inference.
    let measurement = |backend: &str, quality_score: f64, sqnr_db: f64| serve::RungMeasurement {
        backend: backend.into(),
        quality_score,
        sqnr_db,
    };
    let calibrated = DegradeConfig::from_quality_profile(&[
        measurement("das", 0.72, 41.0),
        measurement("slow", 0.95, f64::INFINITY),
    ])
    .unwrap();
    assert_eq!(calibrated.ladders, vec![vec!["slow".to_string(), "das".to_string()]]);
    assert_eq!(calibrated.sqnr_floor_db, Some(38.0));

    let router = Router::with_degrade(
        BatchConfig { max_batch: 2, linger: Duration::ZERO, workers: 1, ..BatchConfig::default() },
        two_rung_factory(Duration::from_micros(200)),
        calibrated,
    )
    .unwrap();
    let managed = small_spec("slow");
    let unmanaged = small_spec("das");
    let frames: Vec<ChannelData> = (0..8).map(|i| synthetic_frame(&managed.array, 256, 401 + i)).collect();
    for frame in &frames {
        let image = router.submit(&managed, frame.clone()).unwrap().wait().unwrap();
        assert_eq!(image, direct_das(&managed, frame), "calibrated rung-0 responses must be bitwise identical");
        let image = router.submit(&unmanaged, frame.clone()).unwrap().wait().unwrap();
        assert_eq!(image, direct_das(&unmanaged, frame), "unmanaged responses must be bitwise identical");
    }
    let stats = router.shutdown();
    assert_eq!(stats.degrade[0].rung, 0, "no pressure, no movement");
    assert_eq!(stats.downshifts_total() + stats.upshifts_total(), 0);
}

#[test]
fn unpressured_streams_stay_at_full_quality_and_bitwise_identical() {
    // With no deadline pressure the ladder must never move, and every
    // response must be bitwise identical to direct inference — degradation
    // must be invisible until it actually engages.
    let router = Router::with_degrade(
        BatchConfig { max_batch: 2, linger: Duration::ZERO, workers: 1, ..BatchConfig::default() },
        two_rung_factory(Duration::from_micros(200)),
        two_rung_ladder_config(),
    )
    .unwrap();
    let managed = small_spec("slow");
    let unmanaged = small_spec("das");

    let frames: Vec<ChannelData> = (0..10).map(|i| synthetic_frame(&managed.array, 256, 301 + i)).collect();
    for frame in &frames {
        let image = router.submit(&managed, frame.clone()).unwrap().wait().unwrap();
        assert_eq!(image, direct_das(&managed, frame), "rung-0 responses must be bitwise identical");
        let image = router.submit(&unmanaged, frame.clone()).unwrap().wait().unwrap();
        assert_eq!(image, direct_das(&unmanaged, frame), "unmanaged responses must be bitwise identical");
    }

    let stats = router.shutdown();
    assert_eq!(stats.degrade.len(), 1, "only the ladder-headed stream is managed");
    assert_eq!(stats.degrade[0].rung, 0);
    assert_eq!(stats.downshifts_total() + stats.upshifts_total() + stats.sheds_total(), 0);
    assert_eq!(stats.server.completed, 20);
}
