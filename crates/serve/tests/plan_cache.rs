//! Plan lifecycle through the serving path: a planned beamformer engine
//! builds its delay tables once per stream, serves frames bitwise identical
//! to the direct beamformer, and rebuilds the plan exactly once when the
//! stream's frame format changes mid-flight.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum};
use beamforming::plan::{FrameFormat, PlannedDas};
use serve::service::BeamformEngine;
use serve::{BatchConfig, Server};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};

fn frames_with_depth(array: &LinearArray, max_depth: f32, count: usize, seed: u64) -> Vec<ChannelData> {
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), max_depth);
    (0..count)
        .map(|i| {
            let phantom = Phantom::builder(0.01, max_depth)
                .seed(seed + i as u64)
                .add_point_target(-0.002 + 0.001 * i as f32, 0.8 * max_depth, 1.0)
                .build();
            sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap()
        })
        .collect()
}

#[test]
fn served_planned_das_rebuilds_once_on_frame_format_change() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8);
    // Two stream segments with different acquisition depths → different
    // sample counts → different frame formats.
    let segment_a = frames_with_depth(&array, 0.024, 4, 100);
    let segment_b = frames_with_depth(&array, 0.030, 4, 200);
    assert_ne!(
        FrameFormat::of(&segment_a[0]),
        FrameFormat::of(&segment_b[0]),
        "test needs two distinct frame formats"
    );

    let planned = Arc::new(PlannedDas::new(DelayAndSum::default()));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid.clone(), 1540.0);
    // Warm the cache for the first segment: the plan exists before any frame.
    engine.warm(&FrameFormat::of(&segment_a[0]));
    assert_eq!(planned.plans_built(), 1, "warm must build the first plan");

    let das = DelayAndSum::default();
    let reference: Vec<IqImage> = segment_a
        .iter()
        .chain(segment_b.iter())
        .map(|f| das.beamform(f, &array, &grid, 1540.0).unwrap())
        .collect();

    let config = BatchConfig { max_batch: 3, linger: Duration::from_micros(200), ..BatchConfig::default() };
    let server = Server::new(config, engine);
    let handles: Vec<_> = segment_a
        .iter()
        .chain(segment_b.iter())
        .map(|f| server.submit(f.clone()).unwrap())
        .collect();
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let stats = server.shutdown();

    assert_eq!(stats.completed, 8);
    assert_eq!(stats.latency.count(), 8, "one latency sample per served frame");
    for (i, (a, b)) in reference.iter().zip(served.iter()).enumerate() {
        assert_eq!(a, b, "served frame {i} differs from the direct beamformer");
    }
    assert_eq!(
        planned.plans_built(),
        2,
        "exactly one rebuild for the format change (no per-frame rebuilds)"
    );
}

#[test]
fn warm_is_idempotent_and_best_effort() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 8, 8);
    let planned = Arc::new(PlannedDas::new(DelayAndSum::default()));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid, 1540.0);
    let frame = FrameFormat { num_samples: 256, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
    engine.warm(&frame);
    engine.warm(&frame);
    assert_eq!(planned.plans_built(), 1, "re-warming the same format must hit the cache");
}
