//! Plan lifecycle through the serving path: a planned beamformer engine
//! builds its delay tables once per stream, serves frames bitwise identical
//! to the direct beamformer, and rebuilds the plan exactly once when the
//! stream's frame format changes mid-flight.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum};
use beamforming::plan::{FrameFormat, PlannedDas};
use serve::service::BeamformEngine;
use serve::{BatchConfig, Server};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};

fn frames_with_depth(array: &LinearArray, max_depth: f32, count: usize, seed: u64) -> Vec<ChannelData> {
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), max_depth);
    (0..count)
        .map(|i| {
            let phantom = Phantom::builder(0.01, max_depth)
                .seed(seed + i as u64)
                .add_point_target(-0.002 + 0.001 * i as f32, 0.8 * max_depth, 1.0)
                .build();
            sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap()
        })
        .collect()
}

#[test]
fn served_planned_das_rebuilds_once_on_frame_format_change() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8);
    // Two stream segments with different acquisition depths → different
    // sample counts → different frame formats.
    let segment_a = frames_with_depth(&array, 0.024, 4, 100);
    let segment_b = frames_with_depth(&array, 0.030, 4, 200);
    assert_ne!(
        FrameFormat::of(&segment_a[0]),
        FrameFormat::of(&segment_b[0]),
        "test needs two distinct frame formats"
    );

    let planned = Arc::new(PlannedDas::new(DelayAndSum::default()));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid.clone(), 1540.0);
    // Warm the cache for the first segment: the plan exists before any frame.
    engine.warm(&FrameFormat::of(&segment_a[0]));
    assert_eq!(planned.plans_built(), 1, "warm must build the first plan");

    let das = DelayAndSum::default();
    let reference: Vec<IqImage> = segment_a
        .iter()
        .chain(segment_b.iter())
        .map(|f| das.beamform(f, &array, &grid, 1540.0).unwrap())
        .collect();

    let config = BatchConfig { max_batch: 3, linger: Duration::from_micros(200), ..BatchConfig::default() };
    let server = Server::new(config, engine);
    let handles: Vec<_> = segment_a
        .iter()
        .chain(segment_b.iter())
        .map(|f| server.submit(f.clone()).unwrap())
        .collect();
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let stats = server.shutdown();

    assert_eq!(stats.completed, 8);
    assert_eq!(stats.latency.count(), 8, "one latency sample per served frame");
    for (i, (a, b)) in reference.iter().zip(served.iter()).enumerate() {
        assert_eq!(a, b, "served frame {i} differs from the direct beamformer");
    }
    assert_eq!(
        planned.plans_built(),
        2,
        "exactly one rebuild for the format change (no per-frame rebuilds)"
    );
}

#[test]
fn served_alternating_formats_stay_warm_in_the_multi_slot_cache() {
    // A stream that interleaves two acquisition depths frame by frame: the
    // single-slot cache of PR 3 would rebuild the plan on *every* frame;
    // the multi-slot LRU keeps both plans warm after the two cold builds.
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8);
    let segment_a = frames_with_depth(&array, 0.024, 4, 300);
    let segment_b = frames_with_depth(&array, 0.030, 4, 400);
    let interleaved: Vec<ChannelData> =
        segment_a.iter().zip(&segment_b).flat_map(|(a, b)| [a.clone(), b.clone()]).collect();

    let planned = Arc::new(PlannedDas::new(DelayAndSum::default()));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid.clone(), 1540.0);
    engine.warm(&FrameFormat::of(&segment_a[0]));
    engine.warm(&FrameFormat::of(&segment_b[0]));
    assert_eq!(planned.plans_built(), 2, "warm-up must build one plan per format");

    let das = DelayAndSum::default();
    let reference: Vec<IqImage> =
        interleaved.iter().map(|f| das.beamform(f, &array, &grid, 1540.0).unwrap()).collect();
    let server = Server::new(BatchConfig { max_batch: 4, ..BatchConfig::default() }, engine);
    let handles: Vec<_> = interleaved.iter().map(|f| server.submit(f.clone()).unwrap()).collect();
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    server.shutdown();

    assert_eq!(reference, served, "alternating formats must not change any pixel");
    assert_eq!(planned.plans_built(), 2, "zero plan rebuilds after warm-up");
    let stats = planned.cache_stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 8, "every served frame must hit a warm plan");
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.entries, 2);
}

#[test]
fn lru_eviction_order_holds_through_the_serving_path() {
    // Capacity 2 under three interleaved formats: the least-recently-served
    // format is the one evicted, and returning to it is the only rebuild.
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 8, 8);
    let planned = Arc::new(PlannedDas::with_cache_capacity(DelayAndSum::default(), 2));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid, 1540.0);
    let frame = |n: usize| ChannelData::zeros(n, array.num_elements(), array.sampling_frequency());
    let (a, b, c) = (frame(128), frame(160), frame(192));

    let serve_one = |f: &ChannelData| {
        let results = serve::BatchEngine::process_batch(&engine, vec![f.clone()]);
        results.into_iter().next().unwrap().unwrap()
    };
    serve_one(&a); // build A            -> [A]
    serve_one(&b); // build B            -> [B, A]
    serve_one(&a); // hit A (refresh)    -> [A, B]
    serve_one(&c); // build C, evict B   -> [C, A]
    serve_one(&a); // hit A              -> [A, C]
    let stats = planned.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 3, 1));
    serve_one(&b); // B was evicted: rebuild, evicting C (the LRU entry)
    serve_one(&a); // A stayed warm through everything
    let stats = planned.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (3, 4, 2));
    assert_eq!(stats.entries, 2);
}

#[test]
fn warm_is_idempotent_and_best_effort() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.008, 8, 8);
    let planned = Arc::new(PlannedDas::new(DelayAndSum::default()));
    let engine = BeamformEngine::new(Arc::clone(&planned), array.clone(), grid, 1540.0);
    let frame = FrameFormat { num_samples: 256, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
    engine.warm(&frame);
    engine.warm(&frame);
    assert_eq!(planned.plans_built(), 1, "re-warming the same format must hit the cache");
}
