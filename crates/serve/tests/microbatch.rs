//! Micro-batcher edge cases: empty queue, batch-of-one, coalescing, ordering,
//! backpressure, error isolation and shutdown with in-flight requests.

use serve::{BatchConfig, ServeError, Server, TrySubmitError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn identity_server(config: BatchConfig) -> Server<impl serve::BatchEngine<Request = usize, Response = usize>> {
    Server::from_fn(config, |batch: Vec<usize>| batch.into_iter().map(Ok).collect())
}

#[test]
fn shutdown_with_empty_queue_returns_immediately() {
    let server = identity_server(BatchConfig::default());
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.batches, 0);
}

#[test]
fn batch_of_one_resolves() {
    let server = identity_server(BatchConfig { linger: Duration::ZERO, ..BatchConfig::default() });
    let handle = server.submit(41).unwrap();
    assert_eq!(handle.wait().unwrap(), 41);
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.max_batch_observed, 1);
}

#[test]
fn results_map_to_their_own_requests_in_order() {
    let server = identity_server(BatchConfig { max_batch: 4, queue_capacity: 128, ..BatchConfig::default() });
    let handles: Vec<_> = (0..100).map(|v| server.submit(v).unwrap()).collect();
    for (expected, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap(), expected);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 100);
    assert!(stats.batches >= 25, "max_batch 4 needs >= 25 engine calls for 100 requests");
    assert!(stats.max_batch_observed <= 4);
}

/// A gate the test holds closed while the worker is inside the engine,
/// so queue contents while the worker is busy are deterministic.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, usize)>, // (open, entered-count)
    changed: Condvar,
}

impl Gate {
    fn enter_and_wait(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 += 1;
        self.changed.notify_all();
        while !state.0 {
            state = self.changed.wait(state).unwrap();
        }
    }

    fn wait_for_entries(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.1 < n {
            state = self.changed.wait(state).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().0 = true;
        self.changed.notify_all();
    }
}

#[test]
fn pending_requests_coalesce_into_one_batch() {
    let gate = Arc::new(Gate::default());
    let sizes = Arc::new(Mutex::new(Vec::new()));
    let server = {
        let gate = Arc::clone(&gate);
        let sizes = Arc::clone(&sizes);
        Server::from_fn(
            BatchConfig { max_batch: 8, linger: Duration::ZERO, queue_capacity: 16, ..BatchConfig::default() },
            move |batch: Vec<usize>| {
                sizes.lock().unwrap().push(batch.len());
                // Only the plug request (value 0) blocks on the gate.
                if batch[0] == 0 {
                    gate.enter_and_wait();
                }
                batch.into_iter().map(Ok).collect()
            },
        )
    };
    // Plug the single worker, then queue 5 requests behind it.
    let plug = server.submit(0).unwrap();
    gate.wait_for_entries(1);
    let handles: Vec<_> = (1..=5).map(|v| server.submit(v).unwrap()).collect();
    gate.open();
    assert_eq!(plug.wait().unwrap(), 0);
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap(), i + 1);
    }
    let stats = server.shutdown();
    // The 5 queued requests must have been drained as one coalesced batch.
    assert_eq!(*sizes.lock().unwrap(), vec![1, 5]);
    assert_eq!(stats.max_batch_observed, 5);
}

#[test]
fn full_queue_rejects_try_submit_and_backpressures_submit() {
    let gate = Arc::new(Gate::default());
    let server = {
        let gate = Arc::clone(&gate);
        Server::from_fn(
            BatchConfig { max_batch: 1, linger: Duration::ZERO, queue_capacity: 2, ..BatchConfig::default() },
            move |batch: Vec<usize>| {
                gate.enter_and_wait();
                batch.into_iter().map(Ok).collect()
            },
        )
    };
    let plug = server.submit(0).unwrap();
    gate.wait_for_entries(1); // worker is now busy; the queue is empty
    let q1 = server.submit(1).unwrap();
    let q2 = server.submit(2).unwrap();
    assert_eq!(server.queue_depth(), 2);
    // Queue is at capacity: non-blocking submission must shed the request.
    match server.try_submit(99) {
        Err(TrySubmitError::Full(returned)) => {
            assert_eq!(returned, 99);
            assert_eq!(TrySubmitError::Full(returned).as_serve_error(), ServeError::QueueFull);
        }
        other => panic!("expected Full rejection, got {:?}", other.map(|_| "handle")),
    }
    // A blocking submit must park until the worker frees a slot.
    let blocked = {
        let submitted = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&submitted);
        let server_ref = &server;
        std::thread::scope(|scope| {
            let join = scope.spawn(move || {
                let handle = server_ref.submit(3).unwrap();
                flag.store(1, Ordering::SeqCst);
                handle
            });
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(submitted.load(Ordering::SeqCst), 0, "submit must block while the queue is full");
            gate.open(); // worker drains; space frees up; submit completes
            join.join().unwrap()
        })
    };
    assert_eq!(plug.wait().unwrap(), 0);
    assert_eq!(q1.wait().unwrap(), 1);
    assert_eq!(q2.wait().unwrap(), 2);
    assert_eq!(blocked.wait().unwrap(), 3);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = identity_server(BatchConfig {
        max_batch: 3,
        linger: Duration::from_millis(50),
        queue_capacity: 64,
        workers: 2,
        ..BatchConfig::default()
    });
    let handles: Vec<_> = (0..40).map(|v| server.submit(v).unwrap()).collect();
    // Shut down immediately: every accepted request must still resolve.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 40);
    assert_eq!(stats.completed, 40);
    for (expected, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait().unwrap(), expected);
    }
}

#[test]
fn per_request_engine_errors_do_not_poison_the_batch() {
    let server = Server::from_fn(
        BatchConfig { max_batch: 8, queue_capacity: 16, ..BatchConfig::default() },
        |batch: Vec<usize>| {
            batch
                .into_iter()
                .map(|v| if v % 2 == 0 { Ok(v) } else { Err(ServeError::Engine(format!("odd input {v}"))) })
                .collect()
        },
    );
    let handles: Vec<_> = (0..10).map(|v| server.submit(v).unwrap()).collect();
    for (v, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(out) => {
                assert_eq!(out, v);
                assert_eq!(v % 2, 0);
            }
            Err(ServeError::Engine(reason)) => {
                assert_eq!(v % 2, 1);
                assert!(reason.contains(&format!("{v}")));
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    server.shutdown();
}

#[test]
fn wrong_result_count_is_reported_not_hung() {
    let server = Server::from_fn(
        BatchConfig { max_batch: 4, linger: Duration::ZERO, ..BatchConfig::default() },
        |_batch: Vec<usize>| vec![Ok(1)], // always one result, whatever the batch size
    );
    let gate_batch: Vec<_> = (0..1).map(|v| server.submit(v).unwrap()).collect();
    // A singleton batch actually matches the bogus engine, so it succeeds…
    assert_eq!(gate_batch.into_iter().next().unwrap().wait().unwrap(), 1);
    server.shutdown();

    // …but any larger coalesced batch must resolve every handle with the
    // mismatch error instead of leaving three of them pending forever.
    let gate = Arc::new(Gate::default());
    let server = {
        let gate = Arc::clone(&gate);
        Server::from_fn(
            BatchConfig { max_batch: 4, linger: Duration::ZERO, queue_capacity: 16, ..BatchConfig::default() },
            move |batch: Vec<usize>| {
                if batch[0] == 0 {
                    gate.enter_and_wait();
                    batch.into_iter().map(Ok).collect()
                } else {
                    vec![Ok(1)]
                }
            },
        )
    };
    let plug = server.submit(0).unwrap();
    gate.wait_for_entries(1);
    let handles: Vec<_> = (1..=3).map(|v| server.submit(v).unwrap()).collect();
    gate.open();
    plug.wait().unwrap();
    for handle in handles {
        assert_eq!(handle.wait(), Err(ServeError::BatchSizeMismatch { expected: 3, actual: 1 }));
    }
    server.shutdown();
}

#[test]
fn engine_panic_resolves_its_batch_and_the_worker_survives() {
    let server = Server::from_fn(
        BatchConfig { max_batch: 1, linger: Duration::ZERO, queue_capacity: 8, ..BatchConfig::default() },
        |batch: Vec<usize>| {
            assert!(!batch.is_empty(), "empty batches must never be dispatched");
            if batch[0] == 13 {
                panic!("unlucky request");
            }
            batch.into_iter().map(Ok).collect()
        },
    );
    let before = server.submit(1).unwrap();
    let doomed = server.submit(13).unwrap();
    let after = server.submit(2).unwrap();
    assert_eq!(before.wait().unwrap(), 1);
    // The panicking batch resolves instead of hanging…
    assert_eq!(doomed.wait(), Err(ServeError::WorkerDied));
    // …and the single worker survives to serve requests queued behind it.
    assert_eq!(after.wait().unwrap(), 2);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
}

#[test]
fn try_take_and_is_ready_probe_without_blocking() {
    let gate = Arc::new(Gate::default());
    let server = {
        let gate = Arc::clone(&gate);
        Server::from_fn(BatchConfig::default(), move |batch: Vec<usize>| {
            gate.enter_and_wait();
            batch.into_iter().map(Ok).collect()
        })
    };
    let handle = server.submit(7).unwrap();
    gate.wait_for_entries(1);
    assert!(!handle.is_ready());
    assert!(handle.try_take().is_none());
    gate.open();
    // Poll until the result lands, as a client loop would.
    let result = loop {
        if let Some(result) = handle.try_take() {
            break result;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(result.unwrap(), 7);
    // A consumed handle polls as not-ready/None instead of panicking, so
    // sweeping a mixed set of handles every tick is safe.
    assert!(!handle.is_ready());
    assert!(handle.try_take().is_none());
    server.shutdown();
}
