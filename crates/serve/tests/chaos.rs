//! Fault-injection suite: panics stay contained to their stream, repeated
//! failures quarantine the spec, transient factory errors recover through
//! retries, dead workers respawn, idle engines are TTL-evicted, and chaos
//! that only delays (never corrupts) preserves bitwise identity.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, PlannedDas};
use serve::router::{FaultPolicy, Router, StreamSpec};
use serve::{
    BatchConfig, ChaosBeamformer, ChaosFactory, ChaosFault, ChaosSchedule, ServeError, ServeResult, Server,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random frame (cheap LCG — beamforming cost and
/// results only depend on the values being fixed, not physical).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn small_spec(backend: &str) -> StreamSpec {
    let array = LinearArray::small_test_array();
    StreamSpec {
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, 16, 8),
        array,
        sound_speed: 1540.0,
        backend: backend.into(),
    }
}

/// Serial reference through the direct (unplanned) DAS — the router must
/// match it bitwise whenever no fault corrupted the frame.
fn direct_das(spec: &StreamSpec, frame: &ChannelData) -> IqImage {
    DelayAndSum::default()
        .beamform(frame, &spec.array, &spec.grid, spec.sound_speed)
        .expect("direct DAS reference")
}

/// One-batch-at-a-time config so scripted chaos call indices line up with
/// submission order.
fn serial_config() -> BatchConfig {
    BatchConfig { max_batch: 1, linger: Duration::ZERO, workers: 1, ..BatchConfig::default() }
}

#[test]
fn engine_panic_fails_only_its_own_stream() {
    // Two streams share the queue: a chaos-wrapped DAS whose first two
    // beamform calls panic, and a healthy DAS. Scripted faults make the run
    // deterministic regardless of how requests coalesce into batches.
    let schedule = ChaosSchedule::scripted(vec![Some(ChaosFault::Panic), Some(ChaosFault::Panic), None, None]);
    let chaos = Arc::new(ChaosBeamformer::new(PlannedDas::new(DelayAndSum::default()), schedule));
    let chaos_engine = Arc::clone(&chaos);
    let factory = move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        match spec.backend.as_str() {
            "chaos-das" => Ok(Arc::clone(&chaos_engine) as Arc<dyn Beamformer + Send + Sync>),
            "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
            other => Err(ServeError::Engine(format!("unknown backend {other}"))),
        }
    };
    let router = Router::new(
        BatchConfig { max_batch: 4, linger: Duration::from_micros(300), workers: 1, ..BatchConfig::default() },
        factory,
    );

    let chaos_spec = small_spec("chaos-das");
    let das_spec = small_spec("das");
    let frames: Vec<ChannelData> = (0..4).map(|i| synthetic_frame(&chaos_spec.array, 256, 11 + i)).collect();

    // Two rounds, each pairing one poisoned chaos frame with one healthy DAS
    // frame (they typically coalesce into the same dispatched batch). Waiting
    // between rounds keeps each poisoned frame in its own sub-batch, so the
    // scripted faults are consumed one per round even though a panicking
    // sub-batch aborts before later frames in it would beamform.
    for i in 0..2 {
        let poisoned = router.submit(&chaos_spec, frames[i].clone()).unwrap();
        let healthy = router.submit(&das_spec, frames[2 + i].clone()).unwrap();
        assert_eq!(
            poisoned.wait(),
            Err(ServeError::EnginePanicked { backend: "chaos-das".into() }),
            "a chaos panic must resolve (not strand) its own stream's requests"
        );
        let image = healthy.wait().expect("the healthy stream must be untouched by the panic");
        assert_eq!(image, direct_das(&das_spec, &frames[2 + i]), "healthy stream must stay bitwise identical");
    }

    // The chaos engine survives the contained panics: its next (clean)
    // scripted call serves normally and matches direct inference.
    let after = router.submit(&chaos_spec, frames[0].clone()).unwrap();
    assert_eq!(after.wait().expect("engine must survive contained panics"), direct_das(&chaos_spec, &frames[0]));

    let stats = router.shutdown();
    assert_eq!(stats.resilience.panics, 2, "each poisoned round is one contained dispatch panic");
    let engine = stats
        .engines
        .iter()
        .find(|e| e.spec.backend == "chaos-das")
        .expect("chaos engine must stay registered");
    assert_eq!(engine.panics, stats.resilience.panics, "panics must be attributed to the panicking engine");
    assert_eq!(stats.resilience.quarantines, 0, "below the panic threshold nothing is quarantined");
    assert_eq!(chaos.chaos_stats().panics, 2);
}

#[test]
fn repeated_dispatch_panics_quarantine_the_engine() {
    let schedule = ChaosSchedule::scripted(vec![Some(ChaosFault::Panic); 8]);
    let chaos = Arc::new(ChaosBeamformer::new(PlannedDas::new(DelayAndSum::default()), schedule));
    let chaos_engine = Arc::clone(&chaos);
    let factory = move |_: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        Ok(Arc::clone(&chaos_engine) as Arc<dyn Beamformer + Send + Sync>)
    };
    let policy = FaultPolicy {
        panic_quarantine_after: 2,
        quarantine_for: Duration::from_secs(60),
        ..FaultPolicy::default()
    };
    let router = Router::with_policies(serial_config(), factory, 1, policy, None).unwrap();
    let spec = small_spec("chaos-das");

    for i in 0..2u64 {
        let handle = router.submit(&spec, synthetic_frame(&spec.array, 256, 31 + i)).unwrap();
        assert_eq!(handle.wait(), Err(ServeError::EnginePanicked { backend: "chaos-das".into() }));
    }
    // The second consecutive panic tears the engine down and opens the
    // breaker: the next request fails fast without touching the engine.
    let handle = router.submit(&spec, synthetic_frame(&spec.array, 256, 33)).unwrap();
    assert_eq!(handle.wait(), Err(ServeError::Quarantined { backend: "chaos-das".into() }));

    assert_eq!(router.num_engines(), 0, "the quarantined engine must be torn down");
    let stats = router.shutdown();
    assert_eq!(stats.resilience.panics, 2);
    assert_eq!(stats.resilience.quarantines, 1);
    assert!(stats.resilience.quarantined >= 1, "fast-fail rejections must be counted");
    assert_eq!(chaos.chaos_stats().panics, 2, "quarantine must stop traffic from reaching the engine");
}

#[test]
fn transient_factory_failures_recover_through_retries() {
    let spawned = Arc::new(AtomicUsize::new(0));
    let spawned_in = Arc::clone(&spawned);
    let inner = move |spec: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        spawned_in.fetch_add(1, Ordering::SeqCst);
        match spec.backend.as_str() {
            "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
            other => Err(ServeError::Engine(format!("unknown backend {other}"))),
        }
    };
    // Two injected failures; the default policy's two retries absorb them.
    let factory = ChaosFactory::new(inner).fail_builds("das", 2);
    let probe = factory.probe();
    let router = Router::new(serial_config(), factory);

    let spec = small_spec("das");
    let frame = synthetic_frame(&spec.array, 256, 41);
    let handle = router.submit(&spec, frame.clone()).unwrap();
    let image = handle.wait().expect("the third build attempt must succeed");
    assert_eq!(image, direct_das(&spec, &frame), "recovery must not change results");

    assert_eq!(probe.build_calls(), 3, "initial attempt + two retries");
    assert_eq!(probe.injected_failures(), 2);
    assert_eq!(spawned.load(Ordering::SeqCst), 1, "the wrapped factory only runs on the clean attempt");
    let stats = router.shutdown();
    assert_eq!(stats.resilience.retries, 2);
    assert_eq!(stats.resilience.quarantines, 0, "a recovered build must not trip the breaker");
}

#[test]
fn persistent_factory_failure_trips_the_circuit_breaker() {
    let build_calls = Arc::new(AtomicUsize::new(0));
    let build_calls_in = Arc::clone(&build_calls);
    let factory = move |_: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        build_calls_in.fetch_add(1, Ordering::SeqCst);
        Err(ServeError::Engine("warp-core offline".into()))
    };
    let policy = FaultPolicy {
        factory_retries: 0,
        quarantine_after: 2,
        quarantine_for: Duration::from_secs(60),
        ..FaultPolicy::default()
    };
    let router = Router::with_policies(serial_config(), factory, 1, policy, None).unwrap();
    let spec = small_spec("das");

    for i in 0..2u64 {
        let handle = router.submit(&spec, synthetic_frame(&spec.array, 256, 51 + i)).unwrap();
        match handle.wait() {
            Err(ServeError::Engine(reason)) => assert!(reason.contains("warp-core")),
            other => panic!("failed build round {i} must surface the factory error, got {other:?}"),
        }
    }
    // Breaker open: requests fail fast and the broken factory is left alone.
    for i in 0..3u64 {
        let handle = router.submit(&spec, synthetic_frame(&spec.array, 256, 61 + i)).unwrap();
        assert_eq!(handle.wait(), Err(ServeError::Quarantined { backend: "das".into() }));
    }
    assert_eq!(build_calls.load(Ordering::SeqCst), 2, "an open breaker must stop hammering the factory");

    let stats = router.shutdown();
    assert_eq!(stats.resilience.quarantines, 1);
    assert_eq!(stats.resilience.quarantined, 3);
    assert_eq!(stats.engines.len(), 0, "a spec that never built must not appear as an engine");
}

#[test]
fn supervisor_respawns_dead_workers_and_resolves_their_requests() {
    // `contain_panics: false` lets the engine panic unwind the whole worker
    // thread — the supervisor must resolve the orphaned request and respawn.
    let config = BatchConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        workers: 1,
        contain_panics: false,
        ..BatchConfig::default()
    };
    let server = Server::from_fn(config, |batch: Vec<i64>| {
        batch
            .into_iter()
            .map(|v| {
                assert!(v >= 0, "poison request kills the worker");
                Ok(v * 2)
            })
            .collect()
    });

    let poisoned = server.submit(-1).unwrap();
    assert_eq!(poisoned.wait(), Err(ServeError::WorkerDied), "the dying worker's request must still resolve");
    // The sole worker is dead at this point; only a respawned one can serve.
    let healthy = server.submit(21).unwrap();
    assert_eq!(healthy.wait(), Ok(42), "a respawned worker must drain the queue");

    let stats = server.shutdown();
    assert_eq!(stats.workers_respawned, 1);
    assert_eq!(stats.completed, 2, "supervisor and worker must count each request exactly once");
}

#[test]
fn idle_engines_are_evicted_after_their_ttl() {
    let spawned = Arc::new(AtomicUsize::new(0));
    let spawned_in = Arc::clone(&spawned);
    let factory = move |_: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        spawned_in.fetch_add(1, Ordering::SeqCst);
        Ok(Arc::new(PlannedDas::new(DelayAndSum::default())))
    };
    let policy = FaultPolicy { engine_ttl: Some(Duration::from_millis(40)), ..FaultPolicy::default() };
    let router = Router::with_policies(serial_config(), factory, 1, policy, None).unwrap();
    let spec = small_spec("das");

    let frame = synthetic_frame(&spec.array, 256, 71);
    router.submit(&spec, frame.clone()).unwrap().wait().unwrap();
    assert_eq!(router.num_engines(), 1);
    assert_eq!(spawned.load(Ordering::SeqCst), 1);

    // Let the engine go stale, then route the next frame: the sweep evicts
    // the idle engine and the factory rebuilds it transparently.
    std::thread::sleep(Duration::from_millis(120));
    let image = router.submit(&spec, frame.clone()).unwrap().wait().unwrap();
    assert_eq!(image, direct_das(&spec, &frame), "eviction and rebuild must not change results");

    assert_eq!(spawned.load(Ordering::SeqCst), 2, "the stale engine must be rebuilt");
    assert_eq!(router.num_engines(), 1);
    let stats = router.shutdown();
    assert_eq!(stats.resilience.engines_evicted, 1);
}

#[test]
fn delay_only_chaos_preserves_bitwise_identity() {
    // Latency faults must never corrupt results: every response under a
    // delay-injecting schedule is bitwise identical to direct inference.
    let schedule = ChaosSchedule::seeded(42).delay_one_in(2, Duration::from_millis(1));
    let chaos = Arc::new(ChaosBeamformer::new(PlannedDas::new(DelayAndSum::default()), schedule));
    let chaos_engine = Arc::clone(&chaos);
    let factory = move |_: &StreamSpec| -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        Ok(Arc::clone(&chaos_engine) as Arc<dyn Beamformer + Send + Sync>)
    };
    let router = Router::new(
        BatchConfig { max_batch: 3, linger: Duration::from_micros(200), workers: 1, ..BatchConfig::default() },
        factory,
    );
    let spec = small_spec("das");
    let frames: Vec<ChannelData> = (0..10).map(|i| synthetic_frame(&spec.array, 192 + 64 * (i % 2), 81 + i as u64)).collect();

    let handles: Vec<_> = frames.iter().map(|f| router.submit(&spec, f.clone()).unwrap()).collect();
    for (handle, frame) in handles.into_iter().zip(&frames) {
        let image = handle.wait().expect("delays must never fail a request");
        assert_eq!(image, direct_das(&spec, frame), "delayed responses must stay bitwise identical");
    }

    let chaos_stats = chaos.chaos_stats();
    assert_eq!(chaos_stats.calls, 10);
    assert!(chaos_stats.delays >= 1, "the seeded schedule must actually inject delays");
    assert_eq!(chaos_stats.panics + chaos_stats.errors + chaos_stats.nan_frames, 0);
    let stats = router.shutdown();
    assert_eq!(stats.server.completed, 10);
    assert_eq!(stats.resilience, Default::default());
}
