//! Router behaviour: heterogeneous streams through one queue with bitwise
//! identity to serial inference, lazy engine spin-up, per-engine stats,
//! deadline timeouts and factory failures.

use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, DelayAndSum, Mvdr, PlannedDas, PlannedMvdr};
use beamforming::plan::FrameFormat;
use serve::router::{Router, StreamSpec};
use serve::{BatchConfig, ServeError, ServeResult, TrySubmitError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray};

/// Deterministic pseudo-random frame (cheap LCG — beamforming cost and
/// results only depend on the values being fixed, not physical).
fn synthetic_frame(array: &LinearArray, num_samples: usize, seed: u64) -> ChannelData {
    let mut data = ChannelData::zeros(num_samples, array.num_elements(), array.sampling_frequency());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for v in data.as_mut_slice() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    data
}

fn classical_factory(
    spawned: Arc<AtomicUsize>,
) -> impl Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static {
    move |spec: &StreamSpec| {
        spawned.fetch_add(1, Ordering::SeqCst);
        match spec.backend.as_str() {
            "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
            "mvdr" => Ok(Arc::new(PlannedMvdr::new(Mvdr::fast()))),
            other => Err(ServeError::Engine(format!("unknown backend {other}"))),
        }
    }
}

#[test]
fn router_serves_heterogeneous_streams_bitwise_identical_to_serial() {
    // Three stream shapes: two probes × two grids × two backends.
    let probe_a = LinearArray::small_test_array();
    let probe_b = LinearArray::builder().num_elements(16).build().unwrap();
    let spec_das_a = StreamSpec {
        array: probe_a.clone(),
        grid: ImagingGrid::for_array(&probe_a, 0.012, 0.008, 16, 8),
        sound_speed: 1540.0,
        backend: "das".into(),
    };
    let spec_das_b = StreamSpec {
        array: probe_b.clone(),
        grid: ImagingGrid::for_array(&probe_b, 0.010, 0.006, 12, 6),
        sound_speed: 1500.0,
        backend: "das".into(),
    };
    let spec_mvdr = StreamSpec {
        array: probe_a.clone(),
        grid: ImagingGrid::for_array(&probe_a, 0.012, 0.008, 8, 6),
        sound_speed: 1540.0,
        backend: "mvdr".into(),
    };
    let specs = [&spec_das_a, &spec_das_b, &spec_mvdr];
    // Interleave the three streams frame by frame.
    let stream: Vec<(&StreamSpec, ChannelData)> = (0..18)
        .map(|i| {
            let spec = specs[i % specs.len()];
            (spec, synthetic_frame(&spec.array, 256 + 64 * (i % 2), 7 + i as u64))
        })
        .collect();

    // Serial reference through the *direct* (unplanned) beamformers.
    let reference: Vec<IqImage> = stream
        .iter()
        .map(|(spec, frame)| {
            let direct: Box<dyn Beamformer> = match spec.backend.as_str() {
                "das" => Box::new(DelayAndSum::default()),
                _ => Box::new(Mvdr::fast()),
            };
            direct.beamform(frame, &spec.array, &spec.grid, spec.sound_speed).unwrap()
        })
        .collect();

    let spawned = Arc::new(AtomicUsize::new(0));
    let router = Router::new(
        BatchConfig { max_batch: 5, linger: Duration::from_micros(300), ..BatchConfig::default() },
        classical_factory(Arc::clone(&spawned)),
    );
    assert_eq!(router.num_engines(), 0, "engines must not spin up before traffic");
    let handles: Vec<_> = stream.iter().map(|(spec, frame)| router.submit(spec, frame.clone()).unwrap()).collect();
    let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().unwrap()).collect();

    for (i, (serial, routed)) in reference.iter().zip(&served).enumerate() {
        assert_eq!(serial, routed, "routed frame {i} differs from serial inference");
    }

    assert_eq!(router.num_engines(), 3, "one engine per stream shape");
    assert_eq!(spawned.load(Ordering::SeqCst), 3, "factory must run once per shape");
    let stats = router.shutdown();
    assert_eq!(stats.server.completed, 18);
    assert_eq!(stats.server.deadline_expired, 0);
    assert_eq!(stats.engines.len(), 3);
    let per_engine: u64 = stats.engines.iter().map(|e| e.requests).sum();
    assert_eq!(per_engine, 18, "every request must be attributed to exactly one engine");
    for engine in &stats.engines {
        assert_eq!(engine.requests, 6, "{}", engine.spec.label());
        assert_eq!(engine.latency.count(), 6, "per-engine latency must record each frame");
        assert!(engine.batches >= 1);
        let cache = engine.plan_cache.expect("planned backends expose cache stats");
        // Each stream interleaves two frame formats: both plans stay warm in
        // the multi-slot cache, so after the two cold builds everything hits.
        assert_eq!(cache.misses, 2, "{}", engine.spec.label());
        assert_eq!(cache.evictions, 0);
        assert_eq!(cache.hits + cache.misses, 6);
    }
    let total = stats.plan_cache_total();
    assert_eq!(total.misses, 6);
    assert_eq!(total.entries, 6);
}

#[test]
fn router_spins_engines_up_lazily_per_stream() {
    let array = LinearArray::small_test_array();
    let make_spec = |rows: usize| StreamSpec {
        array: array.clone(),
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, rows, 8),
        sound_speed: 1540.0,
        backend: "das".into(),
    };
    let spawned = Arc::new(AtomicUsize::new(0));
    let router = Router::new(
        BatchConfig { linger: Duration::ZERO, ..BatchConfig::default() },
        classical_factory(Arc::clone(&spawned)),
    );
    let spec_a = make_spec(16);
    // Several frames of one stream: exactly one spin-up.
    for i in 0..3 {
        router.submit(&spec_a, synthetic_frame(&array, 128, i)).unwrap().wait().unwrap();
        assert_eq!(router.num_engines(), 1);
    }
    assert_eq!(spawned.load(Ordering::SeqCst), 1, "repeat traffic must reuse the engine");
    // First frame of a second shape spins up the second engine.
    let spec_b = make_spec(24);
    router.submit(&spec_b, synthetic_frame(&array, 128, 9)).unwrap().wait().unwrap();
    assert_eq!(router.num_engines(), 2);
    assert_eq!(spawned.load(Ordering::SeqCst), 2);
    // warm() spins up ahead of traffic and is idempotent.
    let spec_c = make_spec(32);
    let format = FrameFormat { num_samples: 128, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
    router.warm(&spec_c, &format).unwrap();
    router.warm(&spec_c, &format).unwrap();
    assert_eq!(router.num_engines(), 3);
    assert_eq!(spawned.load(Ordering::SeqCst), 3);
    let stats = router.shutdown();
    let warmed = &stats.engines[2];
    assert_eq!(warmed.requests, 0);
    assert_eq!(warmed.plan_cache.unwrap().misses, 1, "warm must build the plan ahead of traffic");
}

#[test]
fn router_surfaces_factory_errors_per_request() {
    let array = LinearArray::small_test_array();
    let good = StreamSpec {
        array: array.clone(),
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, 8, 8),
        sound_speed: 1540.0,
        backend: "das".into(),
    };
    let bad = StreamSpec { backend: "warp-drive".into(), ..good.clone() };
    let router = Router::new(
        BatchConfig { max_batch: 4, linger: Duration::from_micros(200), ..BatchConfig::default() },
        classical_factory(Arc::new(AtomicUsize::new(0))),
    );
    let ok = router.submit(&good, synthetic_frame(&array, 128, 1)).unwrap();
    let doomed = router.submit(&bad, synthetic_frame(&array, 128, 2)).unwrap();
    assert!(ok.wait().is_ok(), "the good stream must not be poisoned by the bad one");
    match doomed.wait() {
        Err(ServeError::Engine(reason)) => assert!(reason.contains("warp-drive"), "{reason}"),
        other => panic!("expected factory error, got {other:?}"),
    }
    let stats = router.shutdown();
    assert_eq!(stats.engines.len(), 1, "a failed factory must not register an engine");
}

#[test]
fn router_deadline_expires_stale_requests_and_serves_fresh_ones() {
    let array = LinearArray::small_test_array();
    let spec = StreamSpec {
        array: array.clone(),
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, 32, 16),
        sound_speed: 1540.0,
        backend: "das".into(),
    };
    let router = Router::new(
        // One worker, no linger: the first frame occupies the worker while
        // the rest queue behind it.
        BatchConfig { max_batch: 1, linger: Duration::ZERO, queue_capacity: 64, ..BatchConfig::default() },
        classical_factory(Arc::new(AtomicUsize::new(0))),
    );
    let plug = router.submit(&spec, synthetic_frame(&array, 4096, 1)).unwrap();
    // Queued behind the busy worker with an immediately-expiring deadline.
    let doomed = router.submit_with_deadline(&spec, synthetic_frame(&array, 4096, 2), Duration::ZERO).unwrap();
    let survivor = router.submit(&spec, synthetic_frame(&array, 4096, 3)).unwrap();
    assert!(plug.wait().is_ok());
    assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
    assert!(survivor.wait().is_ok());
    let stats = router.shutdown();
    assert_eq!(stats.server.deadline_expired, 1);
    assert_eq!(stats.server.completed, 3);
    let engine = &stats.engines[0];
    assert_eq!(engine.requests, 2, "the expired frame must never reach the engine");
}

#[test]
fn router_try_submit_sheds_load_with_the_frame_returned() {
    let array = LinearArray::small_test_array();
    let spec = StreamSpec {
        array: array.clone(),
        grid: ImagingGrid::for_array(&array, 0.012, 0.008, 8, 8),
        sound_speed: 1540.0,
        backend: "das".into(),
    };
    assert_eq!(spec.label(), "das/32ch/8x8");
    // A queue of one and a slow first frame: the second try_submit while the
    // queue is occupied must return the frame for failover, not drop it.
    let router = Router::new(
        BatchConfig { max_batch: 1, linger: Duration::ZERO, queue_capacity: 1, ..BatchConfig::default() },
        classical_factory(Arc::new(AtomicUsize::new(0))),
    );
    let frame = synthetic_frame(&array, 8192, 5);
    let mut accepted = vec![router.submit(&spec, frame.clone()).unwrap()];
    let mut shed = 0;
    for seed in 0..64 {
        match router.try_submit(&spec, synthetic_frame(&array, 8192, seed)) {
            Ok(handle) => accepted.push(handle),
            Err(TrySubmitError::Full(returned)) => {
                assert_eq!(returned.num_samples(), 8192, "rejection must hand the frame back");
                shed += 1;
            }
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    assert!(shed > 0, "a capacity-1 queue under a 64-frame burst must shed load");
    for handle in accepted {
        handle.wait().unwrap();
    }
    let stats = router.shutdown();
    assert_eq!(stats.server.completed + shed, 65);
}
