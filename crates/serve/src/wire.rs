//! JSON wire format for the serving stats — the cross-process stats
//! protocol of the scenario benchmark harness.
//!
//! The harness (`crates/bench`) runs the router in a separate OS process
//! (`serve_agent`) and reads its counters back over stdio as one JSON line.
//! This module defines that encoding. Two rules keep it trustworthy:
//!
//! 1. **Lossless counters.** Every counter and the full latency histogram
//!    round-trip exactly: `parse(write(stats)) == stats`. The round-trip is
//!    asserted field-by-field in `tests/wire_roundtrip.rs`, so a counter
//!    added to a stats struct but forgotten here fails the equality test
//!    rather than silently reading as zero.
//! 2. **Labels, not geometry.** [`crate::router::StreamSpec`] carries the
//!    full probe/grid description; on the wire an engine is identified by
//!    the spec's compact label plus its backend. The consumer of the stats
//!    line (the harness) already knows the scenario's geometry — reshipping
//!    it per engine would bloat every stats line for no information.
//!
//! [`RouterStatsWire`] is therefore a mirror of [`RouterStats`] with specs
//! flattened to labels; [`RouterStatsWire::from_stats`] converts a live
//! snapshot, [`RouterStatsWire::to_json`] / [`RouterStatsWire::from_json`]
//! move it across the boundary.

use crate::batcher::{LatencyHistogram, ServerStats};
use crate::degrade::DegradeStats;
use crate::router::{ResilienceStats, RouterStats};
use beamforming::pipeline::QuantQualityStats;
use beamforming::plan::PlanCacheStats;
use runtime::json::Json;

/// Error string produced when a wire document is missing or mistypes a
/// field.
fn missing(field: &str) -> String {
    format!("stats wire: missing or mistyped field `{field}`")
}

fn get_u64(value: &Json, field: &str) -> Result<u64, String> {
    value.get(field).and_then(Json::as_u64).ok_or_else(|| missing(field))
}

fn get_f64(value: &Json, field: &str) -> Result<f64, String> {
    value.get(field).and_then(Json::as_f64).ok_or_else(|| missing(field))
}

fn get_str(value: &Json, field: &str) -> Result<String, String> {
    value.get(field).and_then(Json::as_str).map(str::to_owned).ok_or_else(|| missing(field))
}

/// Encodes a latency histogram as `{ "buckets": [...], "total_micros": n }`.
///
/// The bucket array always has [`LatencyHistogram::NUM_BUCKETS`] entries so
/// the decoder never guesses the resolution; the count is derived from the
/// buckets on decode (see [`LatencyHistogram::from_parts`]).
pub fn latency_to_json(latency: &LatencyHistogram) -> Json {
    Json::obj([
        ("buckets", Json::arr(latency.bucket_counts().iter().map(|&n| Json::num(n as f64)))),
        ("total_micros", Json::num(latency.total_micros() as f64)),
    ])
}

/// Decodes a histogram written by [`latency_to_json`].
pub fn latency_from_json(value: &Json) -> Result<LatencyHistogram, String> {
    let items = value.get("buckets").and_then(Json::as_arr).ok_or_else(|| missing("buckets"))?;
    if items.len() != LatencyHistogram::NUM_BUCKETS {
        return Err(format!(
            "stats wire: histogram has {} buckets, expected {}",
            items.len(),
            LatencyHistogram::NUM_BUCKETS
        ));
    }
    let mut buckets = [0u64; LatencyHistogram::NUM_BUCKETS];
    for (slot, item) in buckets.iter_mut().zip(items) {
        *slot = item.as_u64().ok_or_else(|| missing("buckets[i]"))?;
    }
    Ok(LatencyHistogram::from_parts(buckets, get_u64(value, "total_micros")?))
}

/// Encodes the shared queue/scheduler counters.
pub fn server_stats_to_json(stats: &ServerStats) -> Json {
    Json::obj([
        ("submitted", Json::num(stats.submitted as f64)),
        ("completed", Json::num(stats.completed as f64)),
        ("batches", Json::num(stats.batches as f64)),
        ("max_batch_observed", Json::num(stats.max_batch_observed as f64)),
        ("deadline_expired", Json::num(stats.deadline_expired as f64)),
        ("workers_respawned", Json::num(stats.workers_respawned as f64)),
        ("latency", latency_to_json(&stats.latency)),
    ])
}

/// Decodes [`server_stats_to_json`] output.
pub fn server_stats_from_json(value: &Json) -> Result<ServerStats, String> {
    Ok(ServerStats {
        submitted: get_u64(value, "submitted")?,
        completed: get_u64(value, "completed")?,
        batches: get_u64(value, "batches")?,
        max_batch_observed: value
            .get("max_batch_observed")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("max_batch_observed"))?,
        deadline_expired: get_u64(value, "deadline_expired")?,
        workers_respawned: get_u64(value, "workers_respawned")?,
        latency: latency_from_json(value.get("latency").ok_or_else(|| missing("latency"))?)?,
    })
}

/// Encodes the router-wide fault counters.
pub fn resilience_to_json(stats: &ResilienceStats) -> Json {
    Json::obj([
        ("panics", Json::num(stats.panics as f64)),
        ("retries", Json::num(stats.retries as f64)),
        ("quarantined", Json::num(stats.quarantined as f64)),
        ("quarantines", Json::num(stats.quarantines as f64)),
        ("engines_evicted", Json::num(stats.engines_evicted as f64)),
        ("workers_respawned", Json::num(stats.workers_respawned as f64)),
    ])
}

/// Decodes [`resilience_to_json`] output.
pub fn resilience_from_json(value: &Json) -> Result<ResilienceStats, String> {
    Ok(ResilienceStats {
        panics: get_u64(value, "panics")?,
        retries: get_u64(value, "retries")?,
        quarantined: get_u64(value, "quarantined")?,
        quarantines: get_u64(value, "quarantines")?,
        engines_evicted: get_u64(value, "engines_evicted")?,
        workers_respawned: get_u64(value, "workers_respawned")?,
    })
}

/// Encodes one managed stream's degradation snapshot.
pub fn degrade_to_json(stats: &DegradeStats) -> Json {
    Json::obj([
        ("stream", Json::str(stats.stream.clone())),
        ("ladder", Json::arr(stats.ladder.iter().map(|l| Json::str(l.clone())))),
        ("rung", Json::num(stats.rung as f64)),
        ("backend", Json::str(stats.backend.clone())),
        ("downshifts", Json::num(stats.downshifts as f64)),
        ("upshifts", Json::num(stats.upshifts as f64)),
        ("sheds", Json::num(stats.sheds as f64)),
        ("windows", Json::num(stats.windows as f64)),
    ])
}

/// Decodes [`degrade_to_json`] output.
pub fn degrade_from_json(value: &Json) -> Result<DegradeStats, String> {
    let ladder = value
        .get("ladder")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("ladder"))?
        .iter()
        .map(|l| l.as_str().map(str::to_owned).ok_or_else(|| missing("ladder[i]")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DegradeStats {
        stream: get_str(value, "stream")?,
        ladder,
        rung: value.get("rung").and_then(Json::as_usize).ok_or_else(|| missing("rung"))?,
        backend: get_str(value, "backend")?,
        downshifts: get_u64(value, "downshifts")?,
        upshifts: get_u64(value, "upshifts")?,
        sheds: get_u64(value, "sheds")?,
        windows: get_u64(value, "windows")?,
    })
}

fn plan_cache_to_json(stats: &PlanCacheStats) -> Json {
    Json::obj([
        ("hits", Json::num(stats.hits as f64)),
        ("misses", Json::num(stats.misses as f64)),
        ("evictions", Json::num(stats.evictions as f64)),
        ("entries", Json::num(stats.entries as f64)),
        ("capacity", Json::num(stats.capacity as f64)),
    ])
}

fn plan_cache_from_json(value: &Json) -> Result<PlanCacheStats, String> {
    Ok(PlanCacheStats {
        hits: get_u64(value, "hits")?,
        misses: get_u64(value, "misses")?,
        evictions: get_u64(value, "evictions")?,
        entries: value.get("entries").and_then(Json::as_usize).ok_or_else(|| missing("entries"))?,
        capacity: value.get("capacity").and_then(Json::as_usize).ok_or_else(|| missing("capacity"))?,
    })
}

fn quant_quality_to_json(stats: &QuantQualityStats) -> Json {
    Json::obj([
        ("frames", Json::num(stats.frames as f64)),
        ("signal_energy", Json::num(stats.signal_energy)),
        ("noise_energy", Json::num(stats.noise_energy)),
    ])
}

fn quant_quality_from_json(value: &Json) -> Result<QuantQualityStats, String> {
    Ok(QuantQualityStats {
        frames: get_u64(value, "frames")?,
        signal_energy: get_f64(value, "signal_energy")?,
        noise_energy: get_f64(value, "noise_energy")?,
    })
}

/// One engine's counters with its [`crate::router::StreamSpec`] flattened
/// to `(stream label, backend label)` — the per-engine element of
/// [`RouterStatsWire`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStatsWire {
    /// Compact stream identifier (see `StreamSpec::label`), e.g.
    /// `"das/32ch/16x8"`.
    pub stream: String,
    /// Backend label of the spec.
    pub backend: String,
    /// Frames the engine beamformed.
    pub requests: u64,
    /// Sub-batches the engine executed.
    pub batches: u64,
    /// Dispatch panics contained at the engine boundary.
    pub panics: u64,
    /// Submit → beamformed latency distribution of the engine's frames.
    pub latency: LatencyHistogram,
    /// Plan-cache counters, when the backend exposes them.
    pub plan_cache: Option<PlanCacheStats>,
    /// Quantization accuracy-proxy counters, when the backend is lossy.
    pub quant_quality: Option<QuantQualityStats>,
}

impl EngineStatsWire {
    /// Encodes the engine entry.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("stream".to_string(), Json::str(self.stream.clone())),
            ("backend".to_string(), Json::str(self.backend.clone())),
            ("requests".to_string(), Json::num(self.requests as f64)),
            ("batches".to_string(), Json::num(self.batches as f64)),
            ("panics".to_string(), Json::num(self.panics as f64)),
            ("latency".to_string(), latency_to_json(&self.latency)),
        ];
        if let Some(cache) = &self.plan_cache {
            pairs.push(("plan_cache".to_string(), plan_cache_to_json(cache)));
        }
        if let Some(quality) = &self.quant_quality {
            pairs.push(("quant_quality".to_string(), quant_quality_to_json(quality)));
        }
        Json::Obj(pairs)
    }

    /// Decodes [`EngineStatsWire::to_json`] output.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        Ok(Self {
            stream: get_str(value, "stream")?,
            backend: get_str(value, "backend")?,
            requests: get_u64(value, "requests")?,
            batches: get_u64(value, "batches")?,
            panics: get_u64(value, "panics")?,
            latency: latency_from_json(value.get("latency").ok_or_else(|| missing("latency"))?)?,
            plan_cache: value.get("plan_cache").map(plan_cache_from_json).transpose()?,
            quant_quality: value.get("quant_quality").map(quant_quality_from_json).transpose()?,
        })
    }
}

/// Process-boundary mirror of [`RouterStats`]: every counter, histogram and
/// per-engine/per-stream breakdown, with stream specs flattened to labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterStatsWire {
    /// Shared queue/scheduler counters.
    pub server: ServerStats,
    /// Per-engine counters, in spin-up order.
    pub engines: Vec<EngineStatsWire>,
    /// Per-managed-stream degradation snapshots.
    pub degrade: Vec<DegradeStats>,
    /// Router-wide fault counters.
    pub resilience: ResilienceStats,
}

impl RouterStatsWire {
    /// Flattens a live [`RouterStats`] snapshot for the wire.
    pub fn from_stats(stats: &RouterStats) -> Self {
        Self {
            server: stats.server,
            engines: stats
                .engines
                .iter()
                .map(|engine| EngineStatsWire {
                    stream: engine.spec.label(),
                    backend: engine.spec.backend.clone(),
                    requests: engine.requests,
                    batches: engine.batches,
                    panics: engine.panics,
                    latency: engine.latency,
                    plan_cache: engine.plan_cache,
                    quant_quality: engine.quant_quality,
                })
                .collect(),
            degrade: stats.degrade.clone(),
            resilience: stats.resilience,
        }
    }

    /// Encodes the full snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("server", server_stats_to_json(&self.server)),
            ("engines", Json::arr(self.engines.iter().map(EngineStatsWire::to_json))),
            ("degrade", Json::arr(self.degrade.iter().map(degrade_to_json))),
            ("resilience", resilience_to_json(&self.resilience)),
        ])
    }

    /// Decodes [`RouterStatsWire::to_json`] output.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        Ok(Self {
            server: server_stats_from_json(value.get("server").ok_or_else(|| missing("server"))?)?,
            engines: value
                .get("engines")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("engines"))?
                .iter()
                .map(EngineStatsWire::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            degrade: value
                .get("degrade")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("degrade"))?
                .iter()
                .map(degrade_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            resilience: resilience_from_json(
                value.get("resilience").ok_or_else(|| missing("resilience"))?,
            )?,
        })
    }

    /// Encodes as one line of compact JSON (the agent stdio framing).
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parses one line written by [`RouterStatsWire::to_json_line`].
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let value = Json::parse(line.trim()).map_err(|e| e.to_string())?;
        Self::from_json(&value)
    }
}
