//! Streaming micro-batching inference front-end for the Tiny-VBF beamformers.
//!
//! Tiny-VBF's pitch (Rahoof et al., DATE 2024) is *real-time* single-angle
//! plane-wave imaging: frames arrive continuously from the scanner and must be
//! reconstructed at acquisition rate. The deep-learning beamforming literature
//! frames models like Tiny-VBF as components of a streaming
//! acquisition→reconstruction pipeline, and PR 1 built the per-frame batch
//! primitives (`Beamformer::beamform_batch`, `TinyVbf::forward_batch`). This
//! crate turns those per-call primitives into a throughput-oriented service:
//!
//! * [`Server`] — the generic micro-batching server: a **bounded submission
//!   queue** (backpressure), a scheduler that **coalesces** pending requests
//!   into batches (configurable max batch size and linger), a worker pool, and
//!   per-request [`ResponseHandle`]s that resolve when the batch completes,
//! * [`BatchConfig`] — queue capacity, `max_batch`, linger and worker/thread
//!   budget knobs,
//! * [`BatchEngine`] — the pluggable batch computation (implement it, or wrap
//!   a closure with [`Server::from_fn`]),
//! * [`service`] — ready-made engines for the beamformers:
//!   [`service::BeamformEngine`] submits [`ultrasound::ChannelData`] frames and
//!   yields [`beamforming::iq::IqImage`]s through any
//!   [`beamforming::pipeline::Beamformer`] (DAS, MVDR, Tiny-VBF, …), batching
//!   frames through `beamform_batch_with_threads` so frames run concurrently
//!   while each stays internally row-parallel under one bounded thread budget,
//! * [`router`] — the multi-engine layer on top: a [`router::Router`]
//!   dispatches *heterogeneous* streams (distinct probes, grids, sound
//!   speeds, frame formats and backends) from one shared queue to lazily
//!   spun-up engines, dividing one thread budget across each batch's
//!   sub-streams and reporting per-engine latency and plan-cache counters.
//!
//! Latency policy: requests may carry **deadlines**
//! ([`Server::submit_with_deadline`], [`BatchConfig::deadline`]) — the
//! scheduler cuts a lingering batch early when the oldest request's slack
//! runs out, and a request stuck past its deadline resolves with
//! [`ServeError::DeadlineExceeded`] instead of blocking younger traffic.
//!
//! Everything is synchronous-core `std`: no async runtime, plain
//! `Mutex`/`Condvar` scheduling, deterministic results — an image produced
//! through the server is **bitwise identical** to one produced by a serial
//! per-frame call, for every batch size, linger, worker count and
//! `TINY_VBF_THREADS` setting (asserted by `examples/serve_demo.rs` and this
//! crate's tests).
//!
//! # Example
//!
//! ```
//! use serve::{BatchConfig, Server};
//!
//! // A toy engine: double every request. Real deployments use
//! // `serve::service::BeamformEngine` instead of a closure.
//! let server = Server::from_fn(BatchConfig::default(), |batch: Vec<i64>| {
//!     batch.into_iter().map(|v| Ok(v * 2)).collect()
//! });
//! let handles: Vec<_> = (0..8).map(|v| server.submit(v).unwrap()).collect();
//! let results: Vec<i64> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
//! assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod chaos;
pub mod degrade;
pub mod router;
pub mod service;
pub mod wire;

pub use batcher::{BatchConfig, BatchEngine, LatencyHistogram, ResponseHandle, Server, ServerStats, TrySubmitError};
pub use chaos::{ChaosBeamformer, ChaosFactory, ChaosFactoryProbe, ChaosFault, ChaosSchedule, ChaosStats};
pub use degrade::{DegradeConfig, DegradeStats, RungMeasurement};
pub use router::{EngineFactory, EngineStats, FaultPolicy, ResilienceStats, Router, RouterStats, StreamSpec};
pub use wire::{EngineStatsWire, RouterStatsWire};

use std::error::Error;
use std::fmt;
use std::sync::{LockResult, PoisonError};

/// Recovers the guard from a possibly-poisoned lock.
///
/// A poisoned serve-crate lock means some thread panicked while holding it;
/// every guarded mutation in this crate is a single-step counter bump, queue
/// push/pop or slot write, so the protected state is never left half-updated
/// and recovery is sound. Cascading the poison panic instead would kill every
/// other worker and submitter touching the lock — exactly the amplification
/// the worker supervisor exists to prevent (the original death is still
/// observed and counted there; see `ServerStats::workers_respawned`).
pub(crate) fn recover<T>(result: LockResult<T>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Errors produced by the serving front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The [`BatchConfig`] is invalid (a zero `max_batch`, queue capacity or
    /// worker count).
    InvalidConfig(String),
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The bounded submission queue is full (backpressure signal).
    QueueFull,
    /// The batch engine failed for this request.
    Engine(String),
    /// The batch engine returned a result vector of the wrong length.
    BatchSizeMismatch {
        /// Number of requests in the batch.
        expected: usize,
        /// Number of results the engine returned.
        actual: usize,
    },
    /// The batch engine panicked while processing this request's batch (the
    /// worker survives; only the batch in flight resolves with this error).
    /// Also produced by the worker supervisor when a worker thread itself
    /// dies mid-batch: the supervisor resolves the orphaned requests with
    /// this error and respawns the worker (see
    /// `ServerStats::workers_respawned`).
    WorkerDied,
    /// One routed engine panicked while beamforming its sub-batch. The panic
    /// is contained at the engine boundary: only the panicking engine's
    /// requests resolve with this error, every other stream in the same
    /// dispatched batch completes normally (see `serve::router`).
    EnginePanicked {
        /// Backend label of the engine that panicked.
        backend: String,
    },
    /// The stream's engine is quarantined by the circuit breaker: its factory
    /// (or dispatch) failed too many consecutive times, so requests fail fast
    /// until the quarantine window elapses instead of hammering a broken
    /// backend (see [`router::FaultPolicy`]).
    Quarantined {
        /// Backend label of the quarantined engine.
        backend: String,
    },
    /// The request's deadline passed while it was still queued, so it was
    /// dropped from its batch and resolved with this timeout instead of
    /// blocking younger requests (see
    /// [`Server::submit_with_deadline`](batcher::Server::submit_with_deadline)).
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(reason) => write!(f, "invalid batch configuration: {reason}"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::QueueFull => write!(f, "submission queue is full"),
            Self::Engine(reason) => write!(f, "batch engine error: {reason}"),
            Self::BatchSizeMismatch { expected, actual } => {
                write!(f, "batch engine returned {actual} results for {expected} requests")
            }
            Self::WorkerDied => write!(f, "worker died before fulfilling the request"),
            Self::EnginePanicked { backend } => {
                write!(f, "engine `{backend}` panicked while processing the request's sub-batch")
            }
            Self::Quarantined { backend } => {
                write!(f, "engine `{backend}` is quarantined after repeated failures")
            }
            Self::DeadlineExceeded => write!(f, "request deadline expired before dispatch"),
        }
    }
}

impl Error for ServeError {}

/// Convenience alias for results with [`ServeError`].
pub type ServeResult<T> = Result<T, ServeError>;
