//! Multi-engine serving router: one submission queue, one thread budget,
//! many heterogeneous beamforming streams — failing *soft*, not hard.
//!
//! A [`crate::service::BeamformEngine`] pins one probe, grid, sound speed and
//! beamformer per server. Production front-ends see *heterogeneous* traffic —
//! different probes, imaging grids, frame formats and backends (DAS, MVDR,
//! Tiny-VBF) interleaved on one wire. The [`Router`] serves them all from a
//! single micro-batching [`Server`]:
//!
//! * every request names its [`StreamSpec`] (probe + grid + sound speed +
//!   backend); requests of *all* streams share one bounded submission queue,
//!   so backpressure and deadlines apply globally,
//! * a drained batch is partitioned by spec and dispatched to the matching
//!   engines **concurrently**, the total thread budget divided across the
//!   sub-batches proportionally to their sizes
//!   ([`runtime::fair_shares`] + [`runtime::par_collect_shares`]),
//! * engines spin up **lazily**: the first request of an unseen spec invokes
//!   the [`EngineFactory`] and the built beamformer joins the
//!   [`EngineRegistry`]; [`Router::warm`] spins one up (and builds its
//!   beamforming plan) ahead of traffic,
//! * underneath, the planned beamformers' multi-slot LRU
//!   [`beamforming::plan::PlanCache`] keeps every stream shape's delay table
//!   warm, and lossy quantized backends report per-engine SQNR counters
//!   ([`EngineStats::quant_quality`]) next to the latency percentiles.
//!
//! PR 6 adds the **fault boundary** and the **degradation loop**:
//!
//! * each engine's sub-batch dispatch runs under `catch_unwind` — a panicking
//!   engine resolves *only its own* requests with
//!   [`ServeError::EnginePanicked`]; every other stream in the same batch
//!   completes normally, and repeated panics quarantine the engine,
//! * the registry is a circuit breaker per spec: transient factory failures
//!   are retried with bounded exponential backoff, persistent ones trip the
//!   breaker and requests fail fast with [`ServeError::Quarantined`] until
//!   the quarantine window elapses ([`FaultPolicy`]); concurrent first
//!   requests of one spec build one engine (a `Building` marker plus a
//!   condvar — the factory runs *outside* the registry lock so a slow or
//!   sleeping build never stalls other streams),
//! * engines idle past [`FaultPolicy::engine_ttl`] are evicted so probe/grid
//!   churn times six quantized schemes doesn't grow the registry unboundedly,
//! * an optional [`DegradeConfig`] attaches the load-shedding ladder of
//!   [`crate::degrade`]: streams under deadline pressure downshift to
//!   cheaper backends instead of shedding requests, and upshift back with
//!   hysteresis + cooldown ([`RouterStats::degrade`] shows each stream's
//!   rung, [`ResilienceStats`] the global shed/shift/panic/retry counters).
//!
//! Routing is pure scheduling: each frame's image depends only on its own
//! payload and its stream's configuration, so a routed image is **bitwise
//! identical** to a serial `beamform` call with the same spec, for every mix
//! of streams, batch size, linger, deadline and thread budget — and the
//! degradation ladder preserves this for every request it does *not*
//! downshift (`examples/route_demo.rs`, `serve/tests/router.rs` and
//! `serve/tests/chaos.rs` assert this).

use crate::batcher::{BatchConfig, BatchEngine, LatencyHistogram, ResponseHandle, Server, ServerStats, TrySubmitError};
use crate::degrade::{DegradeConfig, DegradeController, DegradeStats};
use crate::{recover, ServeError, ServeResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, QuantQualityStats};
use beamforming::plan::{FrameFormat, PlanCacheStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

/// Everything that identifies one stream shape to the router: which engine
/// must serve a frame and with what acquisition geometry.
///
/// Two requests belong to the same stream iff their specs compare equal
/// (probe geometry, imaging grid, sound speed and backend label). The frame
/// format — the remaining axis of the full stream key — is carried by each
/// [`ChannelData`] itself and resolved *inside* the engine by the multi-slot
/// plan cache, so one engine serves a stream whose sample count changes
/// mid-flight without respawning.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Probe geometry of the stream's acquisitions.
    pub array: LinearArray,
    /// Imaging grid the stream's frames are reconstructed on.
    pub grid: ImagingGrid,
    /// Assumed speed of sound in m/s.
    pub sound_speed: f32,
    /// Which beamformer backend serves the stream (a label the
    /// [`EngineFactory`] understands, e.g. `"das"`, `"mvdr"`, `"tiny-vbf"`,
    /// or a per-quantization-scheme label like `"tiny-vbf-fx16"` — see
    /// `quantize::QuantScheme::backend_label`).
    pub backend: String,
}

impl StreamSpec {
    /// Compact human-readable identifier used in stats and reports, e.g.
    /// `"das/128ch/368x128"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}ch/{}x{}",
            self.backend,
            self.array.num_elements(),
            self.grid.num_rows(),
            self.grid.num_cols()
        )
    }
}

/// Builds the beamformer for a [`StreamSpec`] the first time the router sees
/// it (lazy engine spin-up).
///
/// Implemented for closures, so a match over the backend label is enough:
///
/// ```
/// use beamforming::pipeline::{DelayAndSum, PlannedDas};
/// use serve::router::StreamSpec;
/// use serve::{ServeError, ServeResult};
/// use std::sync::Arc;
///
/// let factory = |spec: &StreamSpec| -> ServeResult<Arc<dyn beamforming::pipeline::Beamformer + Send + Sync>> {
///     match spec.backend.as_str() {
///         "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
///         other => Err(ServeError::Engine(format!("unknown backend {other}"))),
///     }
/// };
/// # let _ = factory;
/// ```
pub trait EngineFactory: Send + Sync + 'static {
    /// Builds the beamformer serving `spec`'s stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] (typically [`ServeError::Engine`]) when the
    /// spec names an unknown backend or an unsupported configuration. The
    /// registry retries transient failures with bounded backoff
    /// ([`FaultPolicy::factory_retries`]) before failing the queued requests,
    /// and quarantines the spec after repeated failures.
    fn build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>>;
}

impl<F> EngineFactory for F
where
    F: Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static,
{
    fn build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        self(spec)
    }
}

/// Fault-handling knobs of the [`EngineRegistry`] and the dispatch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPolicy {
    /// How many times a failed factory build is retried (with backoff)
    /// before the failure is reported to the waiting requests. `0` disables
    /// retries.
    pub factory_retries: u32,
    /// Backoff before the first retry; doubles per retry, capped at 50 ms.
    /// The sleep happens *outside* the registry lock, so other streams keep
    /// serving while one backend's factory backs off.
    pub retry_backoff: Duration,
    /// Consecutive failed build rounds (each already including its retries)
    /// after which the spec's circuit breaker opens.
    pub quarantine_after: u32,
    /// How long an open breaker rejects the spec's requests with
    /// [`ServeError::Quarantined`] before the next request may try a rebuild.
    pub quarantine_for: Duration,
    /// Consecutive *dispatch panics* of a live engine after which the engine
    /// is torn down and its spec quarantined (a successful dispatch resets
    /// the count).
    pub panic_quarantine_after: u32,
    /// Idle TTL: engines unused this long are evicted from the registry
    /// (their next request rebuilds them). `None` — the default — keeps
    /// engines forever.
    pub engine_ttl: Option<Duration>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            factory_retries: 2,
            retry_backoff: Duration::from_micros(500),
            quarantine_after: 3,
            quarantine_for: Duration::from_millis(250),
            panic_quarantine_after: 3,
            engine_ttl: None,
        }
    }
}

/// Retry backoff growth cap (see [`FaultPolicy::retry_backoff`]).
const MAX_RETRY_BACKOFF: Duration = Duration::from_millis(50);

/// One spun-up engine: the beamformer plus its serving counters.
struct EngineEntry {
    spec: StreamSpec,
    beamformer: Arc<dyn Beamformer + Send + Sync>,
    requests: AtomicU64,
    batches: AtomicU64,
    panics: AtomicU64,
    consecutive_panics: AtomicU32,
    latency: Mutex<LatencyHistogram>,
}

impl EngineEntry {
    fn new(spec: StreamSpec, beamformer: Arc<dyn Beamformer + Send + Sync>) -> Self {
        Self {
            spec,
            beamformer,
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            consecutive_panics: AtomicU32::new(0),
            latency: Mutex::new(LatencyHistogram::default()),
        }
    }

    fn snapshot(&self) -> EngineStats {
        EngineStats {
            spec: self.spec.clone(),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            latency: *recover(self.latency.lock()),
            plan_cache: self.beamformer.plan_cache_stats(),
            quant_quality: self.beamformer.quant_quality_stats(),
        }
    }
}

/// Lifecycle of one spec's registry slot — the circuit-breaker state machine.
enum EngineState {
    /// The engine is live and serving.
    Ready(Arc<EngineEntry>),
    /// Some thread is running the factory for this spec (outside the
    /// registry lock); others wait on the registry condvar.
    Building,
    /// The last build round failed (`consecutive` rounds in a row), or a
    /// live engine was torn down for repeated dispatch panics. While
    /// `quarantined_until` lies in the future, requests fail fast with
    /// [`ServeError::Quarantined`]; afterwards the next request retries the
    /// build.
    Broken {
        consecutive: u32,
        quarantined_until: Option<Instant>,
    },
}

struct EngineSlot {
    spec: StreamSpec,
    state: EngineState,
    last_used: Instant,
}

/// The set of engines a router has spun up, with per-spec circuit breaking.
///
/// Lookup is a linear scan over [`StreamSpec`] equality — routers serve a
/// handful of stream shapes, not thousands, and the scan avoids imposing
/// `Eq`/`Hash` on floating-point probe geometry.
pub struct EngineRegistry {
    slots: Mutex<Vec<EngineSlot>>,
    built: Condvar,
    factory: Box<dyn EngineFactory>,
    policy: FaultPolicy,
    retries: AtomicU64,
    quarantined_rejections: AtomicU64,
    quarantines: AtomicU64,
    panics: AtomicU64,
    evictions: AtomicU64,
}

impl EngineRegistry {
    fn new(factory: impl EngineFactory, policy: FaultPolicy) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            built: Condvar::new(),
            factory: Box::new(factory),
            policy,
            retries: AtomicU64::new(0),
            quarantined_rejections: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the engine serving `spec`, spinning it up through the factory
    /// on first sight (or after an eviction/quarantine). The factory runs
    /// *outside* the registry lock behind a `Building` marker, so concurrent
    /// first-requests of one spec build one engine while other specs keep
    /// resolving.
    fn get_or_spawn(&self, spec: &StreamSpec) -> ServeResult<Arc<EngineEntry>> {
        let mut slots = recover(self.slots.lock());
        self.sweep_idle(&mut slots);
        loop {
            // Re-scan each iteration: a condvar wake or an eviction may have
            // reshuffled the slot vector.
            match slots.iter().position(|s| s.spec == *spec) {
                Some(i) => match &slots[i].state {
                    EngineState::Ready(entry) => {
                        let entry = Arc::clone(entry);
                        slots[i].last_used = Instant::now();
                        return Ok(entry);
                    }
                    EngineState::Building => {
                        slots = recover(self.built.wait(slots));
                    }
                    EngineState::Broken { consecutive, quarantined_until } => {
                        if let Some(until) = quarantined_until {
                            if Instant::now() < *until {
                                self.quarantined_rejections.fetch_add(1, Ordering::Relaxed);
                                return Err(ServeError::Quarantined { backend: spec.backend.clone() });
                            }
                        }
                        let prior = *consecutive;
                        slots[i].state = EngineState::Building;
                        drop(slots);
                        return self.build_slot(spec, prior);
                    }
                },
                None => {
                    slots.push(EngineSlot {
                        spec: spec.clone(),
                        state: EngineState::Building,
                        last_used: Instant::now(),
                    });
                    drop(slots);
                    return self.build_slot(spec, 0);
                }
            }
        }
    }

    /// Runs the factory (with retries) for a spec already marked `Building`,
    /// then publishes the outcome and wakes the waiters.
    fn build_slot(&self, spec: &StreamSpec, prior_failures: u32) -> ServeResult<Arc<EngineEntry>> {
        let built = self.try_build(spec);
        let mut slots = recover(self.slots.lock());
        let i = slots
            .iter()
            .position(|s| s.spec == *spec)
            .expect("a Building registry slot is never removed");
        let result = match built {
            Ok(beamformer) => {
                let entry = Arc::new(EngineEntry::new(spec.clone(), beamformer));
                slots[i].state = EngineState::Ready(Arc::clone(&entry));
                slots[i].last_used = Instant::now();
                Ok(entry)
            }
            Err(e) => {
                let consecutive = prior_failures + 1;
                let quarantined_until = (consecutive >= self.policy.quarantine_after).then(|| {
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                    Instant::now() + self.policy.quarantine_for
                });
                slots[i].state = EngineState::Broken { consecutive, quarantined_until };
                Err(e)
            }
        };
        drop(slots);
        self.built.notify_all();
        result
    }

    /// One build round: the factory call plus up to
    /// [`FaultPolicy::factory_retries`] backed-off retries. A panicking
    /// factory counts as a failed attempt (and is retried like one).
    fn try_build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        let mut backoff = self.policy.retry_backoff;
        let mut attempt = 0;
        loop {
            let outcome = match catch_unwind(AssertUnwindSafe(|| self.factory.build(spec))) {
                Ok(result) => result,
                Err(_) => Err(ServeError::Engine(format!("engine factory panicked building `{}`", spec.backend))),
            };
            match outcome {
                Ok(beamformer) => return Ok(beamformer),
                Err(e) => {
                    if attempt >= self.policy.factory_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff = (backoff * 2).min(MAX_RETRY_BACKOFF);
                }
            }
        }
    }

    /// Records a contained dispatch panic of a live engine; tears the engine
    /// down and quarantines its spec once
    /// [`FaultPolicy::panic_quarantine_after`] panics happen consecutively.
    fn record_dispatch_panic(&self, entry: &Arc<EngineEntry>) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        entry.panics.fetch_add(1, Ordering::Relaxed);
        let consecutive = entry.consecutive_panics.fetch_add(1, Ordering::Relaxed) + 1;
        if consecutive < self.policy.panic_quarantine_after {
            return;
        }
        let mut slots = recover(self.slots.lock());
        if let Some(slot) = slots.iter_mut().find(|s| s.spec == entry.spec) {
            // Only tear down the engine that actually panicked — a rebuilt
            // successor under the same spec must not pay for its
            // predecessor's record.
            if matches!(&slot.state, EngineState::Ready(e) if Arc::ptr_eq(e, entry)) {
                self.quarantines.fetch_add(1, Ordering::Relaxed);
                slot.state = EngineState::Broken {
                    consecutive: 0,
                    quarantined_until: Some(Instant::now() + self.policy.quarantine_for),
                };
            }
        }
    }

    /// Evicts `Ready` engines idle past the TTL. Called with the registry
    /// lock held; `Building`/`Broken` slots are never swept (a build in
    /// flight must find its slot again).
    fn sweep_idle(&self, slots: &mut Vec<EngineSlot>) {
        let Some(ttl) = self.policy.engine_ttl else {
            return;
        };
        let now = Instant::now();
        let before = slots.len();
        slots.retain(|s| {
            !(matches!(s.state, EngineState::Ready(_)) && now.saturating_duration_since(s.last_used) > ttl)
        });
        let evicted = (before - slots.len()) as u64;
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Cumulative quality counters of `spec`'s live engine, if it is `Ready`
    /// and its beamformer reports any (the degradation ladder's quality
    /// probe).
    fn quality_of(&self, spec: &StreamSpec) -> Option<QuantQualityStats> {
        let slots = recover(self.slots.lock());
        slots.iter().find(|s| s.spec == *spec).and_then(|s| match &s.state {
            EngineState::Ready(entry) => entry.beamformer.quant_quality_stats(),
            _ => None,
        })
    }

    /// Number of live (`Ready`) engines.
    fn len(&self) -> usize {
        recover(self.slots.lock()).iter().filter(|s| matches!(s.state, EngineState::Ready(_))).count()
    }

    fn snapshots(&self) -> Vec<EngineStats> {
        recover(self.slots.lock())
            .iter()
            .filter_map(|s| match &s.state {
                EngineState::Ready(entry) => Some(entry.snapshot()),
                _ => None,
            })
            .collect()
    }

    fn resilience(&self) -> ResilienceStats {
        ResilienceStats {
            panics: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined_rejections.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            engines_evicted: self.evictions.load(Ordering::Relaxed),
            workers_respawned: 0,
        }
    }
}

/// One queued routed frame (the router's [`BatchEngine::Request`]).
pub struct RoutedRequest {
    spec: StreamSpec,
    frame: ChannelData,
    submitted_at: Instant,
}

/// The [`BatchEngine`] behind a [`Router`]: partitions each drained batch by
/// [`StreamSpec`] and dispatches the sub-batches to their engines
/// concurrently under one shared thread budget, each behind its own panic
/// boundary.
pub struct RouterEngine {
    registry: Arc<EngineRegistry>,
    degrade: Option<Arc<DegradeController>>,
    /// Total thread budget per dispatched batch, divided across the
    /// sub-batches with [`runtime::fair_shares`].
    threads: usize,
}

impl BatchEngine for RouterEngine {
    type Request = RoutedRequest;
    type Response = IqImage;

    fn process_batch(&self, batch: Vec<RoutedRequest>) -> Vec<ServeResult<IqImage>> {
        let n = batch.len();
        // Resolve each request's *effective* spec: the degradation ladder may
        // currently serve the stream on a cheaper backend. Untouched requests
        // keep their original spec (and hence bitwise-identical output).
        let effective: Vec<StreamSpec> = batch
            .iter()
            .map(|r| {
                self.degrade
                    .as_ref()
                    .and_then(|d| d.route(&r.spec))
                    .unwrap_or_else(|| r.spec.clone())
            })
            .collect();
        // Partition by effective spec, preserving submission order per group.
        let mut groups: Vec<(StreamSpec, Vec<usize>)> = Vec::new();
        for (i, spec) in effective.iter().enumerate() {
            match groups.iter_mut().find(|(s, _)| s == spec) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((spec.clone(), vec![i])),
            }
        }
        // Move the frames out of the batch, grouped (no clones); keep each
        // request's *base* spec for the ladder's completion accounting.
        let mut frames: Vec<Option<ChannelData>> = batch.iter().map(|_| None).collect();
        let mut submitted_at = Vec::with_capacity(n);
        let mut bases = Vec::with_capacity(n);
        for (i, request) in batch.into_iter().enumerate() {
            frames[i] = Some(request.frame);
            submitted_at.push(request.submitted_at);
            bases.push(request.spec);
        }
        let group_frames: Vec<Vec<ChannelData>> = groups
            .iter()
            .map(|(_, indices)| {
                indices.iter().map(|&i| frames[i].take().expect("frame moved twice")).collect()
            })
            .collect();
        // Resolve engines up front (lazy spin-up, retry and circuit breaking
        // happen here); a factory failure or quarantine fails only its group.
        let engines: Vec<ServeResult<Arc<EngineEntry>>> =
            groups.iter().map(|(spec, _)| self.registry.get_or_spawn(spec)).collect();

        // Dispatch the sub-batches concurrently, sharing the router's thread
        // budget proportionally to sub-batch size. Each dispatch runs under
        // `catch_unwind`: a panicking engine fails its own group with
        // `EnginePanicked` and every other stream completes normally.
        let sizes: Vec<usize> = group_frames.iter().map(Vec::len).collect();
        let shares = runtime::fair_shares(self.threads, &sizes);
        let group_results: Vec<Vec<ServeResult<IqImage>>> = runtime::par_collect_shares(&shares, |g| {
            let entry = match &engines[g] {
                Ok(entry) => entry,
                Err(e) => return group_frames[g].iter().map(|_| Err(e.clone())).collect(),
            };
            let spec = &entry.spec;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                entry
                    .beamformer
                    .beamform_batch_results(&group_frames[g], &spec.array, &spec.grid, spec.sound_speed, shares[g])
            }));
            match outcome {
                Ok(results) => {
                    entry.consecutive_panics.store(0, Ordering::Relaxed);
                    results.into_iter().map(|r| r.map_err(|e| ServeError::Engine(e.to_string()))).collect()
                }
                Err(_) => {
                    self.registry.record_dispatch_panic(entry);
                    group_frames[g]
                        .iter()
                        .map(|_| Err(ServeError::EnginePanicked { backend: spec.backend.clone() }))
                        .collect()
                }
            }
        });

        // Per-engine accounting, then scatter back to submission order.
        let now = Instant::now();
        let mut out: Vec<Option<ServeResult<IqImage>>> = (0..n).map(|_| None).collect();
        for ((engine, (_, indices)), results) in engines.iter().zip(&groups).zip(group_results) {
            if let Ok(engine) = engine {
                engine.requests.fetch_add(indices.len() as u64, Ordering::Relaxed);
                engine.batches.fetch_add(1, Ordering::Relaxed);
                let mut latency = recover(engine.latency.lock());
                for &i in indices {
                    latency.record(now.saturating_duration_since(submitted_at[i]));
                }
            }
            for (&i, result) in indices.iter().zip(results) {
                out[i] = Some(result);
            }
        }
        // Feed the ladder: every processed request is a non-expired
        // observation of its *base* stream.
        if let Some(degrade) = &self.degrade {
            for base in &bases {
                degrade.record(base, false, |spec| self.registry.quality_of(spec));
            }
        }
        out.into_iter().map(|r| r.expect("router dropped a request")).collect()
    }

    fn on_expired(&self, request: &RoutedRequest) {
        // A deadline expiry is the ladder's pressure signal: record the shed
        // against the request's base stream.
        if let Some(degrade) = &self.degrade {
            degrade.record(&request.spec, true, |spec| self.registry.quality_of(spec));
        }
    }
}

/// Per-engine serving counters (one element of [`RouterStats`]).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The stream shape the engine serves.
    pub spec: StreamSpec,
    /// Frames this engine beamformed.
    pub requests: u64,
    /// Dispatches (sub-batches) this engine executed.
    pub batches: u64,
    /// Dispatch panics contained at this engine's boundary.
    pub panics: u64,
    /// Submit → beamformed latency distribution of this engine's frames.
    pub latency: LatencyHistogram,
    /// The engine beamformer's plan-cache counters, when it has a cache
    /// (see [`Beamformer::plan_cache_stats`]). Zero `misses` growth after
    /// warm-up proves the multi-slot cache never thrashes.
    pub plan_cache: Option<PlanCacheStats>,
    /// The engine beamformer's accuracy-proxy counters, when it is a lossy
    /// (e.g. fixed-point Tiny-VBF) backend — accumulated SQNR so
    /// quantization degradation is observable per backend label under load
    /// (see [`Beamformer::quant_quality_stats`]). `None` for exact backends.
    ///
    /// Like the plan-cache counters, this is a snapshot of whatever the
    /// beamformer reports: when several engines are clones sharing one
    /// accumulator (or out-of-router clones also serve frames), each
    /// snapshot covers the shared total, not only this engine's requests.
    pub quant_quality: Option<QuantQualityStats>,
}

/// Global fault-handling counters of a [`Router`] (part of [`RouterStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Engine dispatch panics contained at the sub-batch boundary.
    pub panics: u64,
    /// Factory build retries performed (transient-failure recoveries).
    pub retries: u64,
    /// Requests rejected fast with [`ServeError::Quarantined`].
    pub quarantined: u64,
    /// Times a spec's circuit breaker opened (build failures or repeated
    /// dispatch panics).
    pub quarantines: u64,
    /// Idle engines evicted by the TTL sweep
    /// ([`FaultPolicy::engine_ttl`]).
    pub engines_evicted: u64,
    /// Dead batch workers respawned by the server's supervisor (mirrors
    /// [`ServerStats::workers_respawned`]).
    pub workers_respawned: u64,
}

/// Snapshot of a [`Router`]'s work: the shared server counters plus the
/// per-engine, per-stream-ladder and fault-handling breakdowns.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Counters of the shared submission queue / scheduler (including
    /// [`ServerStats::deadline_expired`]).
    pub server: ServerStats,
    /// One entry per live engine, in spin-up order.
    pub engines: Vec<EngineStats>,
    /// One entry per degradation-managed stream: its current rung and its
    /// shed/shift counters. Empty without a [`DegradeConfig`].
    pub degrade: Vec<DegradeStats>,
    /// Global panic/retry/quarantine/eviction counters.
    pub resilience: ResilienceStats,
}

impl RouterStats {
    /// Aggregated plan-cache counters over every engine that has a cache.
    pub fn plan_cache_total(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats::default();
        for engine in &self.engines {
            if let Some(stats) = &engine.plan_cache {
                total.merge(stats);
            }
        }
        total
    }

    /// Aggregated accuracy-proxy counters over every lossy (quantized)
    /// engine. Exact backends contribute nothing; with no lossy engine at
    /// all the total is the noiseless default (infinite SQNR, zero frames).
    /// Engines that share one accumulator (clones of one backend) are each
    /// merged as reported, so shared counters are re-counted per engine —
    /// see [`EngineStats::quant_quality`].
    pub fn quant_quality_total(&self) -> QuantQualityStats {
        let mut total = QuantQualityStats::default();
        for engine in &self.engines {
            if let Some(stats) = &engine.quant_quality {
                total.merge(stats);
            }
        }
        total
    }

    /// Total load-driven downshifts across every managed stream.
    pub fn downshifts_total(&self) -> u64 {
        self.degrade.iter().map(|d| d.downshifts).sum()
    }

    /// Total upshifts across every managed stream.
    pub fn upshifts_total(&self) -> u64 {
        self.degrade.iter().map(|d| d.upshifts).sum()
    }

    /// Total requests shed (deadline-expired) across every managed stream.
    pub fn sheds_total(&self) -> u64 {
        self.degrade.iter().map(|d| d.sheds).sum()
    }
}

/// A multi-stream beamforming server: heterogeneous
/// `(probe, grid, sound speed, backend)` streams in, [`IqImage`]s out, one
/// bounded queue and one thread budget across all of them — with per-engine
/// panic containment, a per-spec circuit breaker and an optional
/// load-shedding ladder.
///
/// See the [module documentation](self) for the architecture and
/// `examples/route_demo.rs` / `examples/degrade_demo.rs` for end-to-end runs.
pub struct Router {
    server: Server<RouterEngine>,
    registry: Arc<EngineRegistry>,
    degrade: Option<Arc<DegradeController>>,
}

impl Router {
    /// Spawns a router over the factory with the workspace-default thread
    /// budget split across the batch workers (`default_threads / workers`
    /// per dispatch, at least 1), like
    /// [`beamform_server`](crate::service::beamform_server), the default
    /// [`FaultPolicy`] and no degradation ladder.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`BatchConfig`] (zero `max_batch`, capacity or
    /// workers).
    pub fn new(config: BatchConfig, factory: impl EngineFactory) -> Self {
        let per_dispatch = (runtime::default_threads() / config.workers.max(1)).max(1);
        Self::with_threads(config, factory, per_dispatch)
    }

    /// [`Router::new`] with an explicit total thread budget per dispatched
    /// batch (shared by that batch's sub-batches via
    /// [`runtime::fair_shares`]).
    ///
    /// # Panics
    ///
    /// Same as [`Router::new`].
    pub fn with_threads(config: BatchConfig, factory: impl EngineFactory, threads: usize) -> Self {
        Self::with_policies(config, factory, threads, FaultPolicy::default(), None)
            .expect("no degrade config to validate")
    }

    /// [`Router::new`] with a degradation ladder attached: streams whose
    /// backend heads one of `degrade`'s ladders downshift to cheaper
    /// backends under deadline pressure instead of shedding requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `degrade` fails
    /// [`DegradeConfig::validate`].
    ///
    /// # Panics
    ///
    /// Same as [`Router::new`] (invalid [`BatchConfig`]).
    pub fn with_degrade(config: BatchConfig, factory: impl EngineFactory, degrade: DegradeConfig) -> ServeResult<Self> {
        let per_dispatch = (runtime::default_threads() / config.workers.max(1)).max(1);
        Self::with_policies(config, factory, per_dispatch, FaultPolicy::default(), Some(degrade))
    }

    /// Full-control constructor: explicit thread budget, [`FaultPolicy`] and
    /// optional [`DegradeConfig`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the degrade config is invalid.
    ///
    /// # Panics
    ///
    /// Same as [`Router::new`] (invalid [`BatchConfig`]).
    pub fn with_policies(
        config: BatchConfig,
        factory: impl EngineFactory,
        threads: usize,
        policy: FaultPolicy,
        degrade: Option<DegradeConfig>,
    ) -> ServeResult<Self> {
        let degrade = degrade.map(DegradeController::new).transpose()?.map(Arc::new);
        let registry = Arc::new(EngineRegistry::new(factory, policy));
        let engine = RouterEngine {
            registry: Arc::clone(&registry),
            degrade: degrade.clone(),
            threads: threads.max(1),
        };
        Ok(Self { server: Server::new(config, engine), registry, degrade })
    }

    /// Submits one frame of `spec`'s stream, blocking while the shared queue
    /// is full (backpressure). Carries the configured default deadline, if
    /// any.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::ShuttingDown`] (with the frame returned) once
    /// [`Router::shutdown`] has begun.
    pub fn submit(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.submit(self.routed(spec, frame)).map_err(strip_routing)
    }

    /// [`Router::submit`] with an explicit per-request deadline (see
    /// [`Server::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// Same as [`Router::submit`].
    pub fn submit_with_deadline(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
        deadline: Duration,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.submit_with_deadline(self.routed(spec, frame), deadline).map_err(strip_routing)
    }

    /// Non-blocking [`Router::submit`]: sheds load instead of waiting.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] at capacity, [`TrySubmitError::ShuttingDown`]
    /// after shutdown — both return the frame.
    pub fn try_submit(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.try_submit(self.routed(spec, frame)).map_err(strip_routing)
    }

    /// Non-blocking [`Router::submit_with_deadline`]: sheds load instead
    /// of waiting when the shared queue is full.
    ///
    /// # Errors
    ///
    /// Same as [`Router::try_submit`].
    pub fn try_submit_with_deadline(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
        deadline: Duration,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server
            .try_submit_with_deadline(self.routed(spec, frame), deadline)
            .map_err(strip_routing)
    }

    fn routed(&self, spec: &StreamSpec, frame: ChannelData) -> RoutedRequest {
        RoutedRequest { spec: spec.clone(), frame, submitted_at: Instant::now() }
    }

    /// Spins up (or finds) the engine for `spec` and warms its per-stream
    /// caches for the given frame format, so the stream's first frame pays
    /// neither the factory nor the plan build.
    ///
    /// # Errors
    ///
    /// Propagates the factory's error (after the configured retries), or
    /// [`ServeError::Quarantined`] while the spec's breaker is open; plan
    /// building itself is best-effort (see [`Beamformer::prepare`]).
    pub fn warm(&self, spec: &StreamSpec, frame: &FrameFormat) -> ServeResult<()> {
        let entry = self.registry.get_or_spawn(spec)?;
        entry.beamformer.prepare(&spec.array, &spec.grid, spec.sound_speed, frame);
        Ok(())
    }

    /// Number of live engines (excluding quarantined/broken slots).
    pub fn num_engines(&self) -> usize {
        self.registry.len()
    }

    /// Number of requests currently queued (all streams share this queue).
    pub fn queue_depth(&self) -> usize {
        self.server.queue_depth()
    }

    /// Snapshot of the shared server counters and the per-engine,
    /// per-stream-ladder and fault-handling breakdowns.
    pub fn stats(&self) -> RouterStats {
        Self::assemble_stats(self.server.stats(), &self.registry, self.degrade.as_deref())
    }

    /// Graceful shutdown: stops intake, drains every accepted request
    /// (expired deadlines resolve as timeouts), joins the workers and
    /// returns the final counters.
    pub fn shutdown(self) -> RouterStats {
        let registry = Arc::clone(&self.registry);
        let degrade = self.degrade.clone();
        let server = self.server.shutdown();
        Self::assemble_stats(server, &registry, degrade.as_deref())
    }

    fn assemble_stats(server: ServerStats, registry: &EngineRegistry, degrade: Option<&DegradeController>) -> RouterStats {
        let mut resilience = registry.resilience();
        resilience.workers_respawned = server.workers_respawned;
        RouterStats {
            server,
            engines: registry.snapshots(),
            degrade: degrade.map(DegradeController::stats).unwrap_or_default(),
            resilience,
        }
    }
}

fn strip_routing(e: TrySubmitError<RoutedRequest>) -> TrySubmitError<ChannelData> {
    match e {
        TrySubmitError::Full(r) => TrySubmitError::Full(r.frame),
        TrySubmitError::ShuttingDown(r) => TrySubmitError::ShuttingDown(r.frame),
    }
}
