//! Multi-engine serving router: one submission queue, one thread budget,
//! many heterogeneous beamforming streams.
//!
//! A [`crate::service::BeamformEngine`] pins one probe, grid, sound speed and
//! beamformer per server. Production front-ends see *heterogeneous* traffic —
//! different probes, imaging grids, frame formats and backends (DAS, MVDR,
//! Tiny-VBF) interleaved on one wire. The [`Router`] serves them all from a
//! single micro-batching [`Server`]:
//!
//! * every request names its [`StreamSpec`] (probe + grid + sound speed +
//!   backend); requests of *all* streams share one bounded submission queue,
//!   so backpressure and deadlines apply globally,
//! * a drained batch is partitioned by spec and dispatched to the matching
//!   engines **concurrently**, the total thread budget divided across the
//!   sub-batches proportionally to their sizes
//!   ([`runtime::fair_shares`] + [`runtime::par_collect_shares`]),
//! * engines spin up **lazily**: the first request of an unseen spec invokes
//!   the [`EngineFactory`] and the built beamformer joins the
//!   [`EngineRegistry`]; [`Router::warm`] spins one up (and builds its
//!   beamforming plan) ahead of traffic,
//! * underneath, the planned beamformers' multi-slot LRU
//!   [`beamforming::plan::PlanCache`] keeps every stream shape's delay table
//!   warm, so N interleaved shapes cause zero plan rebuilds after warm-up
//!   (capacity permitting) — [`RouterStats`] proves it with per-engine
//!   hit/miss/eviction counters,
//! * lossy backends — the per-scheme quantized Tiny-VBF engines registered
//!   under `quantize::QuantScheme::backend_label` labels — additionally
//!   report accumulated SQNR accuracy-proxy counters per engine
//!   ([`EngineStats::quant_quality`]), so fixed-point degradation is
//!   observable under load next to the latency percentiles.
//!
//! Routing is pure scheduling: each frame's image depends only on its own
//! payload and its stream's configuration, so a routed image is **bitwise
//! identical** to a serial `beamform` call with the same spec, for every mix
//! of streams, batch size, linger, deadline and thread budget
//! (`examples/route_demo.rs` and `serve/tests/router.rs` assert this).

use crate::batcher::{BatchConfig, BatchEngine, LatencyHistogram, ResponseHandle, Server, ServerStats, TrySubmitError};
use crate::{ServeError, ServeResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, QuantQualityStats};
use beamforming::plan::{FrameFormat, PlanCacheStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ultrasound::{ChannelData, LinearArray};

/// Everything that identifies one stream shape to the router: which engine
/// must serve a frame and with what acquisition geometry.
///
/// Two requests belong to the same stream iff their specs compare equal
/// (probe geometry, imaging grid, sound speed and backend label). The frame
/// format — the remaining axis of the full stream key — is carried by each
/// [`ChannelData`] itself and resolved *inside* the engine by the multi-slot
/// plan cache, so one engine serves a stream whose sample count changes
/// mid-flight without respawning.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Probe geometry of the stream's acquisitions.
    pub array: LinearArray,
    /// Imaging grid the stream's frames are reconstructed on.
    pub grid: ImagingGrid,
    /// Assumed speed of sound in m/s.
    pub sound_speed: f32,
    /// Which beamformer backend serves the stream (a label the
    /// [`EngineFactory`] understands, e.g. `"das"`, `"mvdr"`, `"tiny-vbf"`,
    /// or a per-quantization-scheme label like `"tiny-vbf-fx16"` — see
    /// `quantize::QuantScheme::backend_label`).
    pub backend: String,
}

impl StreamSpec {
    /// Compact human-readable identifier used in stats and reports, e.g.
    /// `"das/128ch/368x128"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}ch/{}x{}",
            self.backend,
            self.array.num_elements(),
            self.grid.num_rows(),
            self.grid.num_cols()
        )
    }
}

/// Builds the beamformer for a [`StreamSpec`] the first time the router sees
/// it (lazy engine spin-up).
///
/// Implemented for closures, so a match over the backend label is enough:
///
/// ```
/// use beamforming::pipeline::{DelayAndSum, PlannedDas};
/// use serve::router::StreamSpec;
/// use serve::{ServeError, ServeResult};
/// use std::sync::Arc;
///
/// let factory = |spec: &StreamSpec| -> ServeResult<Arc<dyn beamforming::pipeline::Beamformer + Send + Sync>> {
///     match spec.backend.as_str() {
///         "das" => Ok(Arc::new(PlannedDas::new(DelayAndSum::default()))),
///         other => Err(ServeError::Engine(format!("unknown backend {other}"))),
///     }
/// };
/// # let _ = factory;
/// ```
pub trait EngineFactory: Send + Sync + 'static {
    /// Builds the beamformer serving `spec`'s stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] (typically [`ServeError::Engine`]) when the
    /// spec names an unknown backend or an unsupported configuration; every
    /// queued request of that spec resolves with the error.
    fn build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>>;
}

impl<F> EngineFactory for F
where
    F: Fn(&StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> + Send + Sync + 'static,
{
    fn build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        self(spec)
    }
}

/// One spun-up engine: the beamformer plus its serving counters.
struct EngineEntry {
    spec: StreamSpec,
    beamformer: Arc<dyn Beamformer + Send + Sync>,
    requests: AtomicU64,
    batches: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl EngineEntry {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            spec: self.spec.clone(),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            latency: *self.latency.lock().expect("engine latency poisoned"),
            plan_cache: self.beamformer.plan_cache_stats(),
            quant_quality: self.beamformer.quant_quality_stats(),
        }
    }
}

/// The set of engines a router has spun up, in spin-up order.
///
/// Lookup is a linear scan over [`StreamSpec`] equality — routers serve a
/// handful of stream shapes, not thousands, and the scan avoids imposing
/// `Eq`/`Hash` on floating-point probe geometry.
pub struct EngineRegistry {
    engines: Mutex<Vec<Arc<EngineEntry>>>,
    factory: Box<dyn EngineFactory>,
}

impl EngineRegistry {
    fn new(factory: impl EngineFactory) -> Self {
        Self { engines: Mutex::new(Vec::new()), factory: Box::new(factory) }
    }

    /// Returns the engine serving `spec`, spinning it up through the factory
    /// on first sight. The factory runs under the registry lock, so
    /// concurrent first-requests of one spec build one engine.
    fn get_or_spawn(&self, spec: &StreamSpec) -> ServeResult<Arc<EngineEntry>> {
        let mut engines = self.engines.lock().expect("engine registry poisoned");
        if let Some(entry) = engines.iter().find(|e| e.spec == *spec) {
            return Ok(Arc::clone(entry));
        }
        let beamformer = self.factory.build(spec)?;
        let entry = Arc::new(EngineEntry {
            spec: spec.clone(),
            beamformer,
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::default()),
        });
        engines.push(Arc::clone(&entry));
        Ok(entry)
    }

    fn len(&self) -> usize {
        self.engines.lock().expect("engine registry poisoned").len()
    }

    fn snapshots(&self) -> Vec<EngineStats> {
        self.engines.lock().expect("engine registry poisoned").iter().map(|e| e.snapshot()).collect()
    }
}

/// One queued routed frame (the router's [`BatchEngine::Request`]).
pub struct RoutedRequest {
    spec: StreamSpec,
    frame: ChannelData,
    submitted_at: Instant,
}

/// The [`BatchEngine`] behind a [`Router`]: partitions each drained batch by
/// [`StreamSpec`] and dispatches the sub-batches to their engines
/// concurrently under one shared thread budget.
pub struct RouterEngine {
    registry: Arc<EngineRegistry>,
    /// Total thread budget per dispatched batch, divided across the
    /// sub-batches with [`runtime::fair_shares`].
    threads: usize,
}

impl BatchEngine for RouterEngine {
    type Request = RoutedRequest;
    type Response = IqImage;

    fn process_batch(&self, batch: Vec<RoutedRequest>) -> Vec<ServeResult<IqImage>> {
        let n = batch.len();
        // Partition by spec, preserving submission order within each group.
        let mut groups: Vec<(StreamSpec, Vec<usize>)> = Vec::new();
        for (i, request) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(spec, _)| *spec == request.spec) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((request.spec.clone(), vec![i])),
            }
        }
        // Move the frames out of the batch, grouped (no clones).
        let mut frames: Vec<Option<ChannelData>> = batch.iter().map(|_| None).collect();
        let mut submitted_at = Vec::with_capacity(n);
        for (i, request) in batch.into_iter().enumerate() {
            frames[i] = Some(request.frame);
            submitted_at.push(request.submitted_at);
        }
        let group_frames: Vec<Vec<ChannelData>> = groups
            .iter()
            .map(|(_, indices)| {
                indices.iter().map(|&i| frames[i].take().expect("frame moved twice")).collect()
            })
            .collect();
        // Resolve engines up front (lazy spin-up happens here, serialized by
        // the registry lock); a factory failure fails only its own group.
        let engines: Vec<ServeResult<Arc<EngineEntry>>> =
            groups.iter().map(|(spec, _)| self.registry.get_or_spawn(spec)).collect();

        // Dispatch the sub-batches concurrently, sharing the router's thread
        // budget proportionally to sub-batch size: frames of every stream run
        // frame-concurrent and row-parallel inside their engine's share.
        let sizes: Vec<usize> = group_frames.iter().map(Vec::len).collect();
        let shares = runtime::fair_shares(self.threads, &sizes);
        let group_results: Vec<Vec<ServeResult<IqImage>>> = runtime::par_collect_shares(&shares, |g| {
            let engine = match &engines[g] {
                Ok(engine) => engine,
                Err(e) => return group_frames[g].iter().map(|_| Err(e.clone())).collect(),
            };
            let spec = &engine.spec;
            engine
                .beamformer
                .beamform_batch_results(&group_frames[g], &spec.array, &spec.grid, spec.sound_speed, shares[g])
                .into_iter()
                .map(|r| r.map_err(|e| ServeError::Engine(e.to_string())))
                .collect()
        });

        // Per-engine accounting, then scatter back to submission order.
        let now = Instant::now();
        let mut out: Vec<Option<ServeResult<IqImage>>> = (0..n).map(|_| None).collect();
        for ((engine, (_, indices)), results) in engines.iter().zip(&groups).zip(group_results) {
            if let Ok(engine) = engine {
                engine.requests.fetch_add(indices.len() as u64, Ordering::Relaxed);
                engine.batches.fetch_add(1, Ordering::Relaxed);
                let mut latency = engine.latency.lock().expect("engine latency poisoned");
                for &i in indices {
                    latency.record(now.saturating_duration_since(submitted_at[i]));
                }
            }
            for (&i, result) in indices.iter().zip(results) {
                out[i] = Some(result);
            }
        }
        out.into_iter().map(|r| r.expect("router dropped a request")).collect()
    }
}

/// Per-engine serving counters (one element of [`RouterStats`]).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The stream shape the engine serves.
    pub spec: StreamSpec,
    /// Frames this engine beamformed.
    pub requests: u64,
    /// Dispatches (sub-batches) this engine executed.
    pub batches: u64,
    /// Submit → beamformed latency distribution of this engine's frames.
    pub latency: LatencyHistogram,
    /// The engine beamformer's plan-cache counters, when it has a cache
    /// (see [`Beamformer::plan_cache_stats`]). Zero `misses` growth after
    /// warm-up proves the multi-slot cache never thrashes.
    pub plan_cache: Option<PlanCacheStats>,
    /// The engine beamformer's accuracy-proxy counters, when it is a lossy
    /// (e.g. fixed-point Tiny-VBF) backend — accumulated SQNR so
    /// quantization degradation is observable per backend label under load
    /// (see [`Beamformer::quant_quality_stats`]). `None` for exact backends.
    ///
    /// Like the plan-cache counters, this is a snapshot of whatever the
    /// beamformer reports: when several engines are clones sharing one
    /// accumulator (or out-of-router clones also serve frames), each
    /// snapshot covers the shared total, not only this engine's requests.
    pub quant_quality: Option<QuantQualityStats>,
}

/// Snapshot of a [`Router`]'s work: the shared server counters plus the
/// per-engine breakdown.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Counters of the shared submission queue / scheduler (including
    /// [`ServerStats::deadline_expired`]).
    pub server: ServerStats,
    /// One entry per spun-up engine, in spin-up order.
    pub engines: Vec<EngineStats>,
}

impl RouterStats {
    /// Aggregated plan-cache counters over every engine that has a cache.
    pub fn plan_cache_total(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats::default();
        for engine in &self.engines {
            if let Some(stats) = &engine.plan_cache {
                total.merge(stats);
            }
        }
        total
    }

    /// Aggregated accuracy-proxy counters over every lossy (quantized)
    /// engine. Exact backends contribute nothing; with no lossy engine at
    /// all the total is the noiseless default (infinite SQNR, zero frames).
    /// Engines that share one accumulator (clones of one backend) are each
    /// merged as reported, so shared counters are re-counted per engine —
    /// see [`EngineStats::quant_quality`].
    pub fn quant_quality_total(&self) -> QuantQualityStats {
        let mut total = QuantQualityStats::default();
        for engine in &self.engines {
            if let Some(stats) = &engine.quant_quality {
                total.merge(stats);
            }
        }
        total
    }
}

/// A multi-stream beamforming server: heterogeneous
/// `(probe, grid, sound speed, backend)` streams in, [`IqImage`]s out, one
/// bounded queue and one thread budget across all of them.
///
/// See the [module documentation](self) for the architecture and
/// `examples/route_demo.rs` for an end-to-end run.
pub struct Router {
    server: Server<RouterEngine>,
    registry: Arc<EngineRegistry>,
}

impl Router {
    /// Spawns a router over the factory with the workspace-default thread
    /// budget split across the batch workers (`default_threads / workers`
    /// per dispatch, at least 1), like
    /// [`beamform_server`](crate::service::beamform_server).
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`BatchConfig`] (zero `max_batch`, capacity or
    /// workers).
    pub fn new(config: BatchConfig, factory: impl EngineFactory) -> Self {
        let per_dispatch = (runtime::default_threads() / config.workers.max(1)).max(1);
        Self::with_threads(config, factory, per_dispatch)
    }

    /// [`Router::new`] with an explicit total thread budget per dispatched
    /// batch (shared by that batch's sub-batches via
    /// [`runtime::fair_shares`]).
    ///
    /// # Panics
    ///
    /// Same as [`Router::new`].
    pub fn with_threads(config: BatchConfig, factory: impl EngineFactory, threads: usize) -> Self {
        let registry = Arc::new(EngineRegistry::new(factory));
        let engine = RouterEngine { registry: Arc::clone(&registry), threads: threads.max(1) };
        Self { server: Server::new(config, engine), registry }
    }

    /// Submits one frame of `spec`'s stream, blocking while the shared queue
    /// is full (backpressure). Carries the configured default deadline, if
    /// any.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::ShuttingDown`] (with the frame returned) once
    /// [`Router::shutdown`] has begun.
    pub fn submit(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.submit(self.routed(spec, frame)).map_err(strip_routing)
    }

    /// [`Router::submit`] with an explicit per-request deadline (see
    /// [`Server::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// Same as [`Router::submit`].
    pub fn submit_with_deadline(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
        deadline: Duration,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.submit_with_deadline(self.routed(spec, frame), deadline).map_err(strip_routing)
    }

    /// Non-blocking [`Router::submit`]: sheds load instead of waiting.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] at capacity, [`TrySubmitError::ShuttingDown`]
    /// after shutdown — both return the frame.
    pub fn try_submit(
        &self,
        spec: &StreamSpec,
        frame: ChannelData,
    ) -> Result<ResponseHandle<IqImage>, TrySubmitError<ChannelData>> {
        self.server.try_submit(self.routed(spec, frame)).map_err(strip_routing)
    }

    fn routed(&self, spec: &StreamSpec, frame: ChannelData) -> RoutedRequest {
        RoutedRequest { spec: spec.clone(), frame, submitted_at: Instant::now() }
    }

    /// Spins up (or finds) the engine for `spec` and warms its per-stream
    /// caches for the given frame format, so the stream's first frame pays
    /// neither the factory nor the plan build.
    ///
    /// # Errors
    ///
    /// Propagates the factory's error; plan building itself is best-effort
    /// (see [`Beamformer::prepare`]).
    pub fn warm(&self, spec: &StreamSpec, frame: &FrameFormat) -> ServeResult<()> {
        let entry = self.registry.get_or_spawn(spec)?;
        entry.beamformer.prepare(&spec.array, &spec.grid, spec.sound_speed, frame);
        Ok(())
    }

    /// Number of engines spun up so far.
    pub fn num_engines(&self) -> usize {
        self.registry.len()
    }

    /// Number of requests currently queued (all streams share this queue).
    pub fn queue_depth(&self) -> usize {
        self.server.queue_depth()
    }

    /// Snapshot of the shared server counters and the per-engine breakdown.
    pub fn stats(&self) -> RouterStats {
        RouterStats { server: self.server.stats(), engines: self.registry.snapshots() }
    }

    /// Graceful shutdown: stops intake, drains every accepted request
    /// (expired deadlines resolve as timeouts), joins the workers and
    /// returns the final counters.
    pub fn shutdown(self) -> RouterStats {
        let registry = Arc::clone(&self.registry);
        let server = self.server.shutdown();
        RouterStats { server, engines: registry.snapshots() }
    }
}

fn strip_routing(e: TrySubmitError<RoutedRequest>) -> TrySubmitError<ChannelData> {
    match e {
        TrySubmitError::Full(r) => TrySubmitError::Full(r.frame),
        TrySubmitError::ShuttingDown(r) => TrySubmitError::ShuttingDown(r.frame),
    }
}
