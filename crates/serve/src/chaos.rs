//! Deterministic fault injection for the serving stack.
//!
//! Robustness claims are only testable if failures can be *scheduled*:
//! [`ChaosBeamformer`] wraps any [`Beamformer`] and injects faults — latency
//! spikes, engine errors, panics, NaN-filled frames — at call indices chosen
//! by a [`ChaosSchedule`]. The schedule is either scripted (an explicit fault
//! per call) or seeded (a splitmix-style hash of `(seed, call_index)`), so a
//! chaos run is **deterministic**: no wall-clock randomness, identical fault
//! sequences on every execution for a given seed. [`ChaosFactory`] does the
//! same for *engine construction*, failing a backend's first N builds to
//! exercise the registry's retry/circuit-breaker path.
//!
//! The chaos test suite (`serve/tests/chaos.rs`), the degradation suite
//! (`serve/tests/degrade.rs`) and `bench_pr6` drive the router through these
//! wrappers to prove the PR-6 guarantees: a panicking engine fails only its
//! own requests, every handle resolves, and responses served on an
//! un-degraded backend stay bitwise identical to direct inference.

use crate::router::{EngineFactory, StreamSpec};
use crate::{recover, ServeResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::{Beamformer, QuantQualityStats};
use beamforming::plan::{FrameFormat, PlanCacheStats};
use beamforming::{BeamformError, BeamformResult};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use ultrasound::{ChannelData, LinearArray};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Sleep for the given duration before beamforming normally — a latency
    /// spike that pushes queued requests toward their deadlines without
    /// corrupting any result.
    Delay(Duration),
    /// Panic inside the beamform call (payload prefixed `"chaos:"`),
    /// exercising the router's panic containment.
    Panic,
    /// Return a frame filled with NaN — numerically poisoned output that the
    /// quality signal must catch (the injected noise makes the windowed SQNR
    /// collapse).
    NanFrame,
    /// Return a [`BeamformError`] — a well-behaved engine failure.
    Error,
}

#[derive(Debug, Clone)]
enum ScheduleKind {
    /// Explicit per-call faults, indexed by call; `None` beyond the end.
    Scripted(Vec<Option<ChaosFault>>),
    /// Seeded pseudo-random faults with independent per-fault rates.
    Seeded {
        seed: u64,
        panic_one_in: Option<u64>,
        error_one_in: Option<u64>,
        nan_one_in: Option<u64>,
        delay_one_in: Option<(u64, Duration)>,
    },
}

/// A deterministic fault schedule: a pure function from call index to
/// [`ChaosFault`].
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    kind: ScheduleKind,
}

/// SplitMix64 finalizer: avalanches `(seed, call)` into uncorrelated bits.
fn mix(seed: u64, call: u64, salt: u64) -> u64 {
    let mut z = seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xD134_2543_DE82_EF95);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosSchedule {
    /// A schedule that never injects anything (pass-through wrapper).
    pub fn none() -> Self {
        Self { kind: ScheduleKind::Scripted(Vec::new()) }
    }

    /// An explicit script: call `i` suffers `faults[i]` (calls beyond the
    /// script run clean).
    pub fn scripted(faults: Vec<Option<ChaosFault>>) -> Self {
        Self { kind: ScheduleKind::Scripted(faults) }
    }

    /// A seeded pseudo-random schedule with no faults enabled yet; chain
    /// [`ChaosSchedule::panic_one_in`] and friends to arm it. The fault
    /// pattern depends only on `(seed, call index)`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            kind: ScheduleKind::Seeded {
                seed,
                panic_one_in: None,
                error_one_in: None,
                nan_one_in: None,
                delay_one_in: None,
            },
        }
    }

    /// Arms injected panics at an average rate of one per `n` calls.
    ///
    /// # Panics
    ///
    /// Panics when the schedule is scripted or `n` is zero.
    pub fn panic_one_in(mut self, n: u64) -> Self {
        let ScheduleKind::Seeded { panic_one_in, .. } = &mut self.kind else {
            panic!("rates apply to seeded schedules only");
        };
        assert!(n > 0, "rate must be >= 1");
        *panic_one_in = Some(n);
        self
    }

    /// Arms injected [`BeamformError`]s at one per `n` calls (seeded only).
    ///
    /// # Panics
    ///
    /// Panics when the schedule is scripted or `n` is zero.
    pub fn error_one_in(mut self, n: u64) -> Self {
        let ScheduleKind::Seeded { error_one_in, .. } = &mut self.kind else {
            panic!("rates apply to seeded schedules only");
        };
        assert!(n > 0, "rate must be >= 1");
        *error_one_in = Some(n);
        self
    }

    /// Arms NaN-frame injection at one per `n` calls (seeded only).
    ///
    /// # Panics
    ///
    /// Panics when the schedule is scripted or `n` is zero.
    pub fn nan_one_in(mut self, n: u64) -> Self {
        let ScheduleKind::Seeded { nan_one_in, .. } = &mut self.kind else {
            panic!("rates apply to seeded schedules only");
        };
        assert!(n > 0, "rate must be >= 1");
        *nan_one_in = Some(n);
        self
    }

    /// Arms latency spikes of `delay` at one per `n` calls (seeded only).
    ///
    /// # Panics
    ///
    /// Panics when the schedule is scripted or `n` is zero.
    pub fn delay_one_in(mut self, n: u64, delay: Duration) -> Self {
        let ScheduleKind::Seeded { delay_one_in, .. } = &mut self.kind else {
            panic!("rates apply to seeded schedules only");
        };
        assert!(n > 0, "rate must be >= 1");
        *delay_one_in = Some((n, delay));
        self
    }

    /// The fault injected at call `call`, if any. Pure: same `(schedule,
    /// call)` always yields the same answer. For seeded schedules the
    /// per-fault draws are independent; when several fire on one call the
    /// priority is panic > error > NaN frame > delay.
    pub fn fault_for(&self, call: u64) -> Option<ChaosFault> {
        match &self.kind {
            ScheduleKind::Scripted(faults) => faults.get(call as usize).copied().flatten(),
            ScheduleKind::Seeded { seed, panic_one_in, error_one_in, nan_one_in, delay_one_in } => {
                let hits = |salt: u64, n: u64| mix(*seed, call, salt) % n == 0;
                if panic_one_in.is_some_and(|n| hits(1, n)) {
                    Some(ChaosFault::Panic)
                } else if error_one_in.is_some_and(|n| hits(2, n)) {
                    Some(ChaosFault::Error)
                } else if nan_one_in.is_some_and(|n| hits(3, n)) {
                    Some(ChaosFault::NanFrame)
                } else if let Some((n, delay)) = delay_one_in {
                    hits(4, *n).then_some(ChaosFault::Delay(*delay))
                } else {
                    None
                }
            }
        }
    }
}

/// Injection counters of a [`ChaosBeamformer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Total beamform calls observed (each consumes one schedule index).
    pub calls: u64,
    /// Panics injected.
    pub panics: u64,
    /// Engine errors injected.
    pub errors: u64,
    /// NaN frames fabricated.
    pub nan_frames: u64,
    /// Latency spikes injected.
    pub delays: u64,
}

/// A [`Beamformer`] wrapper injecting scheduled faults around an inner
/// backend.
///
/// Calls without a scheduled fault pass through untouched, so clean chaos
/// runs keep the inner backend's bitwise output. Injected NaN frames are also
/// charged to the wrapper's own [`QuantQualityStats`] (a huge noise term per
/// poisoned frame), so the degradation ladder's SQNR signal observes the
/// corruption even over exact inner backends like DAS.
pub struct ChaosBeamformer<B> {
    inner: B,
    name: String,
    schedule: ChaosSchedule,
    calls: AtomicU64,
    panics: AtomicU64,
    errors: AtomicU64,
    nan_frames: AtomicU64,
    delays: AtomicU64,
    quality: Mutex<QuantQualityStats>,
}

/// Noise energy charged per injected NaN frame — large enough that a single
/// poisoned frame drags any observation window's SQNR far below every
/// realistic floor.
const NAN_FRAME_NOISE: f64 = 1.0e6;

impl<B: Beamformer> ChaosBeamformer<B> {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: B, schedule: ChaosSchedule) -> Self {
        let name = format!("chaos({})", inner.name());
        Self {
            inner,
            name,
            schedule,
            calls: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            nan_frames: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            quality: Mutex::new(QuantQualityStats::default()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Injection counters so far.
    pub fn chaos_stats(&self) -> ChaosStats {
        ChaosStats {
            calls: self.calls.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            nan_frames: self.nan_frames.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }

    fn charge_quality(&self, noise: f64) {
        let mut quality = recover(self.quality.lock());
        quality.frames += 1;
        quality.signal_energy += 1.0;
        quality.noise_energy += noise;
    }
}

impl<B: Beamformer> Beamformer for ChaosBeamformer<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.schedule.fault_for(call) {
            Some(ChaosFault::Panic) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic at call {call}");
            }
            Some(ChaosFault::Error) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Err(BeamformError::InvalidParameter {
                    name: "chaos",
                    reason: format!("injected engine error at call {call}"),
                })
            }
            Some(ChaosFault::NanFrame) => {
                self.nan_frames.fetch_add(1, Ordering::Relaxed);
                self.charge_quality(NAN_FRAME_NOISE);
                let mut image = IqImage::zeros(grid.clone());
                for row in 0..image.num_rows() {
                    for col in 0..image.num_cols() {
                        let value = image.value_mut(row, col);
                        value.re = f32::NAN;
                        value.im = f32::NAN;
                    }
                }
                Ok(image)
            }
            Some(ChaosFault::Delay(delay)) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
                self.charge_quality(0.0);
                self.inner.beamform(data, array, grid, sound_speed)
            }
            None => {
                self.charge_quality(0.0);
                self.inner.beamform(data, array, grid, sound_speed)
            }
        }
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        self.inner.prepare(array, grid, sound_speed, frame);
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.inner.plan_cache_stats()
    }

    fn quant_quality_stats(&self) -> Option<QuantQualityStats> {
        // The wrapper's injected-corruption counters, merged with whatever the
        // inner backend reports — exact inner backends (None) still surface
        // the NaN-frame noise to the ladder's quality probe.
        let mut merged = *recover(self.quality.lock());
        if let Some(inner) = self.inner.quant_quality_stats() {
            merged.merge(&inner);
        }
        Some(merged)
    }
}

/// An [`EngineFactory`] wrapper that fails scripted backend builds, driving
/// the registry's retry/backoff and circuit-breaker paths.
///
/// Build failures are *consumed*: `fail_builds(label, n)` makes the next `n`
/// build attempts for `label` fail, after which builds pass through to the
/// inner factory — so a "transient" outage is expressed as a finite failure
/// budget and a "persistent" one as a budget larger than the registry will
/// ever retry.
pub struct ChaosFactory<F> {
    inner: F,
    fail: Mutex<Vec<(String, u32)>>,
    build_calls: Arc<AtomicU64>,
    injected_failures: Arc<AtomicU64>,
}

/// A cloneable window onto a [`ChaosFactory`]'s counters, usable after the
/// factory itself has been moved into a router.
#[derive(Clone)]
pub struct ChaosFactoryProbe {
    build_calls: Arc<AtomicU64>,
    injected_failures: Arc<AtomicU64>,
}

impl ChaosFactoryProbe {
    /// Total build attempts observed (including injected failures).
    pub fn build_calls(&self) -> u64 {
        self.build_calls.load(Ordering::Relaxed)
    }

    /// Build failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures.load(Ordering::Relaxed)
    }
}

impl<F> ChaosFactory<F> {
    /// Wraps `inner` with an empty failure script.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            fail: Mutex::new(Vec::new()),
            build_calls: Arc::new(AtomicU64::new(0)),
            injected_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Schedules the next `n` build attempts of `backend` to fail.
    pub fn fail_builds(self, backend: &str, n: u32) -> Self {
        recover(self.fail.lock()).push((backend.to_string(), n));
        self
    }

    /// A counter probe that outlives moving the factory into a router.
    pub fn probe(&self) -> ChaosFactoryProbe {
        ChaosFactoryProbe {
            build_calls: Arc::clone(&self.build_calls),
            injected_failures: Arc::clone(&self.injected_failures),
        }
    }
}

impl<F: EngineFactory> EngineFactory for ChaosFactory<F> {
    fn build(&self, spec: &StreamSpec) -> ServeResult<Arc<dyn Beamformer + Send + Sync>> {
        self.build_calls.fetch_add(1, Ordering::Relaxed);
        {
            let mut fail = recover(self.fail.lock());
            if let Some(entry) = fail.iter_mut().find(|(label, n)| *label == spec.backend && *n > 0) {
                entry.1 -= 1;
                self.injected_failures.fetch_add(1, Ordering::Relaxed);
                return Err(crate::ServeError::Engine(format!(
                    "chaos: injected build failure for `{}`",
                    spec.backend
                )));
            }
        }
        self.inner.build(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beamforming::pipeline::DelayAndSum;

    #[test]
    fn seeded_schedule_is_deterministic_and_rate_plausible() {
        let a = ChaosSchedule::seeded(7).panic_one_in(8).nan_one_in(16);
        let b = ChaosSchedule::seeded(7).panic_one_in(8).nan_one_in(16);
        let faults_a: Vec<_> = (0..512).map(|c| a.fault_for(c)).collect();
        let faults_b: Vec<_> = (0..512).map(|c| b.fault_for(c)).collect();
        assert_eq!(faults_a, faults_b);
        let panics = faults_a.iter().filter(|f| **f == Some(ChaosFault::Panic)).count();
        // One-in-8 over 512 draws: expect ~64; accept a wide deterministic band.
        assert!((16..=192).contains(&panics), "panic count {panics} implausible for rate 1/8");
        // A different seed must yield a different pattern.
        let c = ChaosSchedule::seeded(8).panic_one_in(8).nan_one_in(16);
        assert_ne!(faults_a, (0..512).map(|i| c.fault_for(i)).collect::<Vec<_>>());
    }

    #[test]
    fn scripted_schedule_indexes_by_call() {
        let s = ChaosSchedule::scripted(vec![None, Some(ChaosFault::Panic), Some(ChaosFault::Error)]);
        assert_eq!(s.fault_for(0), None);
        assert_eq!(s.fault_for(1), Some(ChaosFault::Panic));
        assert_eq!(s.fault_for(2), Some(ChaosFault::Error));
        assert_eq!(s.fault_for(3), None); // beyond the script: clean
        assert_eq!(ChaosSchedule::none().fault_for(0), None);
    }

    #[test]
    fn nan_frames_poison_the_quality_signal() {
        let chaos = ChaosBeamformer::new(
            DelayAndSum::default(),
            ChaosSchedule::scripted(vec![Some(ChaosFault::NanFrame)]),
        );
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 4, 4);
        let frame = ChannelData::zeros(64, array.num_elements(), array.sampling_frequency());
        let image = chaos.beamform(&frame, &array, &grid, 1540.0).unwrap();
        assert!(image.as_slice()[0].re.is_nan());
        let quality = chaos.quant_quality_stats().unwrap();
        assert!(quality.noise_energy >= NAN_FRAME_NOISE);
        assert!(quality.sqnr_db() < 0.0);
        // A clean follow-up call keeps the cumulative counters poisoned but
        // adds signal.
        let clean = chaos.beamform(&frame, &array, &grid, 1540.0).unwrap();
        assert!(!clean.as_slice()[0].re.is_nan());
        assert_eq!(chaos.chaos_stats(), ChaosStats { calls: 2, nan_frames: 1, ..ChaosStats::default() });
    }
}
