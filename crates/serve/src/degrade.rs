//! Quality-aware graceful degradation: the load-shedding ladder.
//!
//! The Tiny-VBF paper's premise is that image precision is a *tradeable*
//! resource: Table III's fixed-point schemes buy resource efficiency with
//! SQNR. This module closes that trade-off into a serving feedback loop — a
//! router configured with a [`DegradeConfig`] watches two signals per stream
//! and moves the stream along a configurable **scheme ladder** (an ordered
//! list of backend labels, best quality first, e.g.
//! `tiny-vbf-fp → tiny-vbf-fx24 → tiny-vbf-fx20 → tiny-vbf-fx16`):
//!
//! * **deadline-expiry rate** (the PR-4 latency-priority signal): when the
//!   fraction of a stream's requests that expire in the queue crosses
//!   [`DegradeConfig::downshift_expiry_rate`], the stream **downshifts** one
//!   rung — it deliberately serves a narrower/cheaper scheme so the system
//!   degrades image precision *before* it degrades availability;
//! * **rolling SQNR** (the PR-5 accuracy-proxy signal): when the current
//!   rung's windowed SQNR falls below [`DegradeConfig::sqnr_floor_db`], the
//!   stream **upshifts** back to a wider scheme and the abandoned rung is
//!   barred for a few windows — quality sets a floor that load pressure
//!   cannot push through.
//!
//! Decisions are made at fixed-size observation **windows** (every
//! [`DegradeConfig::window`] completed-or-expired requests) with two
//! anti-oscillation guards:
//!
//! * **hysteresis** — the upshift threshold
//!   ([`DegradeConfig::upshift_expiry_rate`]) is strictly below the downshift
//!   threshold, so a stream sitting near one threshold cannot alternate;
//! * **cooldown** — after any shift, at least
//!   [`DegradeConfig::cooldown_windows`] further windows must close before
//!   the next shift, in either direction (asserted under random traces by
//!   `serve/tests/degrade.rs`).
//!
//! The machinery is deliberately wall-clock-free: [`LadderState`] is a pure
//! state machine driven only by observation counts, so its behaviour is
//! deterministic and property-testable. Requests that are **not** downshifted
//! run on their original backend unchanged, preserving the workspace's
//! bitwise-determinism contract for every untouched request.

use crate::router::StreamSpec;
use crate::{recover, ServeError, ServeResult};
use beamforming::pipeline::QuantQualityStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration of the router's graceful-degradation policy.
///
/// Attach with [`crate::Router::with_degrade`] (or
/// [`crate::Router::with_policies`]). Streams whose backend label equals the
/// *head* (first element) of one of [`DegradeConfig::ladders`] are managed;
/// every other stream is routed untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// The scheme ladders, one per managed base backend. Each ladder lists
    /// backend labels best-quality-first; rung 0 (the head) is the label
    /// streams submit under, later rungs are the cheaper fallbacks the
    /// engine factory must also understand.
    pub ladders: Vec<Vec<String>>,
    /// Observation-window length: a shift decision is evaluated every
    /// `window` completed-or-expired requests of the stream.
    pub window: usize,
    /// Minimum number of windows that must close between two shifts of one
    /// stream (in either direction) — the anti-oscillation cooldown.
    pub cooldown_windows: u32,
    /// Windowed deadline-expiry rate at or above which a stream downshifts
    /// one rung (serves the next-cheaper scheme).
    pub downshift_expiry_rate: f64,
    /// Windowed expiry rate at or below which a stream upshifts one rung
    /// back toward full quality. Must be strictly below
    /// [`DegradeConfig::downshift_expiry_rate`] (hysteresis band).
    pub upshift_expiry_rate: f64,
    /// Optional quality floor: when the current rung's windowed SQNR (dB)
    /// drops below this, the stream upshifts regardless of load and the
    /// abandoned rung is barred for
    /// [`DegradeConfig::quality_bar_windows`] windows. `None` disables the
    /// quality signal.
    pub sqnr_floor_db: Option<f64>,
    /// How many windows a rung abandoned for quality reasons stays barred
    /// from load-driven downshifts.
    pub quality_bar_windows: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            ladders: Vec::new(),
            window: 32,
            cooldown_windows: 2,
            downshift_expiry_rate: 0.10,
            upshift_expiry_rate: 0.01,
            sqnr_floor_db: None,
            quality_bar_windows: 4,
        }
    }
}

impl DegradeConfig {
    /// A config managing one ladder, with the default thresholds.
    ///
    /// ```
    /// use serve::DegradeConfig;
    ///
    /// let config = DegradeConfig::with_ladder(
    ///     ["tiny-vbf-fp", "tiny-vbf-fx24", "tiny-vbf-fx20", "tiny-vbf-fx16"]
    ///         .map(String::from)
    ///         .to_vec(),
    /// );
    /// assert!(config.validate().is_ok());
    /// ```
    pub fn with_ladder(ladder: Vec<String>) -> Self {
        Self { ladders: vec![ladder], ..Self::default() }
    }

    /// Builds a calibrated single-ladder config from measured per-rung image
    /// quality (the offline `crates/evals` pass) instead of hand-picked
    /// constants.
    ///
    /// The ladder is ordered by **measured** quality, best first — a stable
    /// sort on [`RungMeasurement::quality_score`] descending, so rungs the
    /// evaluation cannot distinguish keep their given relative order. The
    /// SQNR floor is set `3 dB` below the worst rung's *measured* SQNR:
    /// window-to-window jitter of a healthy bottom rung stays above it,
    /// while a genuine quality collapse (kernel drift, poisoned counters)
    /// still trips the upshift. Rungs whose SQNR is non-finite (exact
    /// backends report `+inf`) don't constrain the floor; when no rung
    /// reports a finite SQNR the floor is disabled.
    ///
    /// Requests on rung 0 are routed untouched (the controller only
    /// rewrites the effective backend below rung 0), so calibration never
    /// perturbs full-quality traffic — asserted by `serve/tests/degrade.rs`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when fewer than two rungs are measured,
    /// a quality score is NaN, or two measurements share a backend label.
    pub fn from_quality_profile(measurements: &[RungMeasurement]) -> ServeResult<Self> {
        if measurements.len() < 2 {
            return Err(ServeError::InvalidConfig(
                "calibration needs at least two measured rungs".into(),
            ));
        }
        if let Some(bad) = measurements.iter().find(|m| m.quality_score.is_nan()) {
            return Err(ServeError::InvalidConfig(format!(
                "rung `{}` has a NaN quality score",
                bad.backend
            )));
        }
        let mut ordered: Vec<&RungMeasurement> = measurements.iter().collect();
        ordered.sort_by(|a, b| {
            b.quality_score.partial_cmp(&a.quality_score).expect("scores checked non-NaN")
        });
        let ladder: Vec<String> = ordered.iter().map(|m| m.backend.clone()).collect();
        let floor = ordered
            .iter()
            .map(|m| m.sqnr_db)
            .filter(|db| db.is_finite())
            .fold(f64::INFINITY, f64::min);
        let config = Self {
            sqnr_floor_db: floor.is_finite().then_some(floor - 3.0),
            ..Self::with_ladder(ladder)
        };
        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when a ladder is shorter than two rungs
    /// or repeats a label, two ladders share a head label, the window is
    /// zero, a rate is outside `[0, 1]`, or the hysteresis band is empty
    /// (`upshift_expiry_rate >= downshift_expiry_rate`).
    pub fn validate(&self) -> ServeResult<()> {
        if self.window == 0 {
            return Err(ServeError::InvalidConfig("degrade window must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.downshift_expiry_rate) || !(0.0..=1.0).contains(&self.upshift_expiry_rate) {
            return Err(ServeError::InvalidConfig("expiry rates must be within [0, 1]".into()));
        }
        if self.upshift_expiry_rate >= self.downshift_expiry_rate {
            return Err(ServeError::InvalidConfig(
                "upshift_expiry_rate must be strictly below downshift_expiry_rate (hysteresis)".into(),
            ));
        }
        for ladder in &self.ladders {
            if ladder.len() < 2 {
                return Err(ServeError::InvalidConfig("a ladder needs at least two rungs".into()));
            }
            let mut labels = ladder.clone();
            labels.sort_unstable();
            labels.dedup();
            if labels.len() != ladder.len() {
                return Err(ServeError::InvalidConfig(format!("ladder {ladder:?} repeats a label")));
            }
        }
        let mut heads: Vec<&String> = self.ladders.iter().map(|l| &l[0]).collect();
        heads.sort_unstable();
        heads.dedup();
        if heads.len() != self.ladders.len() {
            return Err(ServeError::InvalidConfig("two ladders share a head label".into()));
        }
        Ok(())
    }

    /// Index of the ladder whose head is `backend`, if any.
    fn ladder_for(&self, backend: &str) -> Option<usize> {
        self.ladders.iter().position(|l| l[0] == backend)
    }

    fn tuning(&self) -> LadderTuning {
        LadderTuning {
            window: self.window,
            cooldown_windows: self.cooldown_windows,
            downshift_expiry_rate: self.downshift_expiry_rate,
            upshift_expiry_rate: self.upshift_expiry_rate,
            sqnr_floor_db: self.sqnr_floor_db,
            quality_bar_windows: self.quality_bar_windows,
        }
    }
}

/// One backend rung's measured image quality — the input row of
/// [`DegradeConfig::from_quality_profile`].
///
/// Produced offline by the `crates/evals` subsystem from phantom-scene
/// renders: `quality_score` condenses the paper's Table I/II metrics
/// (CR/CNR/gCNR and FWHM resolution) into one comparable scalar where
/// **higher is better**, and `sqnr_db` is the rung's measured
/// signal-to-quantization-noise ratio on the same scenes (`+inf` for exact
/// backends). `serve` deliberately knows nothing about how the score is
/// computed — only that its ordering is the measured quality ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct RungMeasurement {
    /// Backend label of the rung (e.g. `tiny-vbf-fx16`).
    pub backend: String,
    /// Condensed image-quality score, higher is better. NaN is rejected.
    pub quality_score: f64,
    /// Measured SQNR in dB on the evaluation scenes; non-finite values
    /// (exact backends) don't constrain the calibrated floor.
    pub sqnr_db: f64,
}

/// The shift thresholds of a [`DegradeConfig`], detached from the ladder
/// labels so the pure [`LadderState`] machine can be driven without specs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderTuning {
    /// See [`DegradeConfig::window`].
    pub window: usize,
    /// See [`DegradeConfig::cooldown_windows`].
    pub cooldown_windows: u32,
    /// See [`DegradeConfig::downshift_expiry_rate`].
    pub downshift_expiry_rate: f64,
    /// See [`DegradeConfig::upshift_expiry_rate`].
    pub upshift_expiry_rate: f64,
    /// See [`DegradeConfig::sqnr_floor_db`].
    pub sqnr_floor_db: Option<f64>,
    /// See [`DegradeConfig::quality_bar_windows`].
    pub quality_bar_windows: u32,
}

/// A single ladder move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// One rung down the ladder: a narrower/cheaper scheme (load shedding).
    Down,
    /// One rung up the ladder: back toward full quality.
    Up,
}

/// The pure per-stream degradation state machine.
///
/// Driven by [`LadderState::record`] (one call per completed or expired
/// request) and [`LadderState::end_window`] (called when `record` reports a
/// full window); entirely free of wall-clock time, so identical observation
/// traces produce identical shift sequences. `serve/tests/degrade.rs`
/// property-tests the no-oscillation guarantee over random traces.
#[derive(Debug, Clone)]
pub struct LadderState {
    num_rungs: usize,
    rung: usize,
    window_completed: u64,
    window_expired: u64,
    windows_closed: u64,
    last_shift_window: Option<u64>,
    /// `(max_allowed_rung, barred_until_window)` after a quality upshift.
    bar: Option<(usize, u64)>,
}

impl LadderState {
    /// A fresh machine at rung 0 of a `num_rungs`-rung ladder.
    ///
    /// # Panics
    ///
    /// Panics when `num_rungs` is zero.
    pub fn new(num_rungs: usize) -> Self {
        assert!(num_rungs >= 1, "a ladder needs at least one rung");
        Self {
            num_rungs,
            rung: 0,
            window_completed: 0,
            window_expired: 0,
            windows_closed: 0,
            last_shift_window: None,
            bar: None,
        }
    }

    /// The current rung (0 = best quality).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Number of observation windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Records one request outcome. Returns `true` when the observation
    /// window just filled — the caller must then invoke
    /// [`LadderState::end_window`] with the window's quality sample.
    pub fn record(&mut self, expired: bool, tuning: &LadderTuning) -> bool {
        if expired {
            self.window_expired += 1;
        } else {
            self.window_completed += 1;
        }
        (self.window_completed + self.window_expired) >= tuning.window as u64
    }

    /// Closes the observation window and returns the shift taken, if any.
    ///
    /// `window_sqnr_db` is the current rung's SQNR over this window
    /// (`f64::INFINITY` for exact backends or when no quality data exists; a
    /// NaN is treated as *below* any floor — quality data poisoned by NaN
    /// frames must read as bad, not as fine).
    pub fn end_window(&mut self, tuning: &LadderTuning, window_sqnr_db: f64) -> Option<Shift> {
        let expired = self.window_expired;
        let total = self.window_completed + expired;
        self.window_completed = 0;
        self.window_expired = 0;
        self.windows_closed += 1;
        if let Some((_, until)) = self.bar {
            if self.windows_closed >= until {
                self.bar = None;
            }
        }
        let expiry_rate = if total == 0 { 0.0 } else { expired as f64 / total as f64 };
        let cooled = self
            .last_shift_window
            .is_none_or(|w| self.windows_closed.saturating_sub(w) >= u64::from(tuning.cooldown_windows));
        if !cooled {
            return None;
        }
        // `!(x >= floor)` instead of `x < floor`: NaN must count as bad.
        let quality_bad = tuning.sqnr_floor_db.is_some_and(|floor| !(window_sqnr_db >= floor));
        let shift = if quality_bad && self.rung > 0 {
            // Quality floor violated: fall back to the wider scheme and bar
            // the abandoned rung so load pressure cannot immediately push the
            // stream back into it.
            self.bar = Some((self.rung - 1, self.windows_closed + u64::from(tuning.quality_bar_windows)));
            self.rung -= 1;
            Some(Shift::Up)
        } else if !quality_bad
            && expiry_rate >= tuning.downshift_expiry_rate
            && self.rung + 1 < self.num_rungs
            && self.bar.is_none_or(|(max, _)| self.rung + 1 <= max)
        {
            self.rung += 1;
            Some(Shift::Down)
        } else if !quality_bad && expiry_rate <= tuning.upshift_expiry_rate && self.rung > 0 {
            self.rung -= 1;
            Some(Shift::Up)
        } else {
            None
        };
        if shift.is_some() {
            self.last_shift_window = Some(self.windows_closed);
        }
        shift
    }
}

/// Snapshot of one managed stream's degradation state (an element of
/// [`crate::RouterStats::degrade`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeStats {
    /// The stream's compact label (see [`StreamSpec::label`]), under its
    /// *base* (rung-0) backend.
    pub stream: String,
    /// The stream's ladder, best quality first.
    pub ladder: Vec<String>,
    /// Current rung index (0 = serving at full quality).
    pub rung: usize,
    /// Backend label currently serving the stream.
    pub backend: String,
    /// Load-driven downshifts taken so far.
    pub downshifts: u64,
    /// Upshifts taken so far (load subsided or quality floor violated).
    pub upshifts: u64,
    /// Requests of this stream lost to deadline expiry — the load that was
    /// actually shed. The ladder's purpose is to keep this near zero.
    pub sheds: u64,
    /// Observation windows closed so far.
    pub windows: u64,
}

struct StreamState {
    base: StreamSpec,
    ladder: usize,
    machine: LadderState,
    /// Cumulative quality counters of the current rung's engine at the last
    /// window close (`None` right after a shift — the rung changed, so the
    /// next window's delta must restart from the new engine's counters).
    last_quality: Option<QuantQualityStats>,
    downshifts: u64,
    upshifts: u64,
    sheds: u64,
}

/// SQNR of one observation window from two cumulative snapshots.
fn window_sqnr_db(current: Option<QuantQualityStats>, previous: Option<QuantQualityStats>) -> f64 {
    let Some(current) = current else {
        return f64::INFINITY; // exact backend: nothing to degrade on
    };
    let prev = previous.unwrap_or_default();
    let signal = current.signal_energy - prev.signal_energy;
    let noise = current.noise_energy - prev.noise_energy;
    if signal.is_nan() || noise.is_nan() {
        return f64::NEG_INFINITY; // poisoned counters read as bad quality
    }
    if noise <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal.max(0.0) / noise).log10()
}

/// The router-side driver: per-stream [`LadderState`]s keyed by base
/// [`StreamSpec`], plus the shift/shed counters surfaced in
/// [`crate::RouterStats`].
pub(crate) struct DegradeController {
    config: DegradeConfig,
    tuning: LadderTuning,
    streams: Mutex<Vec<StreamState>>,
    downshifts: AtomicU64,
    upshifts: AtomicU64,
    sheds: AtomicU64,
}

impl DegradeController {
    pub(crate) fn new(config: DegradeConfig) -> ServeResult<Self> {
        config.validate()?;
        let tuning = config.tuning();
        Ok(Self {
            config,
            tuning,
            streams: Mutex::new(Vec::new()),
            downshifts: AtomicU64::new(0),
            upshifts: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        })
    }

    /// The spec a request of `spec`'s stream should actually be served under
    /// right now. `None` when the stream is unmanaged or at rung 0 — the
    /// caller must then use the original spec untouched (bitwise-determinism
    /// contract for non-downshifted requests).
    pub(crate) fn route(&self, spec: &StreamSpec) -> Option<StreamSpec> {
        let ladder = self.config.ladder_for(&spec.backend)?;
        let num_rungs = self.config.ladders[ladder].len();
        let mut streams = recover(self.streams.lock());
        let state = Self::entry(&mut streams, spec, ladder, num_rungs);
        let rung = state.machine.rung();
        if rung == 0 {
            None
        } else {
            Some(StreamSpec { backend: self.config.ladders[ladder][rung].clone(), ..spec.clone() })
        }
    }

    /// Records one request outcome for `spec`'s stream. `expired` marks a
    /// deadline expiry (a shed); on a full window, `quality_probe` is asked
    /// for the current rung's cumulative quality counters to compute the
    /// window SQNR.
    pub(crate) fn record(
        &self,
        spec: &StreamSpec,
        expired: bool,
        quality_probe: impl Fn(&StreamSpec) -> Option<QuantQualityStats>,
    ) {
        let Some(ladder) = self.config.ladder_for(&spec.backend) else {
            return;
        };
        let num_rungs = self.config.ladders[ladder].len();
        let mut streams = recover(self.streams.lock());
        let state = Self::entry(&mut streams, spec, ladder, num_rungs);
        if expired {
            state.sheds += 1;
            self.sheds.fetch_add(1, Ordering::Relaxed);
        }
        if !state.machine.record(expired, &self.tuning) {
            return;
        }
        // Window full: sample the serving rung's quality and decide.
        let rung_label = &self.config.ladders[ladder][state.machine.rung()];
        let rung_spec =
            if state.machine.rung() == 0 { spec.clone() } else { StreamSpec { backend: rung_label.clone(), ..spec.clone() } };
        let cumulative = quality_probe(&rung_spec);
        let sqnr = window_sqnr_db(cumulative, state.last_quality);
        state.last_quality = cumulative;
        match state.machine.end_window(&self.tuning, sqnr) {
            Some(Shift::Down) => {
                state.downshifts += 1;
                state.last_quality = None;
                self.downshifts.fetch_add(1, Ordering::Relaxed);
            }
            Some(Shift::Up) => {
                state.upshifts += 1;
                state.last_quality = None;
                self.upshifts.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
    }

    fn entry<'a>(
        streams: &'a mut Vec<StreamState>,
        spec: &StreamSpec,
        ladder: usize,
        num_rungs: usize,
    ) -> &'a mut StreamState {
        if let Some(i) = streams.iter().position(|s| s.base == *spec) {
            return &mut streams[i];
        }
        streams.push(StreamState {
            base: spec.clone(),
            ladder,
            machine: LadderState::new(num_rungs),
            last_quality: None,
            downshifts: 0,
            upshifts: 0,
            sheds: 0,
        });
        streams.last_mut().expect("just pushed")
    }

    pub(crate) fn stats(&self) -> Vec<DegradeStats> {
        let streams = recover(self.streams.lock());
        streams
            .iter()
            .map(|s| {
                let ladder = &self.config.ladders[s.ladder];
                DegradeStats {
                    stream: s.base.label(),
                    ladder: ladder.clone(),
                    rung: s.machine.rung(),
                    backend: ladder[s.machine.rung()].clone(),
                    downshifts: s.downshifts,
                    upshifts: s.upshifts,
                    sheds: s.sheds,
                    windows: s.machine.windows_closed(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuning() -> LadderTuning {
        LadderTuning {
            window: 4,
            cooldown_windows: 2,
            downshift_expiry_rate: 0.5,
            upshift_expiry_rate: 0.1,
            sqnr_floor_db: None,
            quality_bar_windows: 3,
        }
    }

    /// Drives `machine` through one full window with `expired` expiries.
    fn window(machine: &mut LadderState, t: &LadderTuning, expired: usize, sqnr: f64) -> Option<Shift> {
        for i in 0..t.window {
            let full = machine.record(i < expired, t);
            assert_eq!(full, i + 1 == t.window);
        }
        machine.end_window(t, sqnr)
    }

    #[test]
    fn downshifts_under_pressure_and_respects_cooldown() {
        let t = tuning();
        let mut m = LadderState::new(3);
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), Some(Shift::Down));
        assert_eq!(m.rung(), 1);
        // Still saturated, but the cooldown (2 windows) blocks the next shift
        // for one window.
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), None);
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), Some(Shift::Down));
        assert_eq!(m.rung(), 2);
        // Bottom rung: no further downshift.
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), None);
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), None);
    }

    #[test]
    fn hysteresis_band_holds_the_rung() {
        let t = tuning();
        let mut m = LadderState::new(2);
        assert_eq!(window(&mut m, &t, 4, f64::INFINITY), Some(Shift::Down));
        // Expiry rate 0.25 sits between up (0.1) and down (0.5): no movement,
        // ever, regardless of cooldown.
        for _ in 0..6 {
            assert_eq!(window(&mut m, &t, 1, f64::INFINITY), None);
        }
        assert_eq!(m.rung(), 1);
        // Load fully subsides: upshift after cooldown.
        assert_eq!(window(&mut m, &t, 0, f64::INFINITY), Some(Shift::Up));
        assert_eq!(m.rung(), 0);
    }

    #[test]
    fn quality_floor_upshifts_and_bars_the_rung() {
        let t = LadderTuning { sqnr_floor_db: Some(20.0), ..tuning() };
        let mut m = LadderState::new(3);
        assert_eq!(window(&mut m, &t, 4, 80.0), Some(Shift::Down)); // window 1
        assert_eq!(window(&mut m, &t, 4, 80.0), None); // window 2: cooldown
        // Rung 1's quality violates the floor: forced upshift despite full
        // load, and rung 1 is barred until window 6 (3 + quality_bar_windows).
        assert_eq!(window(&mut m, &t, 4, 10.0), Some(Shift::Up)); // window 3
        assert_eq!(m.rung(), 0);
        // Saturated load cannot push past the cooldown (window 4) or the bar
        // (window 5, max allowed rung is 0)...
        assert_eq!(window(&mut m, &t, 4, 80.0), None);
        assert_eq!(window(&mut m, &t, 4, 80.0), None);
        // ...until the bar expires at window 6.
        assert_eq!(window(&mut m, &t, 4, 80.0), Some(Shift::Down));
        assert_eq!(m.rung(), 1);
    }

    #[test]
    fn nan_sqnr_counts_as_bad_quality() {
        let t = LadderTuning { sqnr_floor_db: Some(20.0), ..tuning() };
        let mut m = LadderState::new(2);
        assert_eq!(window(&mut m, &t, 4, 80.0), Some(Shift::Down));
        assert_eq!(window(&mut m, &t, 4, f64::NAN), None); // cooldown
        assert_eq!(window(&mut m, &t, 4, f64::NAN), Some(Shift::Up));
        assert_eq!(m.rung(), 0);
    }

    #[test]
    fn at_rung_zero_bad_quality_does_not_shift() {
        let t = LadderTuning { sqnr_floor_db: Some(20.0), ..tuning() };
        let mut m = LadderState::new(2);
        // Quality below floor at rung 0: nowhere better to go, and bad
        // quality must also block the load-driven downshift.
        assert_eq!(window(&mut m, &t, 4, 5.0), None);
        assert_eq!(m.rung(), 0);
    }

    #[test]
    fn empty_window_counts_as_zero_expiry_rate() {
        let t = LadderTuning { window: 1, ..tuning() };
        let mut m = LadderState::new(2);
        assert_eq!(window(&mut m, &t, 1, f64::INFINITY), Some(Shift::Down));
        // end_window with nothing recorded: rate 0 → upshift after cooldown.
        assert_eq!(m.end_window(&t, f64::INFINITY), None);
        assert_eq!(m.end_window(&t, f64::INFINITY), Some(Shift::Up));
    }

    #[test]
    fn window_sqnr_from_cumulative_snapshots() {
        let mut prev = QuantQualityStats::default();
        prev.frames = 4;
        prev.signal_energy = 100.0;
        prev.noise_energy = 1.0;
        let mut cur = prev;
        cur.frames = 8;
        cur.signal_energy = 200.0;
        cur.noise_energy = 2.0;
        let db = window_sqnr_db(Some(cur), Some(prev));
        assert!((db - 20.0).abs() < 1e-9, "got {db}");
        assert_eq!(window_sqnr_db(None, None), f64::INFINITY);
        assert_eq!(window_sqnr_db(Some(prev), Some(prev)), f64::INFINITY); // zero noise delta
        let mut poisoned = cur;
        poisoned.noise_energy = f64::NAN;
        assert_eq!(window_sqnr_db(Some(poisoned), Some(prev)), f64::NEG_INFINITY);
    }

    #[test]
    fn calibration_orders_the_ladder_by_measured_quality() {
        let rung = |backend: &str, quality_score: f64, sqnr_db: f64| RungMeasurement {
            backend: backend.into(),
            quality_score,
            sqnr_db,
        };
        // Deliberately shuffled input: the ladder must come out sorted by
        // the measured score, not the given order.
        let config = DegradeConfig::from_quality_profile(&[
            rung("tiny-vbf-fx16", 0.61, 64.0),
            rung("tiny-vbf-fp", 0.93, f64::INFINITY),
            rung("tiny-vbf-fx24", 0.91, 113.0),
        ])
        .unwrap();
        assert_eq!(config.ladders, vec![vec![
            "tiny-vbf-fp".to_string(),
            "tiny-vbf-fx24".to_string(),
            "tiny-vbf-fx16".to_string(),
        ]]);
        // Floor: worst *finite* measured SQNR minus the 3 dB jitter margin.
        assert_eq!(config.sqnr_floor_db, Some(61.0));
        assert!(config.validate().is_ok());
    }

    #[test]
    fn calibration_ties_keep_given_order_and_infinite_sqnr_disables_floor() {
        let rung = |backend: &str, quality_score: f64| RungMeasurement {
            backend: backend.into(),
            quality_score,
            sqnr_db: f64::INFINITY,
        };
        let config =
            DegradeConfig::from_quality_profile(&[rung("a", 0.5), rung("b", 0.5)]).unwrap();
        assert_eq!(config.ladders, vec![vec!["a".to_string(), "b".to_string()]]);
        assert_eq!(config.sqnr_floor_db, None);
    }

    #[test]
    fn calibration_rejects_bad_measurements() {
        let rung = |backend: &str, quality_score: f64| RungMeasurement {
            backend: backend.into(),
            quality_score,
            sqnr_db: 60.0,
        };
        assert!(DegradeConfig::from_quality_profile(&[rung("a", 1.0)]).is_err());
        assert!(DegradeConfig::from_quality_profile(&[rung("a", 1.0), rung("a", 0.5)]).is_err());
        assert!(
            DegradeConfig::from_quality_profile(&[rung("a", f64::NAN), rung("b", 0.5)]).is_err()
        );
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let ok = DegradeConfig::with_ladder(vec!["a".into(), "b".into()]);
        assert!(ok.validate().is_ok());
        let short = DegradeConfig::with_ladder(vec!["a".into()]);
        assert!(short.validate().is_err());
        let dup = DegradeConfig::with_ladder(vec!["a".into(), "a".into()]);
        assert!(dup.validate().is_err());
        let inverted = DegradeConfig { upshift_expiry_rate: 0.5, downshift_expiry_rate: 0.5, ..ok.clone() };
        assert!(inverted.validate().is_err());
        let zero_window = DegradeConfig { window: 0, ..ok.clone() };
        assert!(zero_window.validate().is_err());
        let shared_head = DegradeConfig {
            ladders: vec![vec!["a".into(), "b".into()], vec!["a".into(), "c".into()]],
            ..DegradeConfig::default()
        };
        assert!(shared_head.validate().is_err());
    }
}
